//! Minimal, API-compatible stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: `Criterion`
//! with `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is
//! real — each sample times a batch of iterations — but reporting is
//! a plain stdout table (median and mean ns/iter), with none of
//! criterion's statistics, baselines, or plots.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the routine before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, |b| f(b));
        self
    }

    /// Run a benchmark identified by a [`BenchmarkId`], passing `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    fn run_one(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            mode: Mode::WarmUp,
            budget: self.warm_up_time,
            sample_size: self.sample_size,
            iters_per_sample: 1,
            samples_ns: Vec::new(),
        };
        routine(&mut b); // warm up and calibrate iters_per_sample
        b.mode = Mode::Measure;
        b.budget = self.measurement_time;
        routine(&mut b);
        b.report(id);
    }
}

enum Mode {
    WarmUp,
    Measure,
}

/// Times closures handed to it by the benchmark routine.
pub struct Bencher {
    mode: Mode,
    budget: Duration,
    sample_size: usize,
    iters_per_sample: u64,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `f`, called repeatedly; the return value is black-boxed.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::WarmUp => {
                // run for the warm-up budget while counting iterations,
                // then size measurement batches so all samples fit the
                // measurement budget
                let start = Instant::now();
                let mut iters: u64 = 0;
                while start.elapsed() < self.budget {
                    std::hint::black_box(f());
                    iters += 1;
                }
                let per_iter = self.budget.as_nanos() as f64 / iters.max(1) as f64;
                let measure_ns = self.budget.as_nanos() as f64 * 6.0; // measurement ≈ 3s vs 0.5s warm-up
                let total_iters = (measure_ns / per_iter).max(1.0) as u64;
                self.iters_per_sample = (total_iters / self.sample_size as u64).max(1);
            }
            Mode::Measure => {
                self.samples_ns.clear();
                for _ in 0..self.sample_size {
                    let start = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        std::hint::black_box(f());
                    }
                    let ns = start.elapsed().as_nanos() as f64;
                    self.samples_ns.push(ns / self.iters_per_sample as f64);
                }
            }
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        self.samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        println!(
            "{id:<48} median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_ns(median),
            fmt_ns(mean),
            self.samples_ns.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A benchmark name of the form `group/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `"{group}/{parameter}"`.
    pub fn new(group: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", group.into()),
        }
    }
}

/// Declare a group of benchmark functions with a shared configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate a `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
