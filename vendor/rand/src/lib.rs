//! Minimal, API-compatible stand-in for the `rand` crate.
//!
//! Provides exactly what this workspace uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] /
//! [`RngExt`] traits with `random_range` / `random_bool`. The
//! generator is xoshiro256++, so sequences are deterministic under a
//! seed across platforms.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// The next word from the generator.
    fn next_u64(&mut self) -> u64;

    /// The next 32-bit word (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from a half-open or inclusive integer range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            true
        } else if p <= 0.0 {
            false
        } else {
            // 53 uniform mantissa bits, compared against p
            let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            unit < p
        }
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Expand a 64-bit seed into a full generator state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((reduce(rng.next_u64(), span)) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((reduce(rng.next_u64(), span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Map a uniform `u64` onto `[0, span)` (multiply-shift reduction).
fn reduce(word: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((word as u128 * span as u128) >> 64) as u64
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the reference implementation does.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u64), b.random_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn bool_probabilities_degenerate() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!((0..50).all(|_| rng.random_bool(1.0)));
        assert!((0..50).all(|_| !rng.random_bool(0.0)));
        let heads = (0..2000).filter(|_| rng.random_bool(0.5)).count();
        assert!((700..1300).contains(&heads), "{heads}");
    }
}
