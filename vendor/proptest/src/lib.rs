//! Minimal, API-compatible stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, strategies for
//! integer ranges, tuples, `Vec<S>`, [`collection::vec`],
//! [`option::of`] and [`any`], plus the `proptest!` and `prop_assert*`
//! macros. Cases are generated from a per-test deterministic RNG;
//! failures report the case number but are *not* shrunk.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    use std::fmt;

    /// Why a test case failed.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-case outcome of a property body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Test configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic case RNG (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive a generator from a test-name hash and a case number.
        pub fn deterministic(name_hash: u64, case: u64) -> Self {
            TestRng {
                state: name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// FNV-1a hash of a test name, used to seed its RNG stream.
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then a second strategy from it, then sample that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A `Vec` of strategies samples each element in order.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec()`]: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Pick a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, C> {
        element: S,
        size: C,
    }

    impl<S: Strategy, C: SizeRange> Strategy for VecStrategy<S, C> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, C: SizeRange>(element: S, size: C) -> VecStrategy<S, C> {
        VecStrategy { element, size }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// `Some` of the inner strategy half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// The usual `use proptest::prelude::*` imports.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property, failing the case (not
/// panicking) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Declare property tests: each `#[test] fn name(pat in strategy, ...)`
/// becomes a normal `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        $crate::hash_name(stringify!($name)),
                        case as u64,
                    );
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}:\n{}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}
