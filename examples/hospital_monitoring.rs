//! Hospital data-entry monitoring (the paper's HOSP workload).
//!
//! Simulates a stream of hospital/measure records arriving at a data
//! entry point: 30% duplicate master entities (their errors are
//! certain-fixable), 20% of attributes are corrupted. The monitor asks
//! the clerk to confirm a *two-attribute* certain region (phone number
//! and measure code) and derives the other seventeen attributes from
//! master data.
//!
//! Run with: `cargo run --release --example hospital_monitoring`

use certain_fix::core::{evaluate_rounds, DataMonitor, SimulatedUser, TupleEval};
use certain_fix::datagen::{Dataset, DirtyConfig, Hosp, Workload};

fn main() {
    let master_size = 2_000;
    let hosp = Hosp::generate(master_size);
    println!(
        "HOSP workload: schema {} with {} attributes, {} editing rules, |Dm| = {}",
        hosp.schema().name(),
        hosp.schema().len(),
        hosp.rules().len(),
        hosp.master().len()
    );

    let cfg = DirtyConfig {
        duplicate_rate: 0.3,
        noise_rate: 0.2,
        input_size: 500,
        seed: 2024,
        ..Default::default()
    };
    let dataset = Dataset::generate(&hosp, &cfg);
    println!(
        "input stream: {} tuples ({} erroneous, {} erroneous attributes)\n",
        dataset.len(),
        dataset.erroneous(),
        dataset.erroneous_attrs()
    );

    let mut monitor = DataMonitor::new(hosp.rules().clone(), hosp.master().clone(), true);
    println!(
        "initial certain region Z = {} (assure these and the rest follows)",
        hosp.schema().render_attrs(monitor.initial_suggestion())
    );

    let mut outcomes = Vec::with_capacity(dataset.len());
    for dt in &dataset.inputs {
        let mut clerk = SimulatedUser::new(dt.clean.clone());
        outcomes.push(monitor.process(&dt.dirty, &mut clerk));
    }

    let stats = monitor.stats();
    println!(
        "\nprocessed {} tuples in {:?} ({} certain fixes, {:.2} rounds avg, {:.3} ms/round)",
        stats.tuples,
        stats.elapsed,
        stats.certain,
        stats.avg_rounds(),
        stats.avg_round_latency().as_secs_f64() * 1e3
    );
    let bdd = monitor.bdd_stats();
    println!(
        "suggestion cache: {} hits, {} misses, {} failed checks",
        bdd.hits, bdd.misses, bdd.failed_checks
    );

    let evals: Vec<TupleEval> = outcomes
        .iter()
        .zip(&dataset.inputs)
        .map(|(o, dt)| TupleEval {
            outcome: o,
            dirty: &dt.dirty,
            clean: &dt.clean,
        })
        .collect();
    println!("\n round  recall_t  recall_a  precision_a");
    for m in evaluate_rounds(&evals, 3) {
        println!(
            "     {}     {:.3}     {:.3}        {:.3}",
            m.round, m.recall_t, m.recall_a, m.precision_a
        );
    }

    // The headline guarantee: every attribute a rule changed is correct.
    let mut wrong = 0usize;
    for (o, dt) in outcomes.iter().zip(&dataset.inputs) {
        for a in o.rule_fixed.iter() {
            if o.tuple.get(a) != dt.clean.get(a) {
                wrong += 1;
            }
        }
    }
    println!("\nrule-fixed attributes that are wrong: {wrong} (certain fixes are never wrong)");
    assert_eq!(wrong, 0);
}
