//! Hospital data-entry monitoring (the paper's HOSP workload).
//!
//! Simulates a *stream* of hospital/measure records arriving at a data
//! entry point: a producer thread plays the role of the entry queue,
//! feeding 100-record batches through a bounded channel, and a
//! `RepairSession` with two repair workers drains it — 30% of records
//! duplicate master entities (their errors are certain-fixable), 20%
//! of attributes are corrupted. The monitor asks the clerk to confirm
//! a *two-attribute* certain region (phone number and measure code)
//! and derives the other seventeen attributes from master data.
//!
//! Run with: `cargo run --release --example hospital_monitoring`

use certain_fix::core::{evaluate_rounds, RepairSessionBuilder, SimulatedUser, TupleEval};
use certain_fix::datagen::{Dataset, DirtyConfig, Hosp, Workload};
use certain_fix::relation::Tuple;

fn main() {
    let master_size = 2_000;
    let hosp = Hosp::generate(master_size);
    println!(
        "HOSP workload: schema {} with {} attributes, {} editing rules, |Dm| = {}",
        hosp.schema().name(),
        hosp.schema().len(),
        hosp.rules().len(),
        hosp.master().len()
    );

    let cfg = DirtyConfig {
        duplicate_rate: 0.3,
        noise_rate: 0.2,
        input_size: 500,
        seed: 2024,
        ..Default::default()
    };
    let dataset = Dataset::generate(&hosp, &cfg);
    println!(
        "input stream: {} tuples ({} erroneous, {} erroneous attributes)\n",
        dataset.len(),
        dataset.erroneous(),
        dataset.erroneous_attrs()
    );

    let mut session = RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
        .bdd(true)
        .threads(2)
        .build();
    println!(
        "initial certain region Z = {} (assure these and the rest follows)",
        hosp.schema()
            .render_attrs(session.engine().context().epoch().initial_suggestion())
    );

    // the entry point: a producer thread feeds 100-record batches of
    // arriving records through a bounded channel (backpressure: at
    // most two batches in flight), and the session's workers repair
    // them as they land
    let dirty: Vec<Tuple> = dataset.inputs.iter().map(|dt| dt.dirty.clone()).collect();
    session.stream_slice(&dirty, 100, 2, |i| {
        SimulatedUser::new(dataset.inputs[i].clean.clone())
    });
    let report = session.finish();

    println!("batch  tuples  certain  rounds");
    for (k, batch) in report.batches.iter().enumerate() {
        println!(
            "    {}     {}      {}     {}",
            k, batch.stats.tuples, batch.stats.certain, batch.stats.rounds
        );
    }

    let stats = &report.stats;
    println!(
        "\nprocessed {} tuples in {} batches ({} certain fixes, {:.2} rounds avg, \
         {:.3} ms/round, {:.0} tuples/s)",
        stats.tuples,
        report.batches.len(),
        stats.certain,
        stats.avg_rounds(),
        stats.avg_round_latency().as_secs_f64() * 1e3,
        report.throughput()
    );
    println!(
        "suggestion cache: {} hits, {} misses, {} failed checks; shared pool: {} hits, {} misses",
        report.bdd.hits,
        report.bdd.misses,
        report.bdd.failed_checks,
        stats.shared_hits,
        stats.shared_misses
    );

    let outcomes: Vec<_> = report.outcomes().collect();
    let evals: Vec<TupleEval> = outcomes
        .iter()
        .zip(&dataset.inputs)
        .map(|(o, dt)| TupleEval {
            outcome: o,
            dirty: &dt.dirty,
            clean: &dt.clean,
        })
        .collect();
    println!("\n round  recall_t  recall_a  precision_a");
    for m in evaluate_rounds(&evals, 3) {
        println!(
            "     {}     {:.3}     {:.3}        {:.3}",
            m.round, m.recall_t, m.recall_a, m.precision_a
        );
    }

    // The headline guarantee: every attribute a rule changed is correct.
    let mut wrong = 0usize;
    for (o, dt) in outcomes.iter().zip(&dataset.inputs) {
        for a in o.rule_fixed.iter() {
            if o.tuple.get(a) != dt.clean.get(a) {
                wrong += 1;
            }
        }
    }
    println!("\nrule-fixed attributes that are wrong: {wrong} (certain fixes are never wrong)");
    assert_eq!(wrong, 0);
}
