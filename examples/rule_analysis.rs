//! Static analysis of editing rules (Sect. 4 of the paper).
//!
//! Before deploying a rule set, a data steward wants to know:
//!
//! * is `(Σ, Dm)` *consistent* relative to a region — do all marked
//!   tuples get a unique fix? (coNP-complete in general, decided here
//!   by bounded active-domain expansion);
//! * is the region *certain* — are all attributes covered?
//! * which attribute sets `Z` can anchor a certain region at all
//!   (Z-validating / Z-counting / Z-minimum, via the fixed-Σ
//!   algorithms of Props. 8/11/15);
//! * and the PTIME *direct fix* checks of Theorem 5.
//!
//! Run with: `cargo run --example rule_analysis`

use std::sync::Arc;

use certain_fix::prelude::*;
use certain_fix::reasoning::{
    check_consistency, check_coverage, comp_cregion, direct_covers, gregion, z_count, z_minimum,
    z_validate, Region, ZBudget,
};
use certain_fix::relation::tuple;
use certain_fix::rules::parse_rules;

fn main() {
    // A small procurement schema: supplier records validated against a
    // vendor master file.
    let r = Schema::new("R", ["vat", "name", "country", "bank", "rating"]).unwrap();
    let rules = parse_rules(
        r#"
        v1: match vat ~ vat set name := name, country := country
        v2: match vat ~ vat set bank := bank
        v3: match name ~ name, country ~ country set vat := vat
        "#,
        &r,
        &r,
    )
    .unwrap();
    let master = Arc::new(
        Relation::new(
            r.clone(),
            vec![
                tuple!["GB123", "Acme Ltd", "UK", "HSBC-001", "AA"],
                tuple!["DE456", "Schmidt GmbH", "DE", "DB-002", "A"],
                tuple!["FR789", "Lumière SA", "FR", "BNP-003", "BB"],
            ],
        )
        .unwrap(),
    );
    let index = MasterIndex::new(master);
    let budget = 100_000;

    // ── Consistency & coverage of a concrete region ────────────────
    let vat = r.attr("vat").unwrap();
    let rating = r.attr("rating").unwrap();
    let row = PatternTuple::new(vec![(vat, PatternValue::Const(Value::str("GB123")))]);
    let region = Region::new(vec![vat, rating], Tableau::new(vec![row])).unwrap();
    let consistency = check_consistency(&rules, &index, &region, budget).unwrap();
    println!(
        "consistency of (Z = [vat, rating], Tc = {{GB123}}): {} ({} instantiation(s) chased)",
        consistency.consistent, consistency.checked
    );
    let coverage = check_coverage(&rules, &index, &region, budget).unwrap();
    println!("certain region: {}", coverage.certain);
    assert!(coverage.certain, "vat pins the vendor; rating is asserted");

    // direct-fix variant (Theorem 5): PTIME joins instead of the chase
    let direct = direct_covers(&rules, &index, &region);
    println!(
        "direct-fix check: consistent = {}, uncovered = {:?}",
        direct.consistent,
        direct.uncovered.render(&r)
    );

    // ── Z-problems ────────────────────────────────────────────────
    let zb = ZBudget::default();
    // {vat, rating} validates; {name} alone does not (country missing,
    // nothing derives rating).
    let witness = z_validate(&rules, &index, &[vat, rating], &zb).unwrap();
    println!(
        "Z-validating([vat, rating]): witness = {}",
        witness.map(|w| w.render(&r)).unwrap_or_else(|| "-".into())
    );
    let name = r.attr("name").unwrap();
    assert!(z_validate(&rules, &index, &[name], &zb).unwrap().is_none());

    // how many master keys yield a certain tableau row?
    let count = z_count(&rules, &index, &[vat, rating], &zb).unwrap();
    println!("Z-counting([vat, rating]) = {count} (one per vendor)");
    assert_eq!(count, 3);

    // smallest anchor set
    let min = z_minimum(&rules, &index, 3, &zb).unwrap().unwrap();
    println!("Z-minimum (k ≤ 3) = {}", r.render_attrs(&min));
    assert_eq!(min.len(), 2);

    // ── Region deduction heuristics ───────────────────────────────
    let optimal = comp_cregion(&rules);
    let greedy = gregion(&rules);
    println!(
        "CompCRegion Z = {} vs GRegion Z = {}",
        r.render_attrs(&optimal),
        r.render_attrs(&greedy)
    );
    assert!(optimal.len() <= greedy.len());

    // ── An inconsistent master: analysis catches it ───────────────
    let bad_master = Arc::new(
        Relation::new(
            r.clone(),
            vec![
                tuple!["GB123", "Acme Ltd", "UK", "HSBC-001", "AA"],
                tuple!["GB123", "Acme Ltd", "UK", "LLOYDS-9", "AA"], // bank clash!
            ],
        )
        .unwrap(),
    );
    let bad_index = MasterIndex::new(bad_master);
    let row = PatternTuple::new(vec![(vat, PatternValue::Const(Value::str("GB123")))]);
    let region = Region::new(vec![vat, rating], Tableau::new(vec![row])).unwrap();
    let report = check_consistency(&rules, &bad_index, &region, budget).unwrap();
    println!(
        "\nwith a key-inconsistent master: consistent = {} ({})",
        report.consistent,
        report
            .witness
            .as_ref()
            .map(|(_, c)| c.to_string())
            .unwrap_or_default()
    );
    assert!(!report.consistent);
    println!("\nOK: static analysis behaves as Sect. 4 prescribes.");
}
