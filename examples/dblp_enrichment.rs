//! Bibliography enrichment (the paper's DBLP workload + Sect. 1's
//! "data enrichment" use of editing rules).
//!
//! Incoming publication records often arrive *incomplete*: homepages,
//! ISBNs and crossrefs are missing rather than wrong. Editing rules
//! fill missing attributes from master data exactly like they fix
//! erroneous ones (Example 2's t2 enrichment). This example also
//! exercises the cross-attribute rules φ2/φ4 (`a2` looked up among
//! master `a1` values) that CFDs cannot express.
//!
//! Run with: `cargo run --release --example dblp_enrichment`

use certain_fix::core::{DataMonitor, SimulatedUser};
use certain_fix::datagen::{Dblp, Workload};
use certain_fix::prelude::*;

fn main() {
    let dblp = Dblp::generate(1_000);
    let schema = dblp.schema().clone();
    println!(
        "DBLP workload: {} attributes, {} editing rules (incl. cross-attribute φ2/φ4), |Dm| = {}",
        schema.len(),
        dblp.rules().len(),
        dblp.master().len()
    );

    // Build incomplete records: take master papers and blank out the
    // derivable attributes — only the identifying fields survive data
    // entry.
    let keep = ["ptitle", "a1", "a2", "type", "pages"];
    let keep_ids: Vec<AttrId> = keep.iter().map(|n| schema.attr(n).unwrap()).collect();
    let incomplete: Vec<(Tuple, Tuple)> = dblp
        .master()
        .iter()
        .take(200)
        .map(|full| {
            let mut t = Tuple::nulls(schema.len());
            for &a in &keep_ids {
                t.set(a, *full.get(a));
            }
            (t, full.clone())
        })
        .collect();
    let blank_per_tuple = schema.len() - keep.len();
    println!(
        "enriching {} records, each missing {} of {} attributes\n",
        incomplete.len(),
        blank_per_tuple,
        schema.len()
    );

    let mut monitor = DataMonitor::new(dblp.rules().clone(), dblp.master().clone(), true);
    let mut enriched = 0usize;
    let mut filled_attrs = 0usize;
    for (t, truth) in &incomplete {
        let mut librarian = SimulatedUser::new(truth.clone());
        let outcome = monitor.process(t, &mut librarian);
        if outcome.certain && &outcome.tuple == truth {
            enriched += 1;
        }
        filled_attrs += outcome
            .rule_fixed
            .iter()
            .filter(|&a| t.get(a).is_null() && !outcome.tuple.get(a).is_null())
            .count();
    }
    println!(
        "fully enriched: {enriched}/{} records; {} missing cells filled from master data",
        incomplete.len(),
        filled_attrs
    );

    // Show one record in detail.
    let (t, truth) = &incomplete[0];
    let mut librarian = SimulatedUser::new(truth.clone());
    let outcome = monitor.process(t, &mut librarian);
    println!("\nbefore: {}", t.render_named(&schema));
    println!("after:  {}", outcome.tuple.render_named(&schema));
    assert_eq!(&outcome.tuple, truth);

    // The cross-attribute rule in action: a paper whose SECOND author's
    // homepage is recovered through master rows where that author is
    // FIRST author.
    let hp2 = schema.attr("hp2").unwrap();
    assert!(!outcome.tuple.get(hp2).is_null(), "hp2 enriched");
    println!("\nOK: records enriched with certainty guarantees.");
}
