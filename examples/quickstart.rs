//! Quickstart: the running example of the paper (Fig. 1).
//!
//! A supplier tuple `t1` arrives with an inconsistent area-code/city
//! pair and a non-standard first name. Editing rules + one master
//! relation + a single user assertion ("zip, phn, type and item are
//! correct") produce a *certain* fix: every attribute is guaranteed
//! correct, either by the user or by master data.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use certain_fix::core::{CertainFixConfig, DataMonitor, InitialRegion, SimulatedUser};
use certain_fix::prelude::*;
use certain_fix::rules::parse_rules;

fn main() {
    // ── Schemas ────────────────────────────────────────────────────
    // R: supplier input tuples; Rm: the master relation of Fig. 1b.
    let r = Schema::new(
        "R",
        [
            "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
        ],
    )
    .expect("valid schema");
    let rm = Schema::new(
        "Rm",
        [
            "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
        ],
    )
    .expect("valid schema");

    // ── Editing rules (Example 3 / Example 11, ϕ1–ϕ9) ─────────────
    let rules = parse_rules(
        r#"
        # eR1: if the zip is correct, take AC/str/city from the master
        phi1: match zip ~ zip set AC := AC, str := str, city := city
        # eR2: a correct mobile number standardizes the name
        phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
        # eR3: a correct home number fixes the address block
        phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
        # eR4: toll-free numbers still determine the city
        phi4: match AC ~ AC set city := city when AC = '0800'
        "#,
        &r,
        &rm,
    )
    .expect("rules parse");
    println!("Σ0 ({} editing rules):\n{}\n", rules.len(), rules.render());

    // ── Master data Dm (Fig. 1b) ───────────────────────────────────
    let master = Arc::new(
        Relation::new(
            rm.clone(),
            vec![
                certain_fix::relation::tuple![
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "51 Elm Row",
                    "Edi",
                    "EH7 4AH",
                    "11/11/55",
                    "M"
                ],
                certain_fix::relation::tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "NW1 6XE",
                    "25/12/67",
                    "M"
                ],
            ],
        )
        .expect("valid master"),
    );
    println!("Master relation Dm:\n{}", master.render_table());

    // ── The dirty input t1 (Fig. 1a) ───────────────────────────────
    // AC = 020 contradicts zip EH7 4AH; "Bob" is non-standard; the
    // street is stale.
    let t1 = certain_fix::relation::tuple![
        "Bob",
        "Brady",
        "020",
        "079172485",
        2,
        "501 Elm St.",
        "Edi",
        "EH7 4AH",
        "CD"
    ];
    // Ground truth (what a careful clerk would have entered):
    let truth = certain_fix::relation::tuple![
        "Robert",
        "Brady",
        "131",
        "079172485",
        2,
        "51 Elm Row",
        "Edi",
        "EH7 4AH",
        "CD"
    ];
    println!("Input  t1: {}", t1.render_named(&r));

    // ── Monitor: precompute regions, then fix at the point of entry ─
    let mut monitor = DataMonitor::with_config(
        rules,
        master,
        true, // CertainFix+: BDD-cached suggestions
        InitialRegion::Best,
        CertainFixConfig::default(),
    );
    println!(
        "Recommended certain region Z = {}",
        r.render_attrs(monitor.epoch().initial_suggestion())
    );

    // The "user" here is simulated with the ground truth, exactly like
    // the paper's experiments; swap in your own `UserOracle` for a real
    // data-entry UI.
    let mut user = SimulatedUser::new(truth.clone());
    let outcome = monitor.process(&t1, &mut user);

    println!("\nAfter {} round(s) of interaction:", outcome.rounds.len());
    for (i, round) in outcome.rounds.iter().enumerate() {
        println!(
            "  round {}: suggested {}, rules fixed {}",
            i + 1,
            r.render_attrs(&round.suggested),
            round.rule_fixed.render(&r),
        );
    }
    println!("\nFixed  t1: {}", outcome.tuple.render_named(&r));
    println!(
        "certain fix: {} (attributes fixed by rules: {})",
        outcome.certain,
        outcome.rule_fixed.render(&r)
    );
    assert!(outcome.certain, "t1 must receive a certain fix");
    assert_eq!(outcome.tuple, truth, "the certain fix IS the truth");
    println!("\nOK: the certain fix equals the ground truth.");
}
