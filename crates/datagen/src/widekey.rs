//! The WIDEKEY workload: composite keys wider than the plan's slot
//! table.
//!
//! [`RulePlan`](certainfix_rules::RulePlan) preallocates `2^|X|`
//! sub-key index slots per rule, capped at `|X| ≤ 6`; rules with wider
//! keys serve partial-mask probes through the shared master cache and
//! count a `plan_fallbacks` tick per probe. The paper's workloads never
//! exercise that branch — HOSP's widest rule keys 5 attributes and
//! DBLP's widest (φ7) also stays under the cap — so this synthetic
//! workload exists purely to keep the fallback path honest end to end:
//! a device registry whose location key spans **seven** attributes
//! (`site, region, zone, cell, rack, shelf, slot`).
//!
//! Entities decompose their id into the location key mixed-radix
//! (base 3 on the first six parts), so prefixes are heavily shared
//! across entities — which also makes this the densest trie-sharing
//! workload in the suite — while the full 7-tuple stays unique, keeping
//! every rule key-consistent.
//!
//! [`RulePlan`]: certainfix_rules::RulePlan

use std::sync::Arc;

use certainfix_relation::{MasterIndex, Relation, Schema, Tuple, Value};
use certainfix_rules::{parse_rules, RuleSet};
use rand::rngs::SmallRng;
use rand::RngExt;

use crate::dirty::Workload;

/// The 11 attributes of the device registry.
pub const WIDEKEY_ATTRS: [&str; 11] = [
    "site", "region", "zone", "cell", "rack", "shelf", "slot", "steward", "device", "owner",
    "status",
];

/// The 6 editing rules of the WIDEKEY workload. `w` keys all seven
/// location attributes (two rules after expansion — both past the
/// plan's `MAX_SUB_KEY_BITS` cap); `p` keys a five-attribute *prefix*
/// of the location; `r` fixes the last two location digits from the
/// device serial, which makes `{site..rack, device, status}` the
/// smallest certain region — so the best-region suggestion validates
/// the wide key only *partially*, and whenever `r` cannot complete it
/// (a fresh or retired device) the next suggest round probes `w` with
/// a partial mask: exactly the probe the fallback path serves; `n` is
/// a narrow control rule that stays on the preallocated slot path.
pub const WIDEKEY_RULES: &str = r#"
    # w: the full 7-part location identifies the device and its owner
    w: match site ~ site, region ~ region, zone ~ zone, cell ~ cell, rack ~ rack, shelf ~ shelf, slot ~ slot set device := device, owner := owner
    # p: the rack-level location prefix determines its steward
    p: match site ~ site, region ~ region, zone ~ zone, cell ~ cell, rack ~ rack set steward := steward
    # r: an active device's serial pins the fine location digits
    r: match device ~ device set shelf := shelf, slot := slot when status = 'active'
    # n: an active device's serial determines its owner
    n: match device ~ device set owner := owner when status = 'active'
"#;

/// Entities `e ≥ FRESH_BASE` stand for devices absent from the master.
const FRESH_BASE: u64 = 10_000_000;

/// Entity generator + master relation for the WIDEKEY workload.
pub struct WideKey {
    schema: Arc<Schema>,
    rules: RuleSet,
    master: Arc<Relation>,
    index: MasterIndex,
    master_size: u64,
}

impl WideKey {
    /// Generate a WIDEKEY workload with `master_size` master rows.
    pub fn generate(master_size: usize) -> WideKey {
        let schema = Schema::new("WIDEKEY", WIDEKEY_ATTRS).expect("static schema is valid");
        let rules = parse_rules(WIDEKEY_RULES, &schema, &schema).expect("static rules are valid");
        debug_assert_eq!(rules.len(), 6);
        let mut rel = Relation::empty(schema.clone());
        for e in 0..master_size as u64 {
            rel.push(Self::entity(&schema, e)).expect("arity ok");
        }
        let master = Arc::new(rel);
        WideKey {
            schema,
            rules,
            index: MasterIndex::new(master.clone()),
            master,
            master_size: master_size as u64,
        }
    }

    /// The registry row for device `e`. The location key is the
    /// mixed-radix decomposition of `e` (base 3 per level, open-ended
    /// `slot`), so any two distinct entities differ somewhere in the
    /// 7-tuple while sharing long prefixes with their neighbours.
    fn entity(schema: &Schema, e: u64) -> Tuple {
        let mut t = Tuple::nulls(schema.len());
        let mut set = |name: &str, v: Value| {
            t.set(schema.attr(name).unwrap(), v);
        };
        let mut rest = e;
        for name in ["site", "region", "zone", "cell", "rack", "shelf"] {
            set(name, Value::str(format!("{name}-{}", rest % 3)));
            rest /= 3;
        }
        set("slot", Value::int(rest as i64));
        // the rack-level prefix is the five low digits, i.e. e mod 3^5
        set("steward", Value::str(format!("steward-{}", e % 243)));
        set("device", Value::str(format!("dev-{e:08}")));
        set("owner", Value::str(format!("team-{}", e % 17)));
        set(
            "status",
            Value::str(if e % 5 == 4 { "retired" } else { "active" }),
        );
        t
    }
}

impl Workload for WideKey {
    fn name(&self) -> &'static str {
        "widekey"
    }

    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn rules(&self) -> &RuleSet {
        &self.rules
    }

    fn master(&self) -> &Arc<Relation> {
        &self.master
    }

    fn master_index(&self) -> &MasterIndex {
        &self.index
    }

    fn fresh_clean(&self, rng: &mut SmallRng) -> Tuple {
        let e = FRESH_BASE + self.master_size + rng.random_range(0..1_000_000u64);
        WideKey::entity(&self.schema, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schema_and_rules_parse() {
        let wk = WideKey::generate(100);
        assert_eq!(wk.schema().len(), 11);
        assert_eq!(wk.rules().len(), 6);
        assert_eq!(wk.master().len(), 100);
        let wide: Vec<_> = wk
            .rules()
            .iter()
            .filter(|(_, r)| r.lhs().len() == 7)
            .collect();
        assert_eq!(wide.len(), 2, "both expansions of `w` key 7 attributes");
    }

    #[test]
    fn master_is_key_consistent() {
        let wk = WideKey::generate(300);
        for (_, rule) in wk.rules().iter() {
            let idx = wk.master_index().index_for(rule.lhs_m());
            for tm in wk.master().iter() {
                let probe = tm.project(rule.lhs_m());
                let rows = idx.lookup(&probe);
                let mut vals: Vec<&Value> = rows
                    .iter()
                    .map(|&i| wk.master().tuple(i as usize).get(rule.rhs_m()))
                    .collect();
                vals.dedup();
                assert!(
                    vals.len() <= 1,
                    "rule {} key {probe:?} must be functional",
                    rule.name()
                );
            }
        }
    }

    /// The mixed-radix key shares prefixes: with 300 devices, the
    /// first six levels cycle through only three values each, so the
    /// key columns are massively non-unique individually while the
    /// 7-tuple stays unique.
    #[test]
    fn location_prefixes_are_shared() {
        let wk = WideKey::generate(300);
        let site = wk.schema().attr("site").unwrap();
        let mut sites: Vec<&Value> = wk.master().iter().map(|t| t.get(site)).collect();
        sites.sort_unstable();
        sites.dedup();
        assert_eq!(sites.len(), 3, "three sites across 300 devices");
    }

    #[test]
    fn fresh_entities_share_no_full_key() {
        let wk = WideKey::generate(100);
        let mut rng = SmallRng::seed_from_u64(7);
        let fresh = wk.fresh_clean(&mut rng);
        let slot = wk.schema().attr("slot").unwrap();
        let device = wk.schema().attr("device").unwrap();
        // the open-ended `slot` digit separates fresh ids from masters
        assert!(wk.master().iter().all(|tm| tm.get(slot) != fresh.get(slot)));
        assert!(wk
            .master()
            .iter()
            .all(|tm| tm.get(device) != fresh.get(device)));
    }
}
