//! Synthetic workloads reproducing the paper's experimental setup
//! (Sect. 6).
//!
//! The paper evaluates on two real datasets we do not have access to:
//! **HOSP** (US Hospital Compare, 19 attributes, 21 eRs) and **DBLP**
//! (bibliography join, 12 attributes, 16 eRs). The experiments depend
//! only on the datasets' *dependency structure* — which the published
//! rule sets describe exactly — and on three knobs of the paper's dirty
//! data generator:
//!
//! * `d%` — duplicate rate: the probability that an input tuple matches
//!   a master entity (relevance/completeness of `Dm`),
//! * `n%` — noise rate: the fraction of erroneous attributes,
//! * `|Dm|` — master data cardinality.
//!
//! [`hosp`] and [`dblp`] generate seeded master relations with the same
//! schemas, the same rule sets, and key-consistent entities;
//! [`dirty`] implements the knob-controlled corruption, keeping each
//! input tuple paired with its ground truth.

pub mod dblp;
pub mod dirty;
pub mod hosp;
pub mod typo;
pub mod widekey;

pub use dblp::Dblp;
pub use dirty::{Batches, Dataset, DirtyConfig, DirtyTuple, Workload};
pub use hosp::Hosp;
pub use widekey::WideKey;
