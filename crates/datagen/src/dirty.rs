//! The dirty-data generator (paper Sect. 6, "Experimental data").
//!
//! Given a clean workload, the generator produces input tuples
//! controlled by:
//!
//! * **duplicate rate `d%`** — the probability that an input tuple
//!   matches a tuple in the master data (its errors are then fixable);
//!   the remaining tuples describe fresh entities the master data knows
//!   nothing about,
//! * **noise rate `n%`** — the probability that each attribute of an
//!   input tuple is corrupted (typo, value perturbation, or loss),
//! * the master cardinality `|Dm|` (owned by the workload generator).
//!
//! Every dirty tuple stays paired with its ground truth, which both the
//! simulated user and the evaluation metrics consume.

use std::sync::Arc;

use certainfix_relation::{MasterIndex, Relation, Schema, Tuple};
use certainfix_rules::RuleSet;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::typo::{corrupt_value, free_text};

/// A clean, key-consistent workload: schema (shared by `R` and `Rm`),
/// rule set, master relation, and a source of fresh entities.
pub trait Workload {
    /// Workload name (`hosp`, `dblp`).
    fn name(&self) -> &'static str;
    /// The shared schema of `R` and `Rm`.
    fn schema(&self) -> &Arc<Schema>;
    /// The editing rules `Σ`.
    fn rules(&self) -> &RuleSet;
    /// The master relation `Dm`.
    fn master(&self) -> &Arc<Relation>;
    /// `Dm` with its index cache.
    fn master_index(&self) -> &MasterIndex;
    /// A clean tuple describing an entity *not* present in `Dm`.
    fn fresh_clean(&self, rng: &mut SmallRng) -> Tuple;
}

/// Knobs of the dirty-data generator. Paper defaults: `d% = 30`,
/// `n% = 20`, 10K input tuples.
#[derive(Clone, Copy, Debug)]
pub struct DirtyConfig {
    /// Probability an input tuple duplicates a master entity.
    pub duplicate_rate: f64,
    /// Per-attribute corruption probability.
    pub noise_rate: f64,
    /// Number of input tuples to generate.
    pub input_size: usize,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
    /// Zipf-ish positional skew of per-tuple *hardness* (0 = the
    /// uniform stream of the paper). With `skew > 0` the tuple at
    /// position `i` gets the hardness multiplier
    /// `m(i) = min((N / (i+1))^skew, 16)`: its duplicate rate is
    /// divided by `m(i)` (hard tuples are mostly fresh entities, which
    /// need the most interaction rounds) and its noise rate multiplied
    /// by `m(i)` (capped at 0.9). The head of the stream is therefore
    /// disproportionately expensive to repair — the adversarial shape
    /// for a contiguous-shard scheduler, whose first shard swallows
    /// the whole hard region.
    pub skew: f64,
    /// Hot-window size for duplicate draws. `0` (the default) draws
    /// duplicated entities uniformly over the whole master — the
    /// paper's setting. With `hot = k > 0`, duplicates come from the
    /// first `k` master rows only: the bursty data-entry regime where
    /// one operator re-enters the same few entities in a window, so a
    /// contiguous chunk of the stream carries heavily repeated probe
    /// keys (the regime the block-probe layer amortizes).
    pub hot: usize,
    /// Probability that a corrupted cell is replaced by an adversarial
    /// high-cardinality free-text payload ([`crate::typo::free_text`])
    /// instead of a near-miss typo of the true value. `0` (the
    /// default) is the paper's typo model, under which corrupted cells
    /// mostly re-use symbols the interner already holds; `1.0` makes
    /// every corrupted cell a brand-new never-repeated symbol, so the
    /// interner watermark grows by roughly one symbol per erroneous
    /// attribute — the bound the interner-watermark CI leg asserts.
    pub free_text: f64,
}

impl Default for DirtyConfig {
    fn default() -> Self {
        DirtyConfig {
            duplicate_rate: 0.3,
            noise_rate: 0.2,
            input_size: 1000,
            seed: 0xC0FFEE,
            skew: 0.0,
            hot: 0,
            free_text: 0.0,
        }
    }
}

impl DirtyConfig {
    /// Hardness cap: the head tuple is at most this many times harder
    /// than the tail.
    pub const MAX_HARDNESS: f64 = 16.0;

    /// The hardness multiplier `m(i)` for position `i` (see
    /// [`DirtyConfig::skew`]); 1 everywhere when `skew <= 0`.
    pub fn hardness(&self, i: usize) -> f64 {
        if self.skew <= 0.0 || self.input_size == 0 {
            return 1.0;
        }
        (self.input_size as f64 / (i as f64 + 1.0))
            .powf(self.skew)
            .clamp(1.0, Self::MAX_HARDNESS)
    }

    /// Effective `(duplicate_rate, noise_rate)` for position `i`.
    /// Exactly the configured pair when `skew <= 0`.
    fn rates_at(&self, i: usize) -> (f64, f64) {
        if self.skew <= 0.0 {
            return (self.duplicate_rate, self.noise_rate);
        }
        let m = self.hardness(i);
        (
            (self.duplicate_rate / m).max(0.0),
            (self.noise_rate * m).min(0.9),
        )
    }
}

/// One generated input tuple with its ground truth.
#[derive(Clone, Debug)]
pub struct DirtyTuple {
    /// The (possibly corrupted) tuple as it would arrive at data entry.
    pub dirty: Tuple,
    /// The ground truth.
    pub clean: Tuple,
    /// Master row this tuple duplicates, if any.
    pub from_master: Option<u32>,
}

impl DirtyTuple {
    /// Attributes whose dirty value differs from the truth.
    pub fn error_attrs(&self) -> Vec<certainfix_relation::AttrId> {
        self.dirty.diff(&self.clean)
    }

    /// `true` iff the tuple arrived with at least one error.
    pub fn is_erroneous(&self) -> bool {
        self.dirty != self.clean
    }
}

/// A generated input set.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The inputs, in arrival order.
    pub inputs: Vec<DirtyTuple>,
    /// The config that produced them.
    pub config: DirtyConfig,
}

impl Dataset {
    /// Generate `cfg.input_size` dirty tuples from `workload`.
    pub fn generate<W: Workload + ?Sized>(workload: &W, cfg: &DirtyConfig) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let master = workload.master();
        let mut inputs = Vec::with_capacity(cfg.input_size);
        for i in 0..cfg.input_size {
            let (duplicate_rate, noise_rate) = cfg.rates_at(i);
            let (clean, from_master) = if !master.is_empty() && rng.random_bool(duplicate_rate) {
                let pool = if cfg.hot > 0 {
                    cfg.hot.min(master.len())
                } else {
                    master.len()
                };
                let row = rng.random_range(0..pool as u32);
                (master.tuple(row as usize).clone(), Some(row))
            } else {
                (workload.fresh_clean(&mut rng), None)
            };
            let mut dirty = clean.clone();
            for (a, _) in clean.iter() {
                if rng.random_bool(noise_rate) {
                    // the free-text gate draws from the RNG only when
                    // the knob is on, so `free_text: 0.0` streams are
                    // bit-identical to historical generation
                    let corrupted = if cfg.free_text > 0.0 && rng.random_bool(cfg.free_text) {
                        free_text(&mut rng)
                    } else {
                        corrupt_value(clean.get(a), &mut rng)
                    };
                    dirty.set(a, corrupted);
                }
            }
            inputs.push(DirtyTuple {
                dirty,
                clean,
                from_master,
            });
        }
        Dataset {
            inputs,
            config: *cfg,
        }
    }

    /// Generate the same stream in batches of (up to) `batch` tuples —
    /// the shape the sharded batch-repair engine and the streaming
    /// experiments consume. Each batch draws from its own seeded RNG
    /// stream (derived from `cfg.seed` and the batch index), so any
    /// batch can be regenerated independently without replaying its
    /// predecessors; batch 0 uses `cfg.seed` itself, so a single batch
    /// covering the whole stream is identical to [`Dataset::generate`].
    /// With `skew > 0` the positional hardness profile restarts at
    /// every batch head (each batch is its own zipf-ish stream).
    pub fn batches<'a, W: Workload + ?Sized>(
        workload: &'a W,
        cfg: &DirtyConfig,
        batch: usize,
    ) -> Batches<'a, W> {
        assert!(batch > 0, "batch size must be positive");
        Batches {
            workload,
            cfg: *cfg,
            batch,
            remaining: cfg.input_size,
            index: 0,
        }
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` iff no inputs were generated.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Count of tuples carrying at least one error.
    pub fn erroneous(&self) -> usize {
        self.inputs.iter().filter(|t| t.is_erroneous()).count()
    }

    /// Total erroneous attributes over all inputs.
    pub fn erroneous_attrs(&self) -> usize {
        self.inputs.iter().map(|t| t.error_attrs().len()).sum()
    }

    /// The dirty tuples as a relation (for whole-relation baselines
    /// like `IncRep`).
    pub fn dirty_relation(&self, schema: Arc<Schema>) -> Relation {
        Relation::new(
            schema,
            self.inputs.iter().map(|t| t.dirty.clone()).collect(),
        )
        .expect("inputs share the workload schema")
    }
}

/// Iterator over batched dirty-data generation; see [`Dataset::batches`].
#[derive(Clone, Debug)]
pub struct Batches<'a, W: ?Sized> {
    workload: &'a W,
    cfg: DirtyConfig,
    batch: usize,
    remaining: usize,
    index: u64,
}

impl<W: ?Sized> Batches<'_, W> {
    /// Tuples (not batches) still to be generated — what a streaming
    /// consumer preallocates outcome buffers from. Decreases by each
    /// yielded batch's size; [`Iterator::size_hint`] derives the batch
    /// count from it.
    pub fn remaining_tuples(&self) -> usize {
        self.remaining
    }

    /// The configured batch size (the last batch may be smaller).
    pub fn batch_size(&self) -> usize {
        self.batch
    }
}

impl<W: Workload + ?Sized> Iterator for Batches<'_, W> {
    type Item = Dataset;

    fn next(&mut self) -> Option<Dataset> {
        if self.remaining == 0 {
            return None;
        }
        let size = self.batch.min(self.remaining);
        self.remaining -= size;
        // splitmix-style odd multiplier decorrelates successive batch
        // seeds; index 0 keeps the caller's seed untouched.
        let cfg = DirtyConfig {
            input_size: size,
            seed: self.cfg.seed ^ self.index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..self.cfg
        };
        self.index += 1;
        Some(Dataset::generate(self.workload, &cfg))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining.div_ceil(self.batch);
        (n, Some(n))
    }
}

impl<W: Workload + ?Sized> ExactSizeIterator for Batches<'_, W> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosp::Hosp;

    #[test]
    fn zero_noise_means_clean_inputs() {
        let hosp = Hosp::generate(100);
        let cfg = DirtyConfig {
            noise_rate: 0.0,
            input_size: 200,
            ..Default::default()
        };
        let ds = Dataset::generate(&hosp, &cfg);
        assert_eq!(ds.erroneous(), 0);
        assert_eq!(ds.erroneous_attrs(), 0);
    }

    #[test]
    fn full_duplicate_rate_draws_from_master() {
        let hosp = Hosp::generate(100);
        let cfg = DirtyConfig {
            duplicate_rate: 1.0,
            input_size: 100,
            ..Default::default()
        };
        let ds = Dataset::generate(&hosp, &cfg);
        assert!(ds.inputs.iter().all(|t| t.from_master.is_some()));
        for t in &ds.inputs {
            let row = t.from_master.unwrap() as usize;
            assert_eq!(&t.clean, hosp.master().tuple(row));
        }
    }

    #[test]
    fn zero_duplicate_rate_is_all_fresh() {
        let hosp = Hosp::generate(100);
        let cfg = DirtyConfig {
            duplicate_rate: 0.0,
            input_size: 100,
            ..Default::default()
        };
        let ds = Dataset::generate(&hosp, &cfg);
        assert!(ds.inputs.iter().all(|t| t.from_master.is_none()));
    }

    #[test]
    fn noise_rate_hits_roughly_the_expected_attr_count() {
        let hosp = Hosp::generate(200);
        let cfg = DirtyConfig {
            noise_rate: 0.2,
            input_size: 500,
            ..Default::default()
        };
        let ds = Dataset::generate(&hosp, &cfg);
        let expected = 0.2 * 500.0 * 19.0;
        let got = ds.erroneous_attrs() as f64;
        assert!(
            (got - expected).abs() < expected * 0.2,
            "got {got}, expected ≈ {expected}"
        );
    }

    #[test]
    fn duplicate_rate_is_respected_statistically() {
        let hosp = Hosp::generate(200);
        let cfg = DirtyConfig {
            duplicate_rate: 0.3,
            input_size: 1000,
            ..Default::default()
        };
        let ds = Dataset::generate(&hosp, &cfg);
        let dups = ds.inputs.iter().filter(|t| t.from_master.is_some()).count();
        assert!((200..400).contains(&dups), "dups = {dups}");
    }

    #[test]
    fn deterministic_generation() {
        let hosp = Hosp::generate(50);
        let cfg = DirtyConfig {
            input_size: 50,
            ..Default::default()
        };
        let a = Dataset::generate(&hosp, &cfg);
        let b = Dataset::generate(&hosp, &cfg);
        for (x, y) in a.inputs.iter().zip(&b.inputs) {
            assert_eq!(x.dirty, y.dirty);
            assert_eq!(x.clean, y.clean);
        }
    }

    #[test]
    fn batches_cover_the_stream_and_are_deterministic() {
        let hosp = Hosp::generate(50);
        let cfg = DirtyConfig {
            input_size: 103,
            ..Default::default()
        };
        let batches: Vec<Dataset> = Dataset::batches(&hosp, &cfg, 40).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(
            batches.iter().map(Dataset::len).collect::<Vec<_>>(),
            vec![40, 40, 23]
        );
        // regeneration is bit-identical
        let again: Vec<Dataset> = Dataset::batches(&hosp, &cfg, 40).collect();
        for (a, b) in batches.iter().zip(&again) {
            for (x, y) in a.inputs.iter().zip(&b.inputs) {
                assert_eq!(x.dirty, y.dirty);
                assert_eq!(x.clean, y.clean);
            }
        }
        // batches draw from decorrelated streams, not repeats of batch 0
        assert!(batches[0]
            .inputs
            .iter()
            .zip(&batches[1].inputs)
            .any(|(x, y)| x.dirty != y.dirty));
    }

    /// The satellite contract for streaming consumers: `size_hint` is
    /// exact at every point of the iteration (so `ExactSizeIterator`
    /// preallocation is sound), counting partial tail batches, and
    /// `remaining_tuples` tracks the tuples — not batches — left.
    #[test]
    fn batches_size_hint_is_exact_throughout() {
        let hosp = Hosp::generate(30);
        let cfg = DirtyConfig {
            input_size: 103,
            ..Default::default()
        };
        let mut it = Dataset::batches(&hosp, &cfg, 40);
        assert_eq!(it.batch_size(), 40);
        let mut expected_tuples = 103usize;
        loop {
            let batches_left = expected_tuples.div_ceil(40);
            assert_eq!(it.remaining_tuples(), expected_tuples);
            assert_eq!(it.size_hint(), (batches_left, Some(batches_left)));
            assert_eq!(it.len(), batches_left, "ExactSizeIterator agrees");
            match it.next() {
                Some(ds) => expected_tuples -= ds.len(),
                None => break,
            }
        }
        assert_eq!(expected_tuples, 0, "the hint drained to zero exactly");
        // exhausted iterators stay exhausted and keep reporting zero
        assert_eq!(it.len(), 0);
        assert_eq!(it.remaining_tuples(), 0);
        assert!(it.next().is_none());

        // a collect sized by the hint allocates exactly once
        let all: Vec<Dataset> = Dataset::batches(&hosp, &cfg, 25).collect();
        assert_eq!(all.len(), Dataset::batches(&hosp, &cfg, 25).len());
        assert_eq!(all.iter().map(Dataset::len).sum::<usize>(), 103);
    }

    #[test]
    fn single_batch_equals_unbatched_generation() {
        let hosp = Hosp::generate(40);
        let cfg = DirtyConfig {
            input_size: 60,
            ..Default::default()
        };
        let whole = Dataset::generate(&hosp, &cfg);
        let mut it = Dataset::batches(&hosp, &cfg, 60);
        assert_eq!(it.len(), 1);
        let only = it.next().unwrap();
        assert!(it.next().is_none());
        for (a, b) in whole.inputs.iter().zip(&only.inputs) {
            assert_eq!(a.dirty, b.dirty);
            assert_eq!(a.clean, b.clean);
            assert_eq!(a.from_master, b.from_master);
        }
    }

    #[test]
    fn zero_skew_is_the_uniform_stream() {
        let hosp = Hosp::generate(60);
        let cfg = DirtyConfig {
            input_size: 200,
            ..Default::default()
        };
        assert_eq!(cfg.hardness(0), 1.0);
        assert_eq!(cfg.hardness(199), 1.0);
        // bit-identical to an explicitly-zero skew config
        let a = Dataset::generate(&hosp, &cfg);
        let b = Dataset::generate(&hosp, &DirtyConfig { skew: 0.0, ..cfg });
        for (x, y) in a.inputs.iter().zip(&b.inputs) {
            assert_eq!(x.dirty, y.dirty);
            assert_eq!(x.from_master, y.from_master);
        }
    }

    #[test]
    fn hot_window_confines_duplicates_and_zero_is_uniform() {
        let hosp = Hosp::generate(500);
        let cfg = DirtyConfig {
            duplicate_rate: 0.9,
            input_size: 300,
            ..Default::default()
        };
        // hot = 0 is bit-identical to the historical uniform draw
        let a = Dataset::generate(&hosp, &cfg);
        let b = Dataset::generate(&hosp, &DirtyConfig { hot: 0, ..cfg });
        for (x, y) in a.inputs.iter().zip(&b.inputs) {
            assert_eq!(x.dirty, y.dirty);
            assert_eq!(x.from_master, y.from_master);
        }
        // a hot window draws every duplicate from the first k rows,
        // so a short stream chunk carries heavily repeated entities
        let hot = Dataset::generate(&hosp, &DirtyConfig { hot: 16, ..cfg });
        let rows: Vec<u32> = hot.inputs.iter().filter_map(|t| t.from_master).collect();
        assert!(rows.len() > 200, "duplicate rate still applies");
        assert!(rows.iter().all(|&r| r < 16), "confined to the window");
        // a window wider than the master degrades to uniform
        let wide = Dataset::generate(&hosp, &DirtyConfig { hot: 10_000, ..cfg });
        assert!(wide
            .inputs
            .iter()
            .filter_map(|t| t.from_master)
            .any(|r| r >= 16));
    }

    #[test]
    fn free_text_zero_is_the_historical_stream() {
        let hosp = Hosp::generate(60);
        let cfg = DirtyConfig {
            noise_rate: 0.4,
            input_size: 150,
            ..Default::default()
        };
        let a = Dataset::generate(&hosp, &cfg);
        let b = Dataset::generate(
            &hosp,
            &DirtyConfig {
                free_text: 0.0,
                ..cfg
            },
        );
        for (x, y) in a.inputs.iter().zip(&b.inputs) {
            assert_eq!(x.dirty, y.dirty);
            assert_eq!(x.clean, y.clean);
        }
    }

    /// The adversarial interner regime: with `free_text = 1.0` every
    /// corrupted string cell is a brand-new payload, so the distinct
    /// dirty-symbol count grows ~1:1 with the erroneous string attrs —
    /// unlike the typo model, whose near-misses collide heavily.
    #[test]
    fn free_text_payloads_are_high_cardinality_and_deterministic() {
        use certainfix_relation::Value;
        use std::collections::HashSet;
        let hosp = Hosp::generate(80);
        let cfg = DirtyConfig {
            noise_rate: 0.5,
            input_size: 400,
            free_text: 1.0,
            ..Default::default()
        };
        let ds = Dataset::generate(&hosp, &cfg);
        let mut fresh: HashSet<Value> = HashSet::new();
        let mut string_errs = 0usize;
        for t in &ds.inputs {
            for a in t.error_attrs() {
                if let v @ Value::Str(_) = t.dirty.get(a) {
                    string_errs += 1;
                    fresh.insert(*v);
                }
            }
        }
        assert!(string_errs > 500, "enough corrupted string cells");
        // every corrupted string cell is a distinct never-repeated
        // payload (a few Null corruptions aside, corruption is 100%
        // free text here)
        assert_eq!(fresh.len(), string_errs, "payloads never collide");
        // and regeneration is bit-identical
        let again = Dataset::generate(&hosp, &cfg);
        for (x, y) in ds.inputs.iter().zip(&again.inputs) {
            assert_eq!(x.dirty, y.dirty);
        }
    }

    #[test]
    fn hardness_is_zipfish_capped_and_monotone() {
        let cfg = DirtyConfig {
            input_size: 10_000,
            skew: 1.0,
            ..Default::default()
        };
        assert_eq!(cfg.hardness(0), DirtyConfig::MAX_HARDNESS, "head capped");
        assert_eq!(cfg.hardness(9_999), 1.0, "tail at baseline");
        let mid = cfg.hardness(2_499);
        assert!((mid - 4.0).abs() < 0.01, "m(N/4) = 4 at skew 1: {mid}");
        for i in (0..10_000).step_by(97) {
            assert!(cfg.hardness(i) >= cfg.hardness(i + 3), "non-increasing");
        }
    }

    #[test]
    fn skew_front_loads_errors_and_starves_the_head_of_duplicates() {
        let hosp = Hosp::generate(300);
        let cfg = DirtyConfig {
            input_size: 2_000,
            skew: 1.0,
            ..Default::default()
        };
        let ds = Dataset::generate(&hosp, &cfg);
        let tenth = cfg.input_size / 10;
        let head = &ds.inputs[..tenth];
        let tail = &ds.inputs[cfg.input_size - tenth..];
        let errs = |s: &[DirtyTuple]| s.iter().map(|t| t.error_attrs().len()).sum::<usize>();
        let dups = |s: &[DirtyTuple]| s.iter().filter(|t| t.from_master.is_some()).count();
        assert!(
            errs(head) > 2 * errs(tail),
            "head noisier: {} vs {}",
            errs(head),
            errs(tail)
        );
        assert!(
            dups(head) < dups(tail),
            "head mostly fresh: {} vs {}",
            dups(head),
            dups(tail)
        );
    }

    #[test]
    fn skewed_generation_is_deterministic() {
        let hosp = Hosp::generate(50);
        let cfg = DirtyConfig {
            input_size: 120,
            skew: 0.8,
            ..Default::default()
        };
        let a = Dataset::generate(&hosp, &cfg);
        let b = Dataset::generate(&hosp, &cfg);
        for (x, y) in a.inputs.iter().zip(&b.inputs) {
            assert_eq!(x.dirty, y.dirty);
            assert_eq!(x.clean, y.clean);
        }
    }

    #[test]
    fn dirty_relation_roundtrip() {
        let hosp = Hosp::generate(20);
        let ds = Dataset::generate(
            &hosp,
            &DirtyConfig {
                input_size: 20,
                ..Default::default()
            },
        );
        let rel = ds.dirty_relation(hosp.schema().clone());
        assert_eq!(rel.len(), 20);
        assert_eq!(rel.tuple(3), &ds.inputs[3].dirty);
    }

    #[test]
    fn error_attrs_diff() {
        let hosp = Hosp::generate(10);
        let ds = Dataset::generate(
            &hosp,
            &DirtyConfig {
                noise_rate: 0.5,
                input_size: 30,
                ..Default::default()
            },
        );
        for t in &ds.inputs {
            let diff = t.error_attrs();
            assert_eq!(diff.is_empty(), !t.is_erroneous());
            for a in diff {
                assert_ne!(t.dirty.get(a), t.clean.get(a));
            }
        }
    }
}
