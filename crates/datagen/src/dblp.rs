//! The DBLP workload.
//!
//! The paper joins DBLP's inproceedings records with their proceedings
//! (via the `crossref` foreign key) and author homepages into a
//! 12-attribute relation, with 16 editing rules. Two of those rules
//! (φ2, φ4) map an attribute to a *different* attribute of the master
//! schema (`a2 ↦ a1`) — the cross-attribute capability CFDs cannot
//! express (Sect. 6: "even when Rm and R share the same schema, some
//! eRs still could not be syntactically expressed as CFDs").
//!
//! The generator produces key-consistent conferences, papers and
//! authors; consecutive papers share an author so that the
//! cross-attribute rules genuinely fire.

use std::sync::Arc;

use certainfix_relation::{MasterIndex, Relation, Schema, Tuple, Value};
use certainfix_rules::{parse_rules, RuleSet};
use rand::rngs::SmallRng;
use rand::RngExt;

use crate::dirty::Workload;

/// The 12 attributes of the joined DBLP table (paper Sect. 6).
pub const DBLP_ATTRS: [&str; 12] = [
    "ptitle",
    "a1",
    "a2",
    "hp1",
    "hp2",
    "btitle",
    "publisher",
    "isbn",
    "crossref",
    "year",
    "type",
    "pages",
];

/// The 16 editing rules of the DBLP workload (paper's φ1–φ7 families).
pub const DBLP_RULES: &str = r#"
    # φ1: an author determines their homepage
    f1: match a1 ~ a1 set hp1 := hp1
    # φ2: cross-attribute — a2 looked up among master a1 values
    f2: match a2 ~ a1 set hp2 := hp1
    # φ3: second-author homepage
    f3: match a2 ~ a2 set hp2 := hp2
    # φ4: cross-attribute — a1 looked up among master a2 values
    f4: match a1 ~ a2 set hp1 := hp2
    # φ5: (type, btitle, year) determines the proceedings block (3 rules)
    f5: match type ~ type, btitle ~ btitle, year ~ year set isbn := isbn, publisher := publisher, crossref := crossref when type = 'inproceedings'
    # φ6: (type, crossref) determines the proceedings block (4 rules)
    f6: match type ~ type, crossref ~ crossref set btitle := btitle, year := year, isbn := isbn, publisher := publisher when type = 'inproceedings'
    # φ7: (type, a1, a2, ptitle, pages) identifies the paper (5 rules)
    f7: match type ~ type, a1 ~ a1, a2 ~ a2, ptitle ~ ptitle, pages ~ pages set isbn := isbn, publisher := publisher, year := year, btitle := btitle, crossref := crossref when type = 'inproceedings'
"#;

const PUBLISHERS: [&str; 6] = [
    "Springer",
    "ACM",
    "IEEE Computer Society",
    "Morgan Kaufmann",
    "VLDB Endowment",
    "Elsevier",
];

const TOPICS: [&str; 8] = [
    "query optimization",
    "data cleaning",
    "stream processing",
    "transaction management",
    "graph analytics",
    "schema mapping",
    "record matching",
    "provenance",
];

const VENUES: [&str; 10] = [
    "VLDB", "SIGMOD", "ICDE", "EDBT", "PODS", "CIKM", "ICDT", "WWW", "KDD", "SIGIR",
];

/// Papers per conference.
const PAPERS_PER_CONF: u64 = 25;

/// Entity generator + master relation for the DBLP workload.
pub struct Dblp {
    schema: Arc<Schema>,
    rules: RuleSet,
    master: Arc<Relation>,
    index: MasterIndex,
    master_size: u64,
}

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 31;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 29;
    x
}

impl Dblp {
    /// Generate a DBLP workload with `master_size` master rows.
    pub fn generate(master_size: usize) -> Dblp {
        let schema = Schema::new("DBLP", DBLP_ATTRS).expect("static schema is valid");
        let rules = parse_rules(DBLP_RULES, &schema, &schema).expect("static rules are valid");
        debug_assert_eq!(rules.len(), 16);
        let mut rel = Relation::empty(schema.clone());
        for p in 0..master_size as u64 {
            rel.push(Self::entity(&schema, p)).expect("arity ok");
        }
        let master = Arc::new(rel);
        Dblp {
            schema,
            rules,
            index: MasterIndex::new(master.clone()),
            master,
            master_size: master_size as u64,
        }
    }

    fn author(k: u64) -> (String, String) {
        (
            format!("Author {}. Number{}", (b'A' + (k % 26) as u8) as char, k),
            format!("https://dblp.example.org/~author{k}"),
        )
    }

    /// The joined row for paper index `p` (conference `p / 25`).
    fn entity(schema: &Schema, p: u64) -> Tuple {
        let c = p / PAPERS_PER_CONF;
        let venue = VENUES[(c % VENUES.len() as u64) as usize];
        let year = 1990 + (c / VENUES.len() as u64) % 25;
        let btitle = format!("Proc. {venue} {year} vol {c}");
        let publisher = PUBLISHERS[(mix(c, 3) % 6) as usize];
        let isbn = format!("978-{:04}-{:05}", c % 10000, mix(c, 5) % 100000);
        let crossref = format!("conf/{}/{}", venue.to_lowercase(), c);
        // consecutive papers share an author so cross-attribute rules fire
        let (a1, hp1) = Self::author(p);
        let (a2, hp2) = Self::author(p + 1);
        let topic = TOPICS[(mix(p, 7) % 8) as usize];
        let ptitle = format!("On {topic}: technique {p}");
        let start = 1 + mix(p, 9) % 390;
        let pages = format!("{}-{}", start, start + 8 + mix(p, 11) % 12);
        let mut t = Tuple::nulls(schema.len());
        let mut set = |name: &str, v: Value| {
            t.set(schema.attr(name).unwrap(), v);
        };
        set("ptitle", Value::str(&ptitle));
        set("a1", Value::str(&a1));
        set("a2", Value::str(&a2));
        set("hp1", Value::str(&hp1));
        set("hp2", Value::str(&hp2));
        set("btitle", Value::str(&btitle));
        set("publisher", Value::str(publisher));
        set("isbn", Value::str(&isbn));
        set("crossref", Value::str(&crossref));
        set("year", Value::int(year as i64));
        set("type", Value::str("inproceedings"));
        set("pages", Value::str(&pages));
        t
    }
}

impl Workload for Dblp {
    fn name(&self) -> &'static str {
        "dblp"
    }

    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn rules(&self) -> &RuleSet {
        &self.rules
    }

    fn master(&self) -> &Arc<Relation> {
        &self.master
    }

    fn master_index(&self) -> &MasterIndex {
        &self.index
    }

    fn fresh_clean(&self, rng: &mut SmallRng) -> Tuple {
        let p = 10_000_000 + self.master_size + rng.random_range(0..1_000_000u64);
        Dblp::entity(&self.schema, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schema_and_rules_match_the_paper() {
        let dblp = Dblp::generate(100);
        assert_eq!(dblp.schema().len(), 12);
        assert_eq!(dblp.rules().len(), 16);
        assert_eq!(dblp.master().len(), 100);
    }

    #[test]
    fn master_is_key_consistent() {
        let dblp = Dblp::generate(400);
        for (_, rule) in dblp.rules().iter() {
            let idx = dblp.master_index().index_for(rule.lhs_m());
            for tm in dblp.master().iter() {
                let probe = tm.project(rule.lhs_m());
                let rows = idx.lookup(&probe);
                let mut vals: Vec<&Value> = rows
                    .iter()
                    .map(|&i| dblp.master().tuple(i as usize).get(rule.rhs_m()))
                    .collect();
                vals.dedup();
                assert!(
                    vals.len() <= 1,
                    "rule {} key {probe:?} must be functional",
                    rule.name()
                );
            }
        }
    }

    /// The cross-attribute rule f2 (a2 ↦ a1) must actually fire: the
    /// second author of paper p is the first author of paper p+1.
    #[test]
    fn cross_attribute_rules_have_support() {
        let dblp = Dblp::generate(50);
        let a1 = dblp.schema().attr("a1").unwrap();
        let a2 = dblp.schema().attr("a2").unwrap();
        let hp1 = dblp.schema().attr("hp1").unwrap();
        let hp2 = dblp.schema().attr("hp2").unwrap();
        let t0 = dblp.master().tuple(0);
        let t1 = dblp.master().tuple(1);
        assert_eq!(t0.get(a2), t1.get(a1), "author overlap");
        assert_eq!(
            t0.get(hp2),
            t1.get(hp1),
            "homepage consistent across a1/a2 columns"
        );
    }

    #[test]
    fn fresh_entities_share_no_keys() {
        let dblp = Dblp::generate(100);
        let mut rng = SmallRng::seed_from_u64(11);
        let fresh = dblp.fresh_clean(&mut rng);
        for key in ["ptitle", "a1", "a2", "crossref"] {
            let a = dblp.schema().attr(key).unwrap();
            assert!(dblp.master().iter().all(|tm| tm.get(a) != fresh.get(a)));
        }
    }

    #[test]
    fn all_rows_are_inproceedings() {
        let dblp = Dblp::generate(60);
        let ty = dblp.schema().attr("type").unwrap();
        assert!(dblp
            .master()
            .iter()
            .all(|t| t.get(ty) == &Value::str("inproceedings")));
    }
}
