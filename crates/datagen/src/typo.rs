//! String corruption primitives for the dirty-data generator.

use certainfix_relation::Value;
use rand::{Rng, RngExt};

/// Kinds of injected errors, mirroring common data-entry mistakes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// A single-character substitution.
    Substitute,
    /// A dropped character.
    Delete,
    /// An inserted character.
    Insert,
    /// Two adjacent characters swapped.
    Transpose,
    /// The value is lost entirely (missing field).
    Null,
}

const KINDS: [ErrorKind; 5] = [
    ErrorKind::Substitute,
    ErrorKind::Delete,
    ErrorKind::Insert,
    ErrorKind::Transpose,
    ErrorKind::Null,
];

const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";

fn random_char<R: Rng>(rng: &mut R) -> char {
    ALPHABET[rng.random_range(0..ALPHABET.len())] as char
}

/// Apply one typo of the given kind to a string. Guaranteed to return
/// something different from the input (except for the degenerate empty
/// string, which can only be corrupted by insertion or nulling).
pub fn corrupt_string<R: Rng>(s: &str, kind: ErrorKind, rng: &mut R) -> Option<String> {
    let chars: Vec<char> = s.chars().collect();
    match kind {
        ErrorKind::Null => None,
        ErrorKind::Insert => {
            let pos = rng.random_range(0..=chars.len());
            let mut out: Vec<char> = chars.clone();
            out.insert(pos, random_char(rng));
            Some(out.into_iter().collect())
        }
        ErrorKind::Delete if !chars.is_empty() => {
            let pos = rng.random_range(0..chars.len());
            let mut out = chars.clone();
            out.remove(pos);
            Some(out.into_iter().collect())
        }
        ErrorKind::Substitute if !chars.is_empty() => {
            let pos = rng.random_range(0..chars.len());
            let mut out = chars.clone();
            let mut c = random_char(rng);
            while c == out[pos] {
                c = random_char(rng);
            }
            out[pos] = c;
            Some(out.into_iter().collect())
        }
        ErrorKind::Transpose if chars.len() >= 2 => {
            // find a swappable adjacent pair (distinct chars)
            let start = rng.random_range(0..chars.len() - 1);
            let mut out = chars.clone();
            for off in 0..chars.len() - 1 {
                let i = (start + off) % (chars.len() - 1);
                if out[i] != out[i + 1] {
                    out.swap(i, i + 1);
                    return Some(out.into_iter().collect());
                }
            }
            // all-equal string: fall back to substitution
            corrupt_string(s, ErrorKind::Substitute, rng)
        }
        // string too short for the requested kind: insert instead
        _ => corrupt_string(s, ErrorKind::Insert, rng),
    }
}

/// An adversarial high-cardinality "free text" payload: a fresh
/// 128-bit random hex string, distinct from every other draw for any
/// realistic stream length. This is the worst case for a symbol
/// interner — a corrupted cell carries a symbol never seen before and
/// never repeated — so a stream of these drives the interner's symbol
/// table (and `MonitorStats::interner_syms`) linearly in the number of
/// corrupted cells, which is exactly the regime the interner-watermark
/// CI leg bounds.
pub fn free_text<R: Rng>(rng: &mut R) -> Value {
    Value::str(format!("ft-{:016x}{:016x}", rng.next_u64(), rng.next_u64()))
}

/// Corrupt a [`Value`]: strings get a random typo, integers get nudged,
/// and any value may be nulled. Returns a value different from the
/// input (or `Null`).
pub fn corrupt_value<R: Rng>(v: &Value, rng: &mut R) -> Value {
    let kind = KINDS[rng.random_range(0..KINDS.len())];
    match (v, kind) {
        (_, ErrorKind::Null) => Value::Null,
        (Value::Null, _) => Value::str("spurious"),
        (Value::Int(i), _) => {
            let delta = rng.random_range(1..=9i64);
            Value::Int(if rng.random_bool(0.5) {
                i.wrapping_add(delta)
            } else {
                i.wrapping_sub(delta)
            })
        }
        (Value::Str(s), kind) => match corrupt_string(s.as_str(), kind, rng) {
            Some(out) => Value::str(out),
            None => Value::Null,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn corruption_changes_the_value() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            let v = Value::str("edinburgh");
            let c = corrupt_value(&v, &mut rng);
            assert_ne!(c, v);
        }
    }

    #[test]
    fn int_corruption_changes_the_number() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let c = corrupt_value(&Value::int(100), &mut rng);
            assert_ne!(c, Value::int(100));
        }
    }

    #[test]
    fn string_kinds_behave() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(corrupt_string("abc", ErrorKind::Null, &mut rng), None);
        let ins = corrupt_string("abc", ErrorKind::Insert, &mut rng).unwrap();
        assert_eq!(ins.chars().count(), 4);
        let del = corrupt_string("abc", ErrorKind::Delete, &mut rng).unwrap();
        assert_eq!(del.chars().count(), 2);
        let sub = corrupt_string("abc", ErrorKind::Substitute, &mut rng).unwrap();
        assert_eq!(sub.chars().count(), 3);
        assert_ne!(sub, "abc");
        let tr = corrupt_string("ab", ErrorKind::Transpose, &mut rng).unwrap();
        assert_eq!(tr, "ba");
    }

    #[test]
    fn degenerate_strings() {
        let mut rng = SmallRng::seed_from_u64(3);
        // empty string: delete/substitute/transpose degrade to insert
        let d = corrupt_string("", ErrorKind::Delete, &mut rng).unwrap();
        assert_eq!(d.chars().count(), 1);
        let t = corrupt_string("", ErrorKind::Transpose, &mut rng).unwrap();
        assert_eq!(t.chars().count(), 1);
        // all-equal string transpose falls back to substitution
        let s = corrupt_string("aaa", ErrorKind::Transpose, &mut rng).unwrap();
        assert_ne!(s, "aaa");
        assert_eq!(s.chars().count(), 3);
        // null corrupts to something non-null unless nulled again
        let mut saw_non_null = false;
        for _ in 0..50 {
            if !corrupt_value(&Value::Null, &mut rng).is_null() {
                saw_non_null = true;
            }
        }
        assert!(saw_non_null);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..50 {
            assert_eq!(
                corrupt_value(&Value::str("determinism"), &mut a),
                corrupt_value(&Value::str("determinism"), &mut b)
            );
        }
    }
}
