//! The HOSP workload (Hospital Compare).
//!
//! The paper joins three Hospital Compare tables into one 19-attribute
//! relation used for both `R` and `Rm`, and designs 21 editing rules
//! over it. We reproduce that schema and rule structure with a seeded
//! synthetic generator whose entities are *key-consistent*: every
//! functional association a rule relies on (zip → state, phone →
//! hospital, (id, mCode) → score, (mCode, ST) → state average, ...)
//! holds in the generated master relation, mirroring the MDM assumption
//! that master data is clean.
//!
//! Each master row joins one hospital with one measure, exactly like
//! the paper's natural join.

use std::sync::Arc;

use certainfix_relation::{MasterIndex, Relation, Schema, Tuple, Value};
use certainfix_rules::{parse_rules, RuleSet};
use rand::rngs::SmallRng;
use rand::RngExt;

use crate::dirty::Workload;

/// The 19 attributes of the joined HOSP table (paper Sect. 6).
pub const HOSP_ATTRS: [&str; 19] = [
    "zip",
    "ST",
    "phn",
    "mCode",
    "mName",
    "sAvg",
    "hName",
    "hType",
    "hOwner",
    "provider",
    "city",
    "emergency",
    "condition",
    "score",
    "sample",
    "id",
    "addr1",
    "addr2",
    "addr3",
];

/// The 21 editing rules of the HOSP workload, in the rule DSL. The five
/// representative rules the paper prints (ϕ1: zip → ST, ϕ2: phn → zip,
/// ϕ3: (mCode, ST) → sAvg, ϕ4: (id, mCode) → score, ϕ5: id → hName)
/// appear as h5/h11/h8/h9/h2 below; the remainder completes the
/// hospital- and measure-block associations to 21 rules total.
pub const HOSP_RULES: &str = r#"
    # hospital name determines the descriptive block
    h1: match hName ~ hName set addr1 := addr1, addr2 := addr2, addr3 := addr3, hType := hType, hOwner := hOwner, emergency := emergency
    # provider id determines name, provider number and phone
    h2: match id ~ id set hName := hName, provider := provider, phn := phn
    # provider number determines the zip
    h3: match provider ~ provider set zip := zip
    # phone determines the hospital and its city
    h4: match phn ~ phn set id := id, city := city
    # zip determines state and city
    h5: match zip ~ zip set ST := ST, city := city
    # measure code determines the measure name
    h6: match mCode ~ mCode set mName := mName
    # measure name determines the condition
    h7: match mName ~ mName set condition := condition
    # (measure, state) determines the state average
    h8: match mCode ~ mCode, ST ~ ST set sAvg := sAvg
    # (hospital, measure) determines score and sample
    h9: match id ~ id, mCode ~ mCode set score := score, sample := sample
    # zip determines the provider number
    h10: match zip ~ zip set provider := provider
    # phone determines the zip
    h11: match phn ~ phn set zip := zip
"#;

const CITIES: [(&str, &str); 20] = [
    ("Birmingham", "AL"),
    ("Phoenix", "AZ"),
    ("Los Angeles", "CA"),
    ("Denver", "CO"),
    ("Hartford", "CT"),
    ("Miami", "FL"),
    ("Atlanta", "GA"),
    ("Chicago", "IL"),
    ("Indianapolis", "IN"),
    ("Boston", "MA"),
    ("Baltimore", "MD"),
    ("Detroit", "MI"),
    ("Minneapolis", "MN"),
    ("St. Louis", "MO"),
    ("Charlotte", "NC"),
    ("Newark", "NJ"),
    ("New York", "NY"),
    ("Columbus", "OH"),
    ("Houston", "TX"),
    ("Seattle", "WA"),
];

const HOSPITAL_TYPES: [&str; 3] = [
    "Acute Care Hospitals",
    "Critical Access Hospitals",
    "Childrens Hospitals",
];

const OWNERS: [&str; 5] = [
    "Government - Federal",
    "Government - State",
    "Proprietary",
    "Voluntary non-profit - Church",
    "Voluntary non-profit - Private",
];

const CONDITIONS: [&str; 6] = [
    "Heart Attack",
    "Heart Failure",
    "Pneumonia",
    "Surgical Infection Prevention",
    "Childrens Asthma Care",
    "Emergency Department",
];

const STREETS: [&str; 8] = [
    "Main",
    "Oak",
    "Maple",
    "Washington",
    "Church",
    "Park",
    "Elm",
    "High",
];

/// Number of distinct measures in the generated catalog.
const MEASURE_COUNT: u64 = 40;

/// Entity indices at or above this are "fresh" (never in the master).
const FRESH_BASE: u64 = 10_000_000;

/// Entity generator + master relation for the HOSP workload.
pub struct Hosp {
    schema: Arc<Schema>,
    rules: RuleSet,
    master: Arc<Relation>,
    index: MasterIndex,
    master_size: u64,
}

/// A cheap deterministic mix for derived numeric facts (state averages,
/// scores) so they are functions of their keys.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 31;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 29;
    x
}

impl Hosp {
    /// Generate a HOSP workload with `master_size` master rows.
    pub fn generate(master_size: usize) -> Hosp {
        let schema = Schema::new("HOSP", HOSP_ATTRS).expect("static schema is valid");
        let rules = parse_rules(HOSP_RULES, &schema, &schema).expect("static rules are valid");
        debug_assert_eq!(rules.len(), 21);
        let mut rel = Relation::empty(schema.clone());
        for h in 0..master_size as u64 {
            rel.push(Self::entity(&schema, h)).expect("arity ok");
        }
        let master = Arc::new(rel);
        Hosp {
            schema,
            rules,
            index: MasterIndex::new(master.clone()),
            master,
            master_size: master_size as u64,
        }
    }

    /// The joined row for hospital index `h` (measure `h % MEASURE_COUNT`).
    ///
    /// Entities with `h ≥ FRESH_BASE` (the "fresh" entities standing for
    /// input tuples that do NOT duplicate a master entity) draw from a
    /// disjoint measure catalog as well: per the paper's duplicate-rate
    /// semantics, a non-duplicate matches *no* master tuple on any key.
    fn entity(schema: &Schema, h: u64) -> Tuple {
        let m = if h >= FRESH_BASE {
            MEASURE_COUNT + h % MEASURE_COUNT
        } else {
            h % MEASURE_COUNT
        };
        let (city, st) = CITIES[(mix(h, 1) % CITIES.len() as u64) as usize];
        let zip = format!("{:05}", 10000 + h % 90000 + (h / 90000) * 100000);
        let phn = format!("{:010}", 2_000_000_000u64 + h);
        let id = format!("H{h:07}");
        let provider = format!("{:06}", 100_000 + h);
        let h_name = format!(
            "{} {} Medical Center {}",
            CITIES[(h % CITIES.len() as u64) as usize].0,
            STREETS[(h % STREETS.len() as u64) as usize],
            h
        );
        let m_code = format!("MC-{m:03}");
        let m_name = format!("{} measure {m}", CONDITIONS[(m % 6) as usize]);
        let condition = CONDITIONS[(m % 6) as usize];
        let s_avg =
            (mix(m, CITIES.iter().position(|&(_, s)| s == st).unwrap() as u64) % 1000) as i64;
        let score = (mix(h, m.wrapping_add(77)) % 1000) as i64;
        let sample = format!("{} patients", 30 + mix(h, 3) % 470);
        let mut t = Tuple::nulls(schema.len());
        let mut set = |name: &str, v: Value| {
            t.set(schema.attr(name).unwrap(), v);
        };
        set("zip", Value::str(&zip));
        set("ST", Value::str(st));
        set("phn", Value::str(&phn));
        set("mCode", Value::str(&m_code));
        set("mName", Value::str(&m_name));
        set("sAvg", Value::int(s_avg));
        set("hName", Value::str(&h_name));
        set(
            "hType",
            Value::str(HOSPITAL_TYPES[(mix(h, 5) % 3) as usize]),
        );
        set("hOwner", Value::str(OWNERS[(mix(h, 7) % 5) as usize]));
        set("provider", Value::str(&provider));
        set("city", Value::str(city));
        set(
            "emergency",
            Value::str(if mix(h, 9) % 2 == 0 { "Yes" } else { "No" }),
        );
        set("condition", Value::str(condition));
        set("score", Value::int(score));
        set("sample", Value::str(&sample));
        set("id", Value::str(&id));
        set(
            "addr1",
            Value::str(format!(
                "{} {} St",
                100 + mix(h, 11) % 9900,
                STREETS[(mix(h, 13) % 8) as usize]
            )),
        );
        set("addr2", Value::str(format!("Bldg {}", 1 + mix(h, 15) % 9)));
        set(
            "addr3",
            Value::str(format!("Suite {}", 1 + mix(h, 17) % 50)),
        );
        t
    }
}

impl Workload for Hosp {
    fn name(&self) -> &'static str {
        "hosp"
    }

    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn rules(&self) -> &RuleSet {
        &self.rules
    }

    fn master(&self) -> &Arc<Relation> {
        &self.master
    }

    fn master_index(&self) -> &MasterIndex {
        &self.index
    }

    fn fresh_clean(&self, rng: &mut SmallRng) -> Tuple {
        // Entity indices far past the master range share no key values
        // with Dm, so no rule can fire on them.
        let h = FRESH_BASE + self.master_size + rng.random_range(0..1_000_000u64);
        Hosp::entity(&self.schema, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::AttrSet;
    use rand::SeedableRng;

    #[test]
    fn schema_and_rules_match_the_paper() {
        let hosp = Hosp::generate(50);
        assert_eq!(hosp.schema().len(), 19);
        assert_eq!(hosp.rules().len(), 21);
        assert_eq!(hosp.master().len(), 50);
    }

    /// Every rule's key must be functional in the master data — the MDM
    /// assumption every certain fix rests on.
    #[test]
    fn master_is_key_consistent() {
        let hosp = Hosp::generate(500);
        for (_, rule) in hosp.rules().iter() {
            let idx = hosp.master_index().index_for(rule.lhs_m());
            for tm in hosp.master().iter() {
                let probe = tm.project(rule.lhs_m());
                let rows = idx.lookup(&probe);
                let mut vals: Vec<&Value> = rows
                    .iter()
                    .map(|&i| hosp.master().tuple(i as usize).get(rule.rhs_m()))
                    .collect();
                vals.dedup();
                assert_eq!(
                    vals.len(),
                    1,
                    "rule {} key {:?} must prescribe one value",
                    rule.name(),
                    probe
                );
            }
        }
    }

    #[test]
    fn master_rows_are_complete() {
        let hosp = Hosp::generate(100);
        for t in hosp.master().iter() {
            assert!(t.is_complete());
        }
    }

    #[test]
    fn fresh_entities_share_no_keys_with_master() {
        let hosp = Hosp::generate(200);
        let mut rng = SmallRng::seed_from_u64(5);
        let schema = hosp.schema().clone();
        for _ in 0..20 {
            let fresh = hosp.fresh_clean(&mut rng);
            assert!(fresh.is_complete());
            for key in ["id", "phn", "zip", "provider", "hName"] {
                let a = schema.attr(key).unwrap();
                assert!(
                    hosp.master().iter().all(|tm| tm.get(a) != fresh.get(a)),
                    "fresh {key} must not collide"
                );
            }
        }
    }

    #[test]
    fn closure_structure_supports_a_two_attribute_region() {
        // {phn, mCode} reaches all 19 attributes — the seed of the
        // paper's Exp-1(1) row (CompCRegion |Z| = 2).
        let hosp = Hosp::generate(10);
        let z: AttrSet = ["phn", "mCode"]
            .iter()
            .map(|n| hosp.schema().attr(n).unwrap())
            .collect();
        let covered = certainfix_reasoning::closure(hosp.rules(), z).covered;
        assert_eq!(covered, AttrSet::full(19));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Hosp::generate(30);
        let b = Hosp::generate(30);
        for i in 0..30 {
            assert_eq!(a.master().tuple(i), b.master().tuple(i));
        }
    }
}
