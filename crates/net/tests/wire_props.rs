//! Property tests for the wire codec: `decode(encode(frame)) ==
//! frame` over arbitrary frames of every kind, and the decoder
//! rejects truncated / oversized / bad-magic / bad-version inputs
//! with a typed error — never a panic.
//!
//! The vendored proptest has no alternation combinator, so each frame
//! family gets its own property instead of one `prop_oneof` tree.

use std::time::Duration;

use certainfix_core::{FixOutcome, MonitorStats, NetLaneStats, RoundReport};
use certainfix_net::wire::{Frame, WireError, MAX_FRAME, VERSION};
use certainfix_relation::{AttrId, AttrSet, MasterDelta, Tuple, Value};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

/// Character table for generated strings — ASCII plus multibyte, so
/// the u32-length-prefixed UTF-8 path sees 1–4 byte encodings.
const CHARS: &[char] = &[
    'a', 'Z', '0', '_', '-', ' ', '"', '\\', 'é', 'ß', '日', '本', '語', '🦀', '\u{0}',
];

fn arb_string() -> impl Strategy<Value = String> {
    vec(0usize..CHARS.len(), 0..12).prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i]).collect())
}

fn arb_value() -> impl Strategy<Value = Value> {
    (0u8..3, any::<i64>(), arb_string()).prop_map(|(tag, i, s)| match tag {
        0 => Value::Null,
        1 => Value::int(i),
        _ => Value::str(&s),
    })
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    vec(arb_value(), 0..5).prop_map(Tuple::new)
}

fn arb_attrset() -> impl Strategy<Value = AttrSet> {
    any::<u64>().prop_map(AttrSet::from_bits)
}

fn arb_duration() -> impl Strategy<Value = Duration> {
    any::<u64>().prop_map(Duration::from_nanos)
}

fn arb_net() -> impl Strategy<Value = NetLaneStats> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(frames_in, frames_out, bytes_in, bytes_out, decode_errors, sessions_torn)| {
                NetLaneStats {
                    frames_in,
                    frames_out,
                    bytes_in,
                    bytes_out,
                    decode_errors,
                    sessions_torn,
                }
            },
        )
}

fn arb_stats() -> impl Strategy<Value = MonitorStats> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_duration(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_net(),
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (tuples, certain, rounds, elapsed, interner_syms, shared_hits),
                (shared_misses, plan_probes, probe_allocs, plan_fallbacks, plan_rebuilds, net),
                (shared_evicted_delta, shared_evicted_lru, shared_revalidated, shared_saturated),
            )| MonitorStats {
                tuples,
                certain,
                rounds,
                elapsed,
                interner_syms,
                shared_hits,
                shared_misses,
                shared_evicted_delta,
                shared_evicted_lru,
                shared_revalidated,
                shared_saturated,
                plan_probes,
                probe_allocs,
                plan_fallbacks,
                plan_rebuilds,
                net,
            },
        )
}

fn arb_round() -> impl Strategy<Value = RoundReport> {
    (
        vec(any::<u16>().prop_map(AttrId), 0..4),
        vec(any::<u16>().prop_map(AttrId), 0..4),
        arb_attrset(),
        arb_attrset(),
        any::<bool>(),
    )
        .prop_map(
            |(suggested, asserted, user_changed, rule_fixed, validated_ok)| RoundReport {
                suggested,
                asserted,
                user_changed,
                rule_fixed,
                validated_ok,
            },
        )
}

fn arb_outcome() -> impl Strategy<Value = FixOutcome> {
    (
        (arb_tuple(), arb_attrset(), arb_attrset(), arb_attrset()),
        (
            any::<bool>(),
            option::of(any::<usize>()),
            any::<bool>(),
            any::<bool>(),
        ),
        vec(arb_round(), 0..3),
    )
        .prop_map(
            |(
                (tuple, validated, rule_fixed, user_changed),
                (certain, certain_at_round, rule_backed, gave_up),
                rounds,
            )| FixOutcome {
                tuple,
                validated,
                rule_fixed,
                user_changed,
                certain,
                certain_at_round,
                rule_backed,
                gave_up,
                rounds,
            },
        )
}

fn arb_delta() -> impl Strategy<Value = MasterDelta> {
    vec((0u8..3, any::<u32>(), arb_tuple()), 0..6).prop_map(|ops| {
        ops.into_iter()
            .fold(MasterDelta::default(), |d, (op, row, t)| match op {
                0 => d.insert(t),
                1 => d.update(row, t),
                _ => d.delete(row),
            })
    })
}

/// Encode, decode, check equality, and check the byte accounting: the
/// reported size is the whole buffer, one frame consumes everything,
/// and a second decode on the empty remainder is a clean EOF.
fn assert_roundtrip(frame: Frame) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut buf = Vec::new();
    let n = match frame.encode(&mut buf) {
        Ok(n) => n,
        Err(e) => {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "encode failed: {e}"
            )))
        }
    };
    prop_assert_eq!(n, buf.len()); // encode reports the bytes written
    let mut r = &buf[..];
    let decoded = match Frame::decode(&mut r) {
        Ok(Some(f)) => f,
        other => {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "decode of a valid frame returned {other:?}"
            )))
        }
    };
    prop_assert_eq!(&decoded, &frame);
    prop_assert!(r.is_empty(), "one frame consumes its whole encoding");
    match Frame::decode(&mut r) {
        Ok(None) => Ok(()),
        other => Err(proptest::test_runner::TestCaseError::fail(format!(
            "empty remainder should be clean EOF, got {other:?}"
        ))),
    }
}

proptest! {
    #[test]
    fn hello_roundtrips(session in arb_string(), token in option::of(arb_string())) {
        assert_roundtrip(Frame::Hello { session, token })?;
    }

    #[test]
    fn batch_roundtrips(seq in any::<u64>(), pairs in vec((arb_tuple(), arb_tuple()), 0..6)) {
        assert_roundtrip(Frame::Batch { seq, pairs })?;
    }

    #[test]
    fn delta_roundtrips(delta in arb_delta()) {
        assert_roundtrip(Frame::Delta(delta))?;
    }

    #[test]
    fn fieldless_and_ack_frames_roundtrip(g in any::<u64>(), b in any::<u64>()) {
        assert_roundtrip(Frame::Flush)?;
        assert_roundtrip(Frame::Shutdown)?;
        assert_roundtrip(Frame::HelloAck { generation: g })?;
        assert_roundtrip(Frame::DeltaAck { generation: g })?;
        assert_roundtrip(Frame::FlushAck { batches: b })?;
    }

    #[test]
    fn report_roundtrips(
        seq in any::<u64>(),
        generation in any::<u64>(),
        wall in arb_duration(),
        stats in arb_stats(),
        outcomes in vec(arb_outcome(), 0..3),
    ) {
        assert_roundtrip(Frame::Report { seq, generation, wall, stats, outcomes })?;
    }

    #[test]
    fn session_end_and_error_roundtrip(
        tuples in any::<u64>(),
        batches in any::<u64>(),
        wall in arb_duration(),
        stats in arb_stats(),
        code in any::<u16>(),
        message in arb_string(),
    ) {
        assert_roundtrip(Frame::SessionEnd { tuples, batches, wall, stats })?;
        assert_roundtrip(Frame::Error { code, message })?;
    }

    /// Arbitrary bytes never panic the decoder: every outcome is a
    /// typed `WireError`, a decoded frame, or a clean EOF.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in vec(any::<u8>(), 0..96)) {
        let mut r = &bytes[..];
        let _ = Frame::decode(&mut r);
    }

    /// Every strict prefix of a valid encoding is `Truncated` (or, for
    /// the empty prefix, a clean EOF) — never a mis-decoded frame.
    #[test]
    fn truncated_prefixes_are_rejected(
        pairs in vec((arb_tuple(), arb_tuple()), 0..4),
        pick in any::<u64>(),
    ) {
        let mut buf = Vec::new();
        Frame::Batch { seq: 7, pairs }.encode(&mut buf).unwrap();
        let cut = (pick % buf.len() as u64) as usize; // 0..len strict prefixes
        let mut r = &buf[..cut];
        match Frame::decode(&mut r) {
            Ok(None) => prop_assert_eq!(cut, 0), // only the empty prefix is clean EOF
            Err(WireError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "prefix of {} bytes decoded as {:?}", cut, other),
        }
    }

    /// A corrupted magic byte is `BadMagic`, checked before anything
    /// else is read.
    #[test]
    fn corrupt_magic_is_rejected(which in 0usize..4) {
        let mut buf = Vec::new();
        Frame::Flush.encode(&mut buf).unwrap();
        buf[which] ^= 0xFF;
        match Frame::decode(&mut &buf[..]) {
            Err(WireError::BadMagic(_)) => {}
            other => prop_assert!(false, "corrupt magic decoded as {:?}", other),
        }
    }

    /// Any version other than ours is `BadVersion`.
    #[test]
    fn wrong_version_is_rejected(v in any::<u16>()) {
        let v = if v == VERSION { v ^ 1 } else { v };
        let mut buf = Vec::new();
        Frame::Flush.encode(&mut buf).unwrap();
        buf[4..6].copy_from_slice(&v.to_le_bytes());
        match Frame::decode(&mut &buf[..]) {
            Err(WireError::BadVersion(got)) => prop_assert_eq!(got, v),
            other => prop_assert!(false, "version {} decoded as {:?}", v, other),
        }
    }

    /// A header whose declared length exceeds `MAX_FRAME` is rejected
    /// as `Oversized` before any payload allocation.
    #[test]
    fn oversized_headers_are_rejected(extra in any::<u32>()) {
        let len = (MAX_FRAME as u32).saturating_add(extra.max(1));
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CFXW");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0x04u16.to_le_bytes()); // Flush
        buf.extend_from_slice(&len.to_le_bytes());
        match Frame::decode(&mut &buf[..]) {
            Err(WireError::Oversized(got)) => prop_assert_eq!(got, len as usize),
            other => prop_assert!(false, "oversized header decoded as {:?}", other),
        }
    }

    /// An unknown frame kind is rejected as such, not misparsed.
    #[test]
    fn unknown_kinds_are_rejected(kind in any::<u16>()) {
        const KNOWN: &[u16] = &[0x01, 0x02, 0x03, 0x04, 0x05, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86];
        let kind = if KNOWN.contains(&kind) { 0x7777 } else { kind };
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CFXW");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&kind.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        match Frame::decode(&mut &buf[..]) {
            Err(WireError::UnknownKind(got)) => prop_assert_eq!(got, kind),
            other => prop_assert!(false, "kind {:#06x} decoded as {:?}", kind, other),
        }
    }
}
