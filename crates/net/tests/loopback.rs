//! Loopback integration tests for the network ingest lane.
//!
//! The headline invariant is **D11**: a stream ingested over a
//! loopback socket is bit-identical to the same tuples drained
//! through an in-process `SliceSource` — at any worker count, any
//! client-side chunking, and any number of co-resident connections.
//! Both reconstructions are held to it: the server's own
//! `NamedSessionReport` and the client's reassembly from `Report`
//! frames.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;

use certainfix_core::{
    MonitorStats, RepairServiceBuilder, RepairSessionBuilder, SessionReport, SimulatedUser,
    SliceSource,
};
use certainfix_datagen::{Dataset, DirtyConfig, Hosp, Workload};
use certainfix_net::wire::Frame;
use certainfix_net::{RepairClient, RepairServer};
use certainfix_relation::{MasterDelta, Tuple};

fn hosp_sessions(dm: usize, sizes: &[usize]) -> (Hosp, Vec<Dataset>) {
    let hosp = Hosp::generate(dm);
    let datasets = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            Dataset::generate(
                &hosp,
                &DirtyConfig {
                    duplicate_rate: 0.3,
                    noise_rate: 0.2,
                    input_size: n,
                    seed: 0x0D11_0D11 ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9),
                    skew: if i == 0 { 1.0 } else { 0.0 },
                    ..DirtyConfig::default()
                },
            )
        })
        .collect();
    (hosp, datasets)
}

fn dirty_of(ds: &Dataset) -> Vec<Tuple> {
    ds.inputs.iter().map(|dt| dt.dirty.clone()).collect()
}

fn clean_of(ds: &Dataset) -> Vec<Tuple> {
    ds.inputs.iter().map(|dt| dt.clean.clone()).collect()
}

/// Solo baseline: the dataset drained alone, in process, through a
/// `SliceSource` with the given batch size.
fn solo_run(hosp: &Hosp, ds: &Dataset, dirty: &[Tuple], batch: usize) -> SessionReport {
    let mut session = RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
        .threads(1)
        .shared_cache(false)
        .build();
    session.drain(SliceSource::with_batch(dirty, batch), |i| {
        SimulatedUser::new(ds.inputs[i].clean.clone())
    });
    session.finish()
}

fn service_builder(hosp: &Hosp, workers: usize) -> RepairServiceBuilder {
    RepairServiceBuilder::new(hosp.rules().clone(), hosp.master().clone())
        .threads(workers)
        .shared_cache(false)
}

/// Assert the deterministic observables of `got` are bit-identical to
/// the solo baseline: every `FixOutcome` (full structural equality —
/// repaired tuple, attr sets, round trace) and the deterministic
/// `MonitorStats` counters. Wall-clock observables stay exempt, and so
/// do the net-lane transport counters.
fn assert_bit_identical(got: &SessionReport, want: &SessionReport, ctx: &str) {
    assert_eq!(got.tuples, want.tuples, "{ctx}: tuple count");
    let (got_out, want_out): (Vec<_>, Vec<_>) =
        (got.outcomes().collect(), want.outcomes().collect());
    assert_eq!(got_out.len(), want_out.len(), "{ctx}: outcome count");
    for (i, (a, b)) in got_out.iter().zip(&want_out).enumerate() {
        assert_eq!(a, b, "{ctx}: outcome {i}");
    }
    for (field, a, b) in [
        ("tuples", got.stats.tuples, want.stats.tuples),
        ("certain", got.stats.certain, want.stats.certain),
        ("rounds", got.stats.rounds, want.stats.rounds),
        ("plan_probes", got.stats.plan_probes, want.stats.plan_probes),
        (
            "plan_fallbacks",
            got.stats.plan_fallbacks,
            want.stats.plan_fallbacks,
        ),
    ] {
        assert_eq!(a, b, "{ctx}: stats.{field}");
    }
}

/// D11: 1/2/4 workers × 1/2/4 co-resident connections, with a
/// different client-side chunk size per connection. Server-side and
/// client-side session reports both match the solo in-process drains.
#[test]
fn loopback_sessions_match_in_process_runs_d11() {
    let (hosp, datasets) = hosp_sessions(150, &[240, 100, 60, 150]);
    let dirty: Vec<Vec<Tuple>> = datasets.iter().map(dirty_of).collect();
    let clean: Vec<Vec<Tuple>> = datasets.iter().map(clean_of).collect();
    let chunks = [64usize, 17, 30, 128];
    let solo: Vec<SessionReport> = datasets
        .iter()
        .zip(&dirty)
        .zip(chunks)
        .map(|((ds, tuples), chunk)| solo_run(&hosp, ds, tuples, chunk))
        .collect();

    for workers in [1usize, 2, 4] {
        for conns in [1usize, 2, 4] {
            let service = service_builder(&hosp, workers).build();
            let server = RepairServer::serve_tcp(service, "127.0.0.1:0", None).unwrap();
            let addr = server.local_addr().unwrap();

            let client_reports: Vec<(usize, SessionReport)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..conns)
                    .map(|s| {
                        let (dirty, clean) = (&dirty[s], &clean[s]);
                        scope.spawn(move || {
                            let mut client =
                                RepairClient::connect_tcp(addr, &format!("s{s}"), None).unwrap();
                            for (d, c) in dirty.chunks(chunks[s]).zip(clean.chunks(chunks[s])) {
                                client.send_batch(d, c).unwrap();
                            }
                            (s, client.finish().unwrap())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        let (s, cr) = h.join().unwrap();
                        // server's closing numbers agree with the
                        // client-side reassembly
                        assert_eq!(cr.server_tuples as usize, cr.report.tuples);
                        assert_eq!(cr.server_batches as usize, cr.report.batches.len());
                        assert_eq!(cr.server_stats.tuples, cr.report.stats.tuples);
                        assert_eq!(cr.server_stats.certain, cr.report.stats.certain);
                        (s, cr.report)
                    })
                    .collect()
            });
            let report = server.shutdown();

            let ctx = |side: &str, s: usize| format!("{side} s{s}, {workers}w × {conns}c");
            // client-side reconstruction vs solo
            for (s, client_report) in &client_reports {
                assert_bit_identical(client_report, &solo[*s], &ctx("client", *s));
            }
            // server-side session reports vs solo
            assert_eq!(report.sessions.len(), conns);
            let by_name: HashMap<&str, &SessionReport> = report
                .sessions
                .iter()
                .map(|n| (n.name.as_str(), &n.report))
                .collect();
            for s in 0..conns {
                let got = by_name[format!("s{s}").as_str()];
                assert_bit_identical(got, &solo[s], &ctx("server", s));
            }
            // transport counters are plumbed: every session moved
            // frames both ways, cleanly
            assert!(report.stats.net.frames_in as usize >= conns * 2);
            assert!(report.stats.net.frames_out as usize >= conns * 2);
            assert!(report.stats.net.bytes_in > 0 && report.stats.net.bytes_out > 0);
            assert_eq!(report.stats.net.decode_errors, 0);
            assert_eq!(report.stats.net.sessions_torn, 0);
            for named in &report.sessions {
                assert!(
                    named.report.stats.net.frames_in >= 2,
                    "per-session lane counters"
                );
            }
        }
    }
}

/// Fault injection: four co-resident connections — two healthy, one
/// that sends garbage after a valid batch, one that disconnects in
/// the middle of a frame. Only the offending sessions are torn down;
/// the survivors stay bit-identical to their solo runs, and the
/// buffered batches of the torn sessions still repair (disconnect
/// drain).
#[test]
fn garbage_and_midbatch_disconnect_tear_down_only_their_session() {
    let (hosp, datasets) = hosp_sessions(120, &[160, 90, 48, 48]);
    let dirty: Vec<Vec<Tuple>> = datasets.iter().map(dirty_of).collect();
    let clean: Vec<Vec<Tuple>> = datasets.iter().map(clean_of).collect();
    let solo0 = solo_run(&hosp, &datasets[0], &dirty[0], 32);
    let solo1 = solo_run(&hosp, &datasets[1], &dirty[1], 20);
    // the torn sessions' one delivered batch, repaired solo
    let solo2 = solo_run(&hosp, &datasets[2], &dirty[2][..16], 16);
    let solo3 = solo_run(&hosp, &datasets[3], &dirty[3][..16], 16);

    let service = service_builder(&hosp, 2).build();
    let server = RepairServer::serve_tcp(service, "127.0.0.1:0", None).unwrap();
    let addr = server.local_addr().unwrap();

    let (healthy0, healthy1) = std::thread::scope(|scope| {
        let h0 = scope.spawn(|| {
            let mut client = RepairClient::connect_tcp(addr, "good0", None).unwrap();
            for (d, c) in dirty[0].chunks(32).zip(clean[0].chunks(32)) {
                client.send_batch(d, c).unwrap();
            }
            client.finish().unwrap().report
        });
        let h1 = scope.spawn(|| {
            let mut client = RepairClient::connect_tcp(addr, "good1", None).unwrap();
            for (d, c) in dirty[1].chunks(20).zip(clean[1].chunks(20)) {
                client.send_batch(d, c).unwrap();
            }
            client.finish().unwrap().report
        });
        // garbage: proper handshake, one valid batch, then bytes that
        // are not a frame
        scope.spawn(|| {
            let mut stream = TcpStream::connect(addr).unwrap();
            Frame::Hello {
                session: "garbage".into(),
                token: None,
            }
            .encode(&mut stream)
            .unwrap();
            match Frame::decode(&mut stream).unwrap().unwrap() {
                Frame::HelloAck { .. } => {}
                other => panic!("expected HelloAck, got {other:?}"),
            }
            let pairs = dirty[2][..16]
                .iter()
                .cloned()
                .zip(clean[2][..16].iter().cloned())
                .collect();
            Frame::Batch { seq: 0, pairs }.encode(&mut stream).unwrap();
            stream.write_all(b"!!!! this is not a frame !!!!").unwrap();
            let _ = stream.flush();
            // leave the socket open until the server answers (Error
            // frame) so the teardown is observed, not racing the drop
            let _ = Frame::decode(&mut stream);
        });
        // mid-batch disconnect: valid batch, then a header promising
        // 4096 payload bytes that never arrive
        scope.spawn(|| {
            let mut stream = TcpStream::connect(addr).unwrap();
            Frame::Hello {
                session: "cut".into(),
                token: None,
            }
            .encode(&mut stream)
            .unwrap();
            match Frame::decode(&mut stream).unwrap().unwrap() {
                Frame::HelloAck { .. } => {}
                other => panic!("expected HelloAck, got {other:?}"),
            }
            let pairs = dirty[3][..16]
                .iter()
                .cloned()
                .zip(clean[3][..16].iter().cloned())
                .collect();
            Frame::Batch { seq: 0, pairs }.encode(&mut stream).unwrap();
            let mut partial = Vec::new();
            partial.extend_from_slice(b"CFXW");
            partial.extend_from_slice(&1u16.to_le_bytes()); // version
            partial.extend_from_slice(&0x02u16.to_le_bytes()); // Batch
            partial.extend_from_slice(&4096u32.to_le_bytes()); // never sent
            partial.extend_from_slice(&[0u8; 7]); // mid-payload cut
            stream.write_all(&partial).unwrap();
            let _ = stream.flush();
            drop(stream); // vanish
        });
        (h0.join().unwrap(), h1.join().unwrap())
    });
    let report = server.shutdown();

    // survivors: bit-identical to solo, client- and server-side
    assert_bit_identical(&healthy0, &solo0, "client good0");
    assert_bit_identical(&healthy1, &solo1, "client good1");
    let by_name: HashMap<&str, &SessionReport> = report
        .sessions
        .iter()
        .map(|n| (n.name.as_str(), &n.report))
        .collect();
    assert_eq!(report.sessions.len(), 4, "all four sessions attached");
    assert_bit_identical(by_name["good0"], &solo0, "server good0");
    assert_bit_identical(by_name["good1"], &solo1, "server good1");
    // the torn sessions' delivered batch still repaired (drain on
    // teardown), and matches its solo run
    assert_bit_identical(by_name["garbage"], &solo2, "server garbage");
    assert_bit_identical(by_name["cut"], &solo3, "server cut");
    // the faults were charged to the lane counters
    assert!(report.stats.net.decode_errors >= 2, "garbage + truncation");
    assert!(report.stats.net.sessions_torn >= 2, "two sessions torn");
    assert!(by_name["garbage"].stats.net.decode_errors >= 1);
    assert!(by_name["cut"].stats.net.decode_errors >= 1);
    assert_eq!(by_name["good0"].stats.net.decode_errors, 0);
    assert_eq!(by_name["good0"].stats.net.sessions_torn, 0);
}

/// Flush semantics and live master data over the wire: a `Flush`
/// acks only after every prior batch reported, a `Delta` bumps the
/// generation, and reports record which generation repaired them.
#[test]
fn flush_blocks_until_reported_and_delta_bumps_generation() {
    let (hosp, datasets) = hosp_sessions(100, &[96]);
    let dirty = dirty_of(&datasets[0]);
    let clean = clean_of(&datasets[0]);

    let service = service_builder(&hosp, 2).build();
    let server = RepairServer::serve_tcp(service, "127.0.0.1:0", None).unwrap();
    let addr = server.local_addr().unwrap();

    let mut client = RepairClient::connect_tcp(addr, "live", None).unwrap();
    let g0 = client.generation();
    for (d, c) in dirty[..48].chunks(24).zip(clean[..48].chunks(24)) {
        client.send_batch(d, c).unwrap();
    }
    assert_eq!(client.flush().unwrap(), 2, "both batches reported");
    assert_eq!(client.batches().len(), 2, "reports drained by the ack");

    // duplicate an existing master row: semantically inert, but a new
    // generation
    let delta = MasterDelta::default().insert(hosp.master().tuples()[0].clone());
    let g1 = client.apply_delta(&delta).unwrap();
    assert!(g1 > g0, "delta bumped the generation");

    for (d, c) in dirty[48..].chunks(24).zip(clean[48..].chunks(24)) {
        client.send_batch(d, c).unwrap();
    }
    let cr = client.finish().unwrap();
    assert_eq!(cr.report.tuples, 96);
    assert_eq!(cr.report.batches.len(), 4);
    // pre-flush batches repaired on the old generation, post-delta
    // ones on the new
    assert!(cr.report.batches[..2].iter().all(|b| b.generation == g0));
    assert!(cr.report.batches[2..].iter().all(|b| b.generation == g1));

    let report = server.shutdown();
    assert_eq!(report.sessions.len(), 1);
    assert_eq!(report.sessions[0].report.tuples, 96);
}

/// Authentication: a server with a token refuses a mismatched or
/// missing one, and the refusal doesn't disturb an authenticated
/// session on the same server.
#[test]
fn token_mismatch_is_refused_without_disturbing_others() {
    let (hosp, datasets) = hosp_sessions(80, &[60]);
    let dirty = dirty_of(&datasets[0]);
    let clean = clean_of(&datasets[0]);
    let solo = solo_run(&hosp, &datasets[0], &dirty, 30);

    let service = service_builder(&hosp, 2).build();
    let server = RepairServer::serve_tcp(service, "127.0.0.1:0", Some("sesame".into())).unwrap();
    let addr = server.local_addr().unwrap();

    let wrong = RepairClient::connect_tcp(addr, "intruder", Some("guess"));
    assert!(wrong.is_err(), "wrong token must be refused");
    let missing = RepairClient::connect_tcp(addr, "anon", None);
    assert!(missing.is_err(), "missing token must be refused");

    let mut client = RepairClient::connect_tcp(addr, "opener", Some("sesame")).unwrap();
    for (d, c) in dirty.chunks(30).zip(clean.chunks(30)) {
        client.send_batch(d, c).unwrap();
    }
    let cr = client.finish().unwrap();
    assert_bit_identical(&cr.report, &solo, "authenticated client");

    let report = server.shutdown();
    assert_eq!(report.sessions.len(), 1, "refused Hellos never attach");
    assert!(report.stats.net.sessions_torn >= 2, "refusals are charged");
}

/// Unix-domain smoke test: same protocol, same bit-identity, local
/// socket file cleaned up on shutdown.
#[cfg(unix)]
#[test]
fn unix_socket_session_matches_in_process_run() {
    let (hosp, datasets) = hosp_sessions(80, &[72]);
    let dirty = dirty_of(&datasets[0]);
    let clean = clean_of(&datasets[0]);
    let solo = solo_run(&hosp, &datasets[0], &dirty, 24);

    let path = std::env::temp_dir().join(format!("certainfix-net-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let service = service_builder(&hosp, 2).build();
    let server = RepairServer::serve_unix(service, &path, None).unwrap();

    let mut client = RepairClient::connect_unix(&path, "ux", None).unwrap();
    for (d, c) in dirty.chunks(24).zip(clean.chunks(24)) {
        client.send_batch(d, c).unwrap();
    }
    let cr = client.finish().unwrap();
    assert_bit_identical(&cr.report, &solo, "unix client");

    let report = server.shutdown();
    assert_eq!(report.sessions.len(), 1);
    assert_bit_identical(&report.sessions[0].report, &solo, "unix server");
    assert!(!path.exists(), "socket file removed on shutdown");
}

/// MonitorStats sanity for the merge path: aggregate net counters are
/// at least the sum of the per-session ones (pre-session refusals can
/// add more), and `MonitorStats::default()` has empty net counters so
/// in-process runs are unaffected.
#[test]
fn net_counters_merge_is_conservative() {
    assert_eq!(
        MonitorStats::default().net,
        certainfix_core::NetLaneStats::default()
    );
    let (hosp, datasets) = hosp_sessions(80, &[40, 40]);
    let dirty: Vec<Vec<Tuple>> = datasets.iter().map(dirty_of).collect();
    let clean: Vec<Vec<Tuple>> = datasets.iter().map(clean_of).collect();

    let service = service_builder(&hosp, 2).build();
    let server = RepairServer::serve_tcp(service, "127.0.0.1:0", None).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::scope(|scope| {
        for s in 0..2 {
            let (dirty, clean) = (&dirty[s], &clean[s]);
            scope.spawn(move || {
                let mut client = RepairClient::connect_tcp(addr, &format!("n{s}"), None).unwrap();
                for (d, c) in dirty.chunks(16).zip(clean.chunks(16)) {
                    client.send_batch(d, c).unwrap();
                }
                client.finish().unwrap()
            });
        }
    });
    let report = server.shutdown();
    let mut summed = certainfix_core::NetLaneStats::default();
    for named in &report.sessions {
        summed.merge(&named.report.stats.net);
    }
    for (agg, sum) in [
        (report.stats.net.frames_in, summed.frames_in),
        (report.stats.net.frames_out, summed.frames_out),
        (report.stats.net.bytes_in, summed.bytes_in),
        (report.stats.net.bytes_out, summed.bytes_out),
    ] {
        assert!(agg >= sum, "aggregate covers the per-session lanes");
        assert!(sum > 0, "per-session lanes saw traffic");
    }
}
