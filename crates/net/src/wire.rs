//! The length-prefixed, versioned binary frame codec of the network
//! ingest lane.
//!
//! Every frame is `[MAGIC "CFXW"][VERSION u16][KIND u16][LEN u32]`
//! (12-byte little-endian header) followed by exactly `LEN` payload
//! bytes. Encode and decode are symmetric over
//! [`std::io::Write`] / [`std::io::Read`]: for every [`Frame`] `f`,
//! `decode(encode(f)) == f` — the property `tests/wire_props.rs`
//! pins over arbitrary frames.
//!
//! The decoder is strict. It never trusts a length it has not checked
//! against bytes actually present: the header's `LEN` is bounded by
//! [`MAX_FRAME`] *before* any payload allocation, every element count
//! inside a payload is bounded by the bytes remaining in that payload
//! before its vector is reserved, a payload that ends early is
//! [`WireError::Truncated`], and one with bytes left over after its
//! frame parsed is [`WireError::TrailingBytes`]. Unknown kinds, tags,
//! or flag bits are errors, never skipped — a malformed frame must
//! tear its session down, not desynchronise the stream.
//!
//! String values cross the wire as UTF-8 text and are re-interned on
//! decode ([`Value::str`]), so symbol identity is process-local and
//! the codec's equality is textual — exactly the equality the engine's
//! interner guarantees process-wide.

use std::io::{Read, Write};
use std::time::Duration;

use certainfix_core::{FixOutcome, MonitorStats, NetLaneStats, RoundReport};
use certainfix_relation::{AttrId, AttrSet, MasterDelta, Tuple, Value};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"CFXW";
/// Protocol version this build speaks (rejects everything else).
/// Version 2 added the shared-cache lifecycle counters to the stats
/// payload.
pub const VERSION: u16 = 2;
/// Fixed header size in bytes: magic + version + kind + payload length.
pub const HEADER_LEN: usize = 12;
/// Hard cap on a frame's payload length. A header declaring more is
/// rejected before any payload byte is read or allocated.
pub const MAX_FRAME: usize = 64 << 20;

const K_HELLO: u16 = 0x01;
const K_BATCH: u16 = 0x02;
const K_DELTA: u16 = 0x03;
const K_FLUSH: u16 = 0x04;
const K_SHUTDOWN: u16 = 0x05;
const K_HELLO_ACK: u16 = 0x81;
const K_REPORT: u16 = 0x82;
const K_DELTA_ACK: u16 = 0x83;
const K_FLUSH_ACK: u16 = 0x84;
const K_SESSION_END: u16 = 0x85;
const K_ERROR: u16 = 0x86;

/// Typed decode/transport failures. Everything except [`Io`]
/// (mid-frame I/O) means the *peer* sent something this codec refuses;
/// the server answers with one [`Frame::Error`] and tears down only
/// that session.
///
/// [`Io`]: WireError::Io
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (including EOF mid-frame).
    Io(std::io::Error),
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version this build does not.
    BadVersion(u16),
    /// A kind code neither side of this version defines.
    UnknownKind(u16),
    /// The header declared a payload larger than [`MAX_FRAME`].
    Oversized(usize),
    /// The payload ended before its frame finished parsing (also: an
    /// element count larger than the bytes that could back it).
    Truncated,
    /// The payload had bytes left over after the frame parsed.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// An enum/flag byte outside the defined range.
    BadTag(u8),
    /// A semantically unexpected frame (protocol-state violation) —
    /// raised by the client/server state machines, not the codec.
    Protocol(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#06x}"),
            WireError::Oversized(n) => write!(f, "declared payload of {n} bytes exceeds cap"),
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing payload bytes"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadTag(t) => write!(f, "bad tag byte {t:#04x}"),
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One protocol frame. Request frames (client → server) come first,
/// response frames (server → client) second; the codec itself is
/// direction-agnostic.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Open a session: its report name plus an optional shared-secret
    /// token (must match the server's, when the server has one).
    Hello {
        /// Session name, as it will appear in the server's reports.
        session: String,
        /// Authentication token, if the deployment uses one.
        token: Option<String>,
    },
    /// One batch of the session's stream: `(dirty, clean)` pairs —
    /// the dirty tuple to repair and the simulated user's ground
    /// truth backing its oracle. `seq` is echoed on the matching
    /// [`Report`](Frame::Report).
    Batch {
        /// Client-chosen batch sequence number (monotone per session).
        seq: u64,
        /// The batch's `(dirty, clean)` tuple pairs, in stream order.
        pairs: Vec<(Tuple, Tuple)>,
    },
    /// Apply a [`MasterDelta`] to the shared engine (answered by
    /// [`DeltaAck`](Frame::DeltaAck) with the new generation).
    Delta(MasterDelta),
    /// Ask for a [`FlushAck`](Frame::FlushAck) once every batch sent
    /// before this frame has been repaired and reported.
    Flush,
    /// Clean end-of-stream: drain everything sent, answer the final
    /// [`SessionEnd`](Frame::SessionEnd), close.
    Shutdown,
    /// Session accepted; `generation` is the engine's current master
    /// generation.
    HelloAck {
        /// Master generation at accept time.
        generation: u64,
    },
    /// One repaired batch, echoing its `seq`: per-tuple outcomes in
    /// batch order plus the batch's merged statistics — the wire shape
    /// of a [`BatchReport`](certainfix_core::BatchReport).
    Report {
        /// The [`Batch`](Frame::Batch) sequence number this answers.
        seq: u64,
        /// Master generation the batch was repaired against.
        generation: u64,
        /// Wall clock of the repair epoch the batch rode.
        wall: Duration,
        /// The batch's merged [`MonitorStats`].
        stats: MonitorStats,
        /// Per-tuple outcomes, in the batch's input order.
        outcomes: Vec<FixOutcome>,
    },
    /// Delta applied; the generation every later batch repairs against
    /// (at the latest — earlier ones may already pick it up).
    DeltaAck {
        /// The new master generation.
        generation: u64,
    },
    /// Every batch sent before the [`Flush`](Frame::Flush) has been
    /// reported.
    FlushAck {
        /// Batches reported so far on this session.
        batches: u64,
    },
    /// The session's final fold — same numbers the server's
    /// [`ServiceReport`](certainfix_core::ServiceReport) will carry
    /// for this session (transport-side net counters excepted: those
    /// are only complete once the socket closes).
    SessionEnd {
        /// Total tuples repaired on this session.
        tuples: u64,
        /// Batches (= epochs participated in) on this session.
        batches: u64,
        /// Summed repair wall clock of those epochs.
        wall: Duration,
        /// The session's merged [`MonitorStats`].
        stats: MonitorStats,
    },
    /// The server refuses a frame or the session; after an `Error`
    /// the session is torn down and the connection closed.
    Error {
        /// Machine-readable code (`1` auth, `2` protocol, `3` engine).
        code: u16,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------- encode

struct Payload {
    b: Vec<u8>,
}

impl Payload {
    fn new() -> Payload {
        Payload { b: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.b.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.b.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.b.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.b.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.b.extend_from_slice(&v.to_le_bytes());
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.b.extend_from_slice(s.as_bytes());
    }
    fn opt_str(&mut self, s: &Option<String>) {
        match s {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
    fn duration(&mut self, d: Duration) {
        self.u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }
    fn value(&mut self, v: &Value) {
        match v {
            Value::Null => self.u8(0),
            Value::Int(i) => {
                self.u8(1);
                self.i64(*i);
            }
            Value::Str(_) => {
                self.u8(2);
                self.str(v.as_str().expect("Str value renders as str"));
            }
        }
    }
    fn tuple(&mut self, t: &Tuple) {
        self.u16(t.arity() as u16);
        for v in t.values() {
            self.value(v);
        }
    }
    fn attrs(&mut self, attrs: &[AttrId]) {
        self.u32(attrs.len() as u32);
        for a in attrs {
            self.u16(a.0);
        }
    }
    fn stats(&mut self, s: &MonitorStats) {
        self.u64(s.tuples);
        self.u64(s.certain);
        self.u64(s.rounds);
        self.duration(s.elapsed);
        self.u64(s.interner_syms);
        self.u64(s.shared_hits);
        self.u64(s.shared_misses);
        self.u64(s.shared_evicted_delta);
        self.u64(s.shared_evicted_lru);
        self.u64(s.shared_revalidated);
        self.u64(s.shared_saturated);
        self.u64(s.plan_probes);
        self.u64(s.probe_allocs);
        self.u64(s.plan_fallbacks);
        self.u64(s.plan_rebuilds);
        self.u64(s.net.frames_in);
        self.u64(s.net.frames_out);
        self.u64(s.net.bytes_in);
        self.u64(s.net.bytes_out);
        self.u64(s.net.decode_errors);
        self.u64(s.net.sessions_torn);
    }
    fn outcome(&mut self, o: &FixOutcome) {
        self.tuple(&o.tuple);
        self.u64(o.validated.bits());
        self.u64(o.rule_fixed.bits());
        self.u64(o.user_changed.bits());
        let flags = (o.certain as u8) | ((o.rule_backed as u8) << 1) | ((o.gave_up as u8) << 2);
        self.u8(flags);
        match o.certain_at_round {
            None => self.u8(0),
            Some(r) => {
                self.u8(1);
                self.u64(r as u64);
            }
        }
        self.u32(o.rounds.len() as u32);
        for r in &o.rounds {
            self.attrs(&r.suggested);
            self.attrs(&r.asserted);
            self.u64(r.user_changed.bits());
            self.u64(r.rule_fixed.bits());
            self.bool(r.validated_ok);
        }
    }
}

impl Frame {
    /// Encode the frame (header + payload) into `w`. Returns the total
    /// bytes written. The writer is *not* flushed.
    pub fn encode<W: Write>(&self, w: &mut W) -> Result<usize, WireError> {
        let mut p = Payload::new();
        let kind = match self {
            Frame::Hello { session, token } => {
                p.str(session);
                p.opt_str(token);
                K_HELLO
            }
            Frame::Batch { seq, pairs } => {
                p.u64(*seq);
                p.u32(pairs.len() as u32);
                for (dirty, clean) in pairs {
                    p.tuple(dirty);
                    p.tuple(clean);
                }
                K_BATCH
            }
            Frame::Delta(delta) => {
                p.u32(delta.inserts().len() as u32);
                for t in delta.inserts() {
                    p.tuple(t);
                }
                p.u32(delta.updates().len() as u32);
                for (row, t) in delta.updates() {
                    p.u32(*row);
                    p.tuple(t);
                }
                p.u32(delta.deletes().len() as u32);
                for row in delta.deletes() {
                    p.u32(*row);
                }
                K_DELTA
            }
            Frame::Flush => K_FLUSH,
            Frame::Shutdown => K_SHUTDOWN,
            Frame::HelloAck { generation } => {
                p.u64(*generation);
                K_HELLO_ACK
            }
            Frame::Report {
                seq,
                generation,
                wall,
                stats,
                outcomes,
            } => {
                p.u64(*seq);
                p.u64(*generation);
                p.duration(*wall);
                p.stats(stats);
                p.u32(outcomes.len() as u32);
                for o in outcomes {
                    p.outcome(o);
                }
                K_REPORT
            }
            Frame::DeltaAck { generation } => {
                p.u64(*generation);
                K_DELTA_ACK
            }
            Frame::FlushAck { batches } => {
                p.u64(*batches);
                K_FLUSH_ACK
            }
            Frame::SessionEnd {
                tuples,
                batches,
                wall,
                stats,
            } => {
                p.u64(*tuples);
                p.u64(*batches);
                p.duration(*wall);
                p.stats(stats);
                K_SESSION_END
            }
            Frame::Error { code, message } => {
                p.u16(*code);
                p.str(message);
                K_ERROR
            }
        };
        if p.b.len() > MAX_FRAME {
            return Err(WireError::Oversized(p.b.len()));
        }
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(&MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_le_bytes());
        header[6..8].copy_from_slice(&kind.to_le_bytes());
        header[8..12].copy_from_slice(&(p.b.len() as u32).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(&p.b)?;
        Ok(HEADER_LEN + p.b.len())
    }

    /// Decode one frame from `r`. `Ok(None)` is a clean end-of-stream
    /// (EOF exactly at a frame boundary); EOF anywhere inside a frame
    /// is an error like any other malformed input.
    pub fn decode<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
        let mut header = [0u8; HEADER_LEN];
        // distinguish "no next frame" from "frame cut short": only a
        // zero-byte read before the first header byte is a clean end
        let mut got = 0usize;
        while got < HEADER_LEN {
            match r.read(&mut header[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => return Err(WireError::Truncated),
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        let magic: [u8; 4] = header[..4].try_into().expect("4-byte slice");
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().expect("2-byte slice"));
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = u16::from_le_bytes(header[6..8].try_into().expect("2-byte slice"));
        let len = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice")) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Oversized(len));
        }
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?;
        let mut b = Buf {
            b: &payload,
            pos: 0,
        };
        let frame = match kind {
            K_HELLO => Frame::Hello {
                session: b.string()?,
                token: b.opt_string()?,
            },
            K_BATCH => {
                let seq = b.u64()?;
                let n = b.count(4)?; // a pair is two tuples, ≥ 2 bytes each
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    let dirty = b.tuple()?;
                    let clean = b.tuple()?;
                    pairs.push((dirty, clean));
                }
                Frame::Batch { seq, pairs }
            }
            K_DELTA => {
                let mut delta = MasterDelta::new();
                let n = b.count(2)?;
                for _ in 0..n {
                    delta = delta.insert(b.tuple()?);
                }
                let n = b.count(6)?; // row id + tuple
                for _ in 0..n {
                    let row = b.u32()?;
                    delta = delta.update(row, b.tuple()?);
                }
                let n = b.count(4)?;
                for _ in 0..n {
                    delta = delta.delete(b.u32()?);
                }
                Frame::Delta(delta)
            }
            K_FLUSH => Frame::Flush,
            K_SHUTDOWN => Frame::Shutdown,
            K_HELLO_ACK => Frame::HelloAck {
                generation: b.u64()?,
            },
            K_REPORT => {
                let seq = b.u64()?;
                let generation = b.u64()?;
                let wall = b.duration()?;
                let stats = b.stats()?;
                let n = b.count(2)?;
                let mut outcomes = Vec::with_capacity(n);
                for _ in 0..n {
                    outcomes.push(b.outcome()?);
                }
                Frame::Report {
                    seq,
                    generation,
                    wall,
                    stats,
                    outcomes,
                }
            }
            K_DELTA_ACK => Frame::DeltaAck {
                generation: b.u64()?,
            },
            K_FLUSH_ACK => Frame::FlushAck { batches: b.u64()? },
            K_SESSION_END => Frame::SessionEnd {
                tuples: b.u64()?,
                batches: b.u64()?,
                wall: b.duration()?,
                stats: b.stats()?,
            },
            K_ERROR => Frame::Error {
                code: b.u16()?,
                message: b.string()?,
            },
            k => return Err(WireError::UnknownKind(k)),
        };
        if b.pos != payload.len() {
            return Err(WireError::TrailingBytes(payload.len() - b.pos));
        }
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------- decode

struct Buf<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Buf<'a> {
    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2-byte slice"),
        ))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4-byte slice"),
        ))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }
    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8-byte slice"),
        ))
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn duration(&mut self) -> Result<Duration, WireError> {
        Ok(Duration::from_nanos(self.u64()?))
    }
    /// An element count, validated against the bytes that could back
    /// it: each element occupies at least `min_elem` payload bytes, so
    /// any count exceeding `remaining / min_elem` is truncation (or an
    /// attack) — reject it *before* reserving the vector.
    fn count(&mut self, min_elem: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        match n.checked_mul(min_elem) {
            Some(bytes) if bytes <= self.remaining() => Ok(n),
            _ => Err(WireError::Truncated),
        }
    }
    fn str(&mut self) -> Result<&'a str, WireError> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|_| WireError::BadUtf8)
    }
    fn string(&mut self) -> Result<String, WireError> {
        Ok(self.str()?.to_owned())
    }
    fn opt_string(&mut self) -> Result<Option<String>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.string()?)),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn value(&mut self) -> Result<Value, WireError> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::str(self.str()?)),
            t => Err(WireError::BadTag(t)),
        }
    }
    fn tuple(&mut self) -> Result<Tuple, WireError> {
        let arity = self.u16()? as usize;
        if arity > self.remaining() {
            return Err(WireError::Truncated); // each value is ≥ 1 byte
        }
        let mut values = Vec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.value()?);
        }
        Ok(Tuple::new(values))
    }
    fn attrs(&mut self) -> Result<Vec<AttrId>, WireError> {
        let n = self.count(2)?;
        let mut attrs = Vec::with_capacity(n);
        for _ in 0..n {
            attrs.push(AttrId(self.u16()?));
        }
        Ok(attrs)
    }
    fn stats(&mut self) -> Result<MonitorStats, WireError> {
        Ok(MonitorStats {
            tuples: self.u64()?,
            certain: self.u64()?,
            rounds: self.u64()?,
            elapsed: self.duration()?,
            interner_syms: self.u64()?,
            shared_hits: self.u64()?,
            shared_misses: self.u64()?,
            shared_evicted_delta: self.u64()?,
            shared_evicted_lru: self.u64()?,
            shared_revalidated: self.u64()?,
            shared_saturated: self.u64()?,
            plan_probes: self.u64()?,
            probe_allocs: self.u64()?,
            plan_fallbacks: self.u64()?,
            plan_rebuilds: self.u64()?,
            net: NetLaneStats {
                frames_in: self.u64()?,
                frames_out: self.u64()?,
                bytes_in: self.u64()?,
                bytes_out: self.u64()?,
                decode_errors: self.u64()?,
                sessions_torn: self.u64()?,
            },
        })
    }
    fn outcome(&mut self) -> Result<FixOutcome, WireError> {
        let tuple = self.tuple()?;
        let validated = AttrSet::from_bits(self.u64()?);
        let rule_fixed = AttrSet::from_bits(self.u64()?);
        let user_changed = AttrSet::from_bits(self.u64()?);
        let flags = self.u8()?;
        if flags & !0b111 != 0 {
            return Err(WireError::BadTag(flags));
        }
        let certain_at_round = match self.u8()? {
            0 => None,
            1 => Some(self.u64()? as usize),
            t => return Err(WireError::BadTag(t)),
        };
        let n = self.count(25)?; // 2×attr counts + 2×u64 + bool, minimum
        let mut rounds = Vec::with_capacity(n);
        for _ in 0..n {
            rounds.push(RoundReport {
                suggested: self.attrs()?,
                asserted: self.attrs()?,
                user_changed: AttrSet::from_bits(self.u64()?),
                rule_fixed: AttrSet::from_bits(self.u64()?),
                validated_ok: self.bool()?,
            });
        }
        Ok(FixOutcome {
            tuple,
            validated,
            rule_fixed,
            user_changed,
            certain: flags & 1 != 0,
            certain_at_round,
            rule_backed: flags & 2 != 0,
            gave_up: flags & 4 != 0,
            rounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: &Frame) -> Frame {
        let mut buf = Vec::new();
        f.encode(&mut buf).expect("encode");
        let mut r = buf.as_slice();
        let back = Frame::decode(&mut r).expect("decode").expect("one frame");
        assert!(r.is_empty(), "decode consumed the whole encoding");
        back
    }

    #[test]
    fn fieldless_and_simple_frames_roundtrip() {
        for f in [
            Frame::Flush,
            Frame::Shutdown,
            Frame::HelloAck { generation: 7 },
            Frame::DeltaAck {
                generation: u64::MAX,
            },
            Frame::FlushAck { batches: 0 },
            Frame::Hello {
                session: "tenant-α".into(),
                token: Some(String::new()),
            },
            Frame::Error {
                code: 2,
                message: "unexpected Batch before Hello".into(),
            },
        ] {
            assert_eq!(roundtrip(&f), f);
        }
    }

    #[test]
    fn batch_and_delta_frames_roundtrip() {
        let t = |vs: Vec<Value>| Tuple::new(vs);
        let batch = Frame::Batch {
            seq: 3,
            pairs: vec![
                (
                    t(vec![Value::Null, Value::int(-5), Value::str("x")]),
                    t(vec![Value::str(""), Value::int(i64::MIN), Value::Null]),
                ),
                (t(vec![]), t(vec![Value::str("日本語")])),
            ],
        };
        assert_eq!(roundtrip(&batch), batch);
        let delta = Frame::Delta(
            MasterDelta::new()
                .insert(t(vec![Value::int(1)]))
                .update(9, t(vec![Value::str("v")]))
                .delete(0)
                .delete(u32::MAX),
        );
        assert_eq!(roundtrip(&delta), delta);
        assert_eq!(
            roundtrip(&Frame::Delta(MasterDelta::new())),
            Frame::Delta(MasterDelta::new())
        );
    }

    #[test]
    fn clean_eof_is_none_and_midframe_eof_is_truncated() {
        let mut empty: &[u8] = &[];
        assert!(matches!(Frame::decode(&mut empty), Ok(None)));
        let mut buf = Vec::new();
        Frame::Flush.encode(&mut buf).unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(
                matches!(Frame::decode(&mut r), Err(WireError::Truncated)),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn header_validation_rejects_before_reading_payloads() {
        let mut buf = Vec::new();
        Frame::HelloAck { generation: 1 }.encode(&mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            Frame::decode(&mut bad.as_slice()),
            Err(WireError::BadMagic(_))
        ));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            Frame::decode(&mut bad.as_slice()),
            Err(WireError::BadVersion(99))
        ));
        let mut bad = buf.clone();
        bad[6] = 0x77;
        assert!(matches!(
            Frame::decode(&mut bad.as_slice()),
            Err(WireError::UnknownKind(0x77))
        ));
        // an oversized declared length is rejected without allocating
        // or waiting for 4 GiB of payload
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&mut bad.as_slice()),
            Err(WireError::Oversized(_))
        ));
        // trailing payload bytes are an error, not silently skipped
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&9u32.to_le_bytes());
        bad.push(0);
        assert!(matches!(
            Frame::decode(&mut bad.as_slice()),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn element_counts_are_checked_against_remaining_bytes() {
        // a Batch frame claiming 2^31 pairs in a 12-byte payload must
        // be rejected before any allocation happens
        let mut buf = Vec::new();
        Frame::Batch {
            seq: 0,
            pairs: vec![],
        }
        .encode(&mut buf)
        .unwrap();
        let off = HEADER_LEN + 8; // past seq, at the pair count
        buf[off..off + 4].copy_from_slice(&0x8000_0000u32.to_le_bytes());
        assert!(matches!(
            Frame::decode(&mut buf.as_slice()),
            Err(WireError::Truncated)
        ));
    }
}
