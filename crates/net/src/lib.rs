//! Network ingest lane for the certain-fix repair service.
//!
//! Three pieces, stacked:
//!
//! * [`wire`] — a length-prefixed, versioned binary frame codec
//!   ([`Frame`], [`WireError`]): `Hello`/`Batch`/`Delta`/`Flush`/
//!   `Shutdown` requests, `HelloAck`/`Report`/`DeltaAck`/`FlushAck`/
//!   `SessionEnd`/`Error` responses, symmetric `encode`/`decode` over
//!   any `Read`/`Write` with strict bounds checks.
//! * [`RepairServer`] — listens on TCP or a unix socket and maps each
//!   authenticated connection onto one bounded `ServiceStream` lane
//!   of a shared [`RepairService`], so per-session backpressure
//!   reaches all the way to the client's socket writes. A malformed
//!   frame or disconnect tears down only that session;
//!   [`RepairServer::shutdown`] drains and returns the final
//!   [`ServiceReport`].
//! * [`RepairClient`] — drives a session over the same wire and
//!   reassembles the reports into a `SessionReport` bit-identical to
//!   an in-process drain of the same tuples (invariant **D11**).
//!
//! [`RepairService`]: certainfix_core::RepairService
//! [`ServiceReport`]: certainfix_core::ServiceReport

pub mod client;
pub mod server;
pub mod wire;

pub use client::{ClientReport, RepairClient};
pub use server::RepairServer;
pub use wire::{Frame, WireError, MAX_FRAME, VERSION};
