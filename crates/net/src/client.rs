//! [`RepairClient`]: the other end of the wire — connects, streams
//! dirty/clean batches, and reassembles the server's per-batch
//! [`Frame::Report`]s into a [`SessionReport`] that is bit-identical
//! to what an in-process [`RepairSession`] drain of the same tuples
//! would have produced (invariant D11).
//!
//! The reassembly leans on D2 (partition-independence): the client
//! does not know how the server's epoch scheduler split a batch
//! across workers, so each decoded report becomes a [`BatchReport`]
//! with a single synthetic worker covering the whole outcome range.
//! Every downstream consumer (`fold_session`, the bench metric rows)
//! only ever walks `workers × ranges`, and D2 guarantees the walk is
//! partition-invariant — so the synthetic single-worker shape folds
//! to the same numbers as the server's real worker layout.
//!
//! [`RepairSession`]: certainfix_core::RepairSession

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

use certainfix_core::{BatchReport, MonitorStats, SessionReport, WorkerReport};
use certainfix_relation::{MasterDelta, Tuple};

use crate::server::Conn;
use crate::wire::{Frame, WireError};

/// What [`RepairClient::finish`] hands back: the client-side
/// reconstruction of the session plus the server's own closing
/// numbers (which the D11 tests cross-check against each other).
#[derive(Clone, Debug)]
pub struct ClientReport {
    /// Session report reassembled from the per-batch `Report` frames;
    /// bit-identical to an in-process drain of the same tuples.
    pub report: SessionReport,
    /// Tuple count the server announced in `SessionEnd`.
    pub server_tuples: u64,
    /// Batch count the server announced in `SessionEnd`.
    pub server_batches: u64,
    /// The server's folded session stats from `SessionEnd`.
    pub server_stats: MonitorStats,
}

/// A connected protocol session. Dropping the client without
/// [`finish`](Self::finish) is an abrupt disconnect: the server
/// drains what it already buffered and finalizes the session without
/// anyone reading the reports.
pub struct RepairClient {
    r: BufReader<Conn>,
    w: BufWriter<Conn>,
    seq: u64,
    generation: u64,
    batches: Vec<BatchReport>,
    tuples: usize,
}

impl RepairClient {
    /// Connect over TCP and perform the `Hello`/`HelloAck` handshake.
    pub fn connect_tcp<A: ToSocketAddrs>(
        addr: A,
        session: &str,
        token: Option<&str>,
    ) -> Result<RepairClient, WireError> {
        let stream = TcpStream::connect(addr)?;
        Self::handshake(Conn::Tcp(stream), session, token)
    }

    /// Connect over a unix-domain socket and handshake.
    #[cfg(unix)]
    pub fn connect_unix<P: AsRef<Path>>(
        path: P,
        session: &str,
        token: Option<&str>,
    ) -> Result<RepairClient, WireError> {
        let stream = UnixStream::connect(path.as_ref())?;
        Self::handshake(Conn::Unix(stream), session, token)
    }

    fn handshake(
        conn: Conn,
        session: &str,
        token: Option<&str>,
    ) -> Result<RepairClient, WireError> {
        let write_half = conn.try_clone()?;
        let mut client = RepairClient {
            r: BufReader::new(conn),
            w: BufWriter::new(write_half),
            seq: 0,
            generation: 0,
            batches: Vec::new(),
            tuples: 0,
        };
        client.send(&Frame::Hello {
            session: session.to_string(),
            token: token.map(str::to_string),
        })?;
        match client.recv()? {
            Frame::HelloAck { generation } => {
                client.generation = generation;
                Ok(client)
            }
            Frame::Error { code, message } => Err(WireError::Protocol(format!(
                "server refused session (code {code}): {message}"
            ))),
            other => Err(WireError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// Master-relation generation last acknowledged by the server
    /// (from `HelloAck`, bumped by [`apply_delta`](Self::apply_delta)).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Batch reports received so far (grows as acknowledged calls
    /// drain the read side).
    pub fn batches(&self) -> &[BatchReport] {
        &self.batches
    }

    /// Stream one batch of dirty tuples with their clean ground truth
    /// (the server's simulated oracle answers from `clean`). Write
    /// side only — reports are drained by the next acknowledged call.
    /// Returns the batch's sequence number.
    pub fn send_batch(&mut self, dirty: &[Tuple], clean: &[Tuple]) -> Result<u64, WireError> {
        if dirty.len() != clean.len() {
            return Err(WireError::Protocol(format!(
                "dirty/clean length mismatch: {} vs {}",
                dirty.len(),
                clean.len()
            )));
        }
        let seq = self.seq;
        let pairs = dirty
            .iter()
            .cloned()
            .zip(clean.iter().cloned())
            .collect::<Vec<_>>();
        self.send(&Frame::Batch { seq, pairs })?;
        self.seq += 1;
        Ok(seq)
    }

    /// Apply a master-data delta through this session; returns the
    /// new generation once the server acknowledges it.
    pub fn apply_delta(&mut self, delta: &MasterDelta) -> Result<u64, WireError> {
        self.send(&Frame::Delta(delta.clone()))?;
        loop {
            match self.recv()? {
                Frame::DeltaAck { generation } => {
                    self.generation = generation;
                    return Ok(generation);
                }
                Frame::Error { code, message } => {
                    return Err(WireError::Protocol(format!(
                        "delta refused (code {code}): {message}"
                    )))
                }
                other => self.absorb(other)?,
            }
        }
    }

    /// Block until every batch sent so far has been repaired and
    /// reported. Returns the number of batches covered by the ack.
    pub fn flush(&mut self) -> Result<u64, WireError> {
        self.send(&Frame::Flush)?;
        loop {
            match self.recv()? {
                Frame::FlushAck { batches } => return Ok(batches),
                other => self.absorb(other)?,
            }
        }
    }

    /// End the stream: send `Shutdown`, drain every outstanding
    /// report through the final `SessionEnd`, and reassemble the
    /// session report.
    pub fn finish(mut self) -> Result<ClientReport, WireError> {
        self.send(&Frame::Shutdown)?;
        loop {
            match self.recv()? {
                Frame::SessionEnd {
                    tuples,
                    batches,
                    wall,
                    stats,
                } => {
                    let mut report = SessionReport::from_batches(&self.batches, wall, self.tuples);
                    report.batches = std::mem::take(&mut self.batches);
                    return Ok(ClientReport {
                        report,
                        server_tuples: tuples,
                        server_batches: batches,
                        server_stats: stats,
                    });
                }
                other => self.absorb(other)?,
            }
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), WireError> {
        frame.encode(&mut self.w)?;
        self.w.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, WireError> {
        match Frame::decode(&mut self.r)? {
            Some(frame) => Ok(frame),
            None => Err(WireError::Protocol(
                "server closed the connection mid-session".into(),
            )),
        }
    }

    /// Fold an out-of-band frame encountered while waiting for a
    /// specific ack. `Report` frames become client-side
    /// [`BatchReport`]s (synthetic single worker, see module docs);
    /// anything else mid-stream is a protocol violation.
    fn absorb(&mut self, frame: Frame) -> Result<(), WireError> {
        match frame {
            Frame::Report {
                seq: _,
                generation,
                wall,
                stats,
                outcomes,
            } => {
                // a Vec of one Range, not a range of indexes — the
                // whole batch is the synthetic worker's single span
                #[allow(clippy::single_range_in_vec_init)]
                let worker = WorkerReport {
                    worker: 0,
                    ranges: vec![0..outcomes.len()],
                    stats,
                    bdd: Default::default(),
                };
                self.tuples += outcomes.len();
                self.batches.push(BatchReport {
                    outcomes,
                    stats,
                    bdd: Default::default(),
                    shared: None,
                    wall,
                    generation,
                    workers: vec![worker],
                });
                Ok(())
            }
            Frame::Error { code, message } => Err(WireError::Protocol(format!(
                "server error (code {code}): {message}"
            ))),
            other => Err(WireError::Protocol(format!(
                "unexpected frame mid-session: {other:?}"
            ))),
        }
    }
}
