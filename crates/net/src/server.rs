//! [`RepairServer`]: the socket front of a
//! [`RepairService`] — TCP or unix-socket listener, one protocol
//! session per authenticated connection, each mapped to one
//! [`ServiceStream`] lane of the shared engine.
//!
//! # Backpressure, end to end
//!
//! A connection's batches travel socket → bounded
//! [`ChannelSource`] → bounded service ingest lane → repair pool.
//! Both channels are bounded by [`ServiceOptions::depth`]
//! (`ServiceOptions::depth` batches each), so when the engine falls
//! behind, the connection's reader thread blocks in `send`, stops
//! consuming the socket, the kernel's receive window fills, and the
//! *client's* writes stall — a slow engine costs the producer
//! latency, never the server memory. Response frames ride an
//! unbounded event channel per session: bounding it would let one
//! client that stops reading stall the shared scheduler for everyone
//! (the cost is instead bounded per misbehaving connection, by its
//! own unread reports).
//!
//! # Fault isolation
//!
//! A malformed frame, a protocol violation, or a transport error
//! tears down *only* its own session: the reader answers with one
//! [`Frame::Error`] (best effort), drops the lane, and the service
//! finalizes that session from whatever had arrived — batches already
//! buffered still repair (the [`ChannelSource`] disconnect-drain
//! contract), and every other connection proceeds untouched. Clean
//! [`Frame::Shutdown`] (or a bare EOF at a frame boundary) ends the
//! stream the same way minus the error accounting.
//!
//! [`ChannelSource`]: certainfix_core::ChannelSource
//! [`ServiceOptions::depth`]: certainfix_core::ServiceOptions

use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use certainfix_core::{
    attach_channel, ChannelSource, NetLaneStats, RepairService, ServiceAttach, ServiceReport,
    ServiceStream, SessionEvent, SimulatedUser,
};
use certainfix_relation::Tuple;

use crate::wire::{Frame, WireError};

/// One accepted transport, TCP or unix-domain.
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true),
        }
    }
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// Counts bytes actually consumed by the decoder (sits *outside* the
/// `BufReader`, so read-ahead the session never used is not charged).
pub(crate) struct CountingReader<R> {
    inner: R,
    pub(crate) bytes: u64,
}

impl<R> CountingReader<R> {
    pub(crate) fn new(inner: R) -> CountingReader<R> {
        CountingReader { inner, bytes: 0 }
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

/// Serialises response frames onto one socket (reader and writer
/// threads both answer) and tallies the outbound lane counters.
pub(crate) struct FrameWriter {
    w: BufWriter<Conn>,
    pub(crate) frames: u64,
    pub(crate) bytes: u64,
    dead: bool,
}

impl FrameWriter {
    pub(crate) fn new(conn: Conn) -> FrameWriter {
        FrameWriter {
            w: BufWriter::new(conn),
            frames: 0,
            bytes: 0,
            dead: false,
        }
    }
    /// Write + flush one frame. After the first transport error the
    /// writer goes dead and later sends are silently dropped — the
    /// session is ending anyway, and the event drain must not wedge
    /// on a closed socket.
    pub(crate) fn send(&mut self, frame: &Frame) {
        if self.dead {
            return;
        }
        let sent = frame
            .encode(&mut self.w)
            .and_then(|n| self.w.flush().map(|()| n).map_err(WireError::Io));
        match sent {
            Ok(n) => {
                self.frames += 1;
                self.bytes += n as u64;
            }
            Err(_) => self.dead = true,
        }
    }
}

/// Per-session bookkeeping shared between the connection's reader
/// (forwards batches, registers flush thresholds) and writer (emits
/// reports, discharges flushes) threads. One lock, so the
/// reported-vs-pending race has no window.
#[derive(Default)]
struct FlushState {
    /// Batches forwarded into the lane so far.
    forwarded: u64,
    /// Batches reported back so far.
    reported: u64,
    /// `seq`s of forwarded batches, FIFO — the scheduler repairs at
    /// most one batch per session per epoch, in lane order, so the
    /// n-th `Batch` event answers the n-th forwarded `seq`.
    seqs: VecDeque<u64>,
    /// Flush thresholds (`forwarded` at `Flush` time) not yet reached.
    pending: Vec<u64>,
}

/// A running repair server. Dropping the handle does *not* stop it;
/// call [`shutdown`](Self::shutdown) for the drain-then-shutdown path.
pub struct RepairServer {
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<Vec<(String, NetLaneStats)>>>,
    sched: Option<JoinHandle<ServiceReport>>,
    local_addr: Option<SocketAddr>,
    #[cfg(unix)]
    path: Option<PathBuf>,
}

impl RepairServer {
    /// Listen on a TCP address (`port 0` picks a free port — read it
    /// back with [`local_addr`](Self::local_addr)). `token`, when
    /// set, must be presented by every `Hello`.
    pub fn serve_tcp<A: ToSocketAddrs>(
        service: RepairService,
        addr: A,
        token: Option<String>,
    ) -> std::io::Result<RepairServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let mut server = Self::serve(service, Listener::Tcp(listener), token)?;
        server.local_addr = Some(local);
        Ok(server)
    }

    /// Listen on a unix-domain socket path (removed again at
    /// [`shutdown`](Self::shutdown)).
    #[cfg(unix)]
    pub fn serve_unix<P: AsRef<Path>>(
        service: RepairService,
        path: P,
        token: Option<String>,
    ) -> std::io::Result<RepairServer> {
        let listener = UnixListener::bind(path.as_ref())?;
        let mut server = Self::serve(service, Listener::Unix(listener), token)?;
        server.path = Some(path.as_ref().to_path_buf());
        Ok(server)
    }

    fn serve(
        service: RepairService,
        listener: Listener,
        token: Option<String>,
    ) -> std::io::Result<RepairServer> {
        listener.set_nonblocking()?;
        let service = Arc::new(service);
        let stop = Arc::new(AtomicBool::new(false));
        let (attach, queue) = attach_channel::<'static>();
        let sched = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || service.run_dynamic(queue))
        };
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, stop, attach, service, token))
        };
        Ok(RepairServer {
            stop,
            accept: Some(accept),
            sched: Some(sched),
            local_addr: None,
            #[cfg(unix)]
            path: None,
        })
    }

    /// The bound TCP address (for `port 0` binds).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Drain, then shut down: stop accepting, wait for every live
    /// connection to finish its session (a connected client that
    /// neither streams nor disconnects keeps the server up — draining
    /// means serving it out, not cutting it off), collect the
    /// service's final per-session reports, and fold each
    /// connection's transport counters into them — per session where
    /// the lane is attributable, and in aggregate
    /// ([`ServiceReport::stats`]`.net`) over every connection
    /// including ones that failed before a session existed.
    pub fn shutdown(mut self) -> ServiceReport {
        self.stop.store(true, Ordering::Relaxed);
        let conn_stats = self
            .accept
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("accept loop does not panic");
        let mut report = self
            .sched
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("scheduler does not panic");
        let mut lane_total = NetLaneStats::default();
        for (_, net) in &conn_stats {
            lane_total.merge(net);
        }
        // attribute lanes to sessions by name, first unconsumed match
        // (names repeat across reconnects; order is attach order on
        // one side, completion order on the other)
        let mut conn_stats = conn_stats;
        for named in &mut report.sessions {
            if let Some(pos) = conn_stats.iter().position(|(n, _)| *n == named.name) {
                let (_, net) = conn_stats.remove(pos);
                named.report.stats.net.merge(&net);
            }
        }
        report.stats.net.merge(&lane_total);
        #[cfg(unix)]
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
        report
    }
}

fn accept_loop(
    listener: Listener,
    stop: Arc<AtomicBool>,
    attach: ServiceAttach<'static>,
    service: Arc<RepairService>,
    token: Option<String>,
) -> Vec<(String, NetLaneStats)> {
    let token = Arc::new(token);
    let mut conns: Vec<JoinHandle<(String, NetLaneStats)>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok(conn) => {
                let attach = attach.clone();
                let service = Arc::clone(&service);
                let token = Arc::clone(&token);
                conns.push(std::thread::spawn(move || {
                    handle_conn(conn, attach, service, token)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    let mut stats = Vec::new();
    for h in conns {
        if let Ok(s) = h.join() {
            stats.push(s);
        }
    }
    // the accept loop held the last long-lived attach handle: dropping
    // it (with every connection done) is the scheduler's cue to return
    drop(attach);
    stats
}

/// Drive one connection: authenticate, attach a session lane, then
/// pump request frames until shutdown/disconnect/fault. Returns the
/// session name (empty if none was established) and the lane's
/// transport counters.
fn handle_conn(
    conn: Conn,
    attach: ServiceAttach<'static>,
    service: Arc<RepairService>,
    token: Arc<Option<String>>,
) -> (String, NetLaneStats) {
    let mut net = NetLaneStats::default();
    let writer = match conn.try_clone() {
        Ok(w) => Arc::new(Mutex::new(FrameWriter::new(w))),
        Err(_) => {
            net.sessions_torn += 1;
            return (String::new(), net);
        }
    };
    let mut reader = CountingReader::new(BufReader::new(conn));
    let mut frames_in = 0u64;

    // first frame must be an authenticated Hello
    let session = match Frame::decode(&mut reader) {
        Ok(Some(Frame::Hello { session, token: t })) => {
            frames_in += 1;
            if token
                .as_deref()
                .is_some_and(|want| t.as_deref() != Some(want))
            {
                writer.lock().unwrap().send(&Frame::Error {
                    code: 1,
                    message: "authentication failed".into(),
                });
                net.sessions_torn += 1;
                net.frames_in = frames_in;
                net.bytes_in = reader.bytes;
                return (String::new(), net);
            }
            session
        }
        Ok(Some(_)) => {
            writer.lock().unwrap().send(&Frame::Error {
                code: 2,
                message: "expected Hello".into(),
            });
            net.sessions_torn += 1;
            net.frames_in = frames_in + 1;
            net.bytes_in = reader.bytes;
            return (String::new(), net);
        }
        Ok(None) => {
            net.bytes_in = reader.bytes;
            return (String::new(), net); // connected and left; no session
        }
        Err(e) => {
            net.decode_errors += 1;
            net.sessions_torn += 1;
            writer.lock().unwrap().send(&Frame::Error {
                code: 2,
                message: e.to_string(),
            });
            net.bytes_in = reader.bytes;
            return (String::new(), net);
        }
    };

    // one ServiceStream lane per connection: the clean store backs the
    // oracle factory (appended before the lane send, so any index the
    // engine can ask for is already present), the bounded channel is
    // the backpressure hand-off
    let cleans: Arc<Mutex<Vec<Tuple>>> = Arc::new(Mutex::new(Vec::new()));
    let depth = service.options().depth;
    let (lane_tx, lane_src) = ChannelSource::bounded(depth);
    let (ev_tx, ev_rx) = channel::<SessionEvent>();
    let oracle_cleans = Arc::clone(&cleans);
    let stream = ServiceStream::new(session.clone(), lane_src, move |i: usize| {
        let clean = oracle_cleans.lock().unwrap()[i].clone();
        SimulatedUser::new(clean)
    });
    if attach.attach(stream, Some(ev_tx)).is_err() {
        writer.lock().unwrap().send(&Frame::Error {
            code: 3,
            message: "service is shut down".into(),
        });
        net.sessions_torn += 1;
        net.frames_in = frames_in;
        net.bytes_in = reader.bytes;
        return (session, net);
    }
    drop(attach); // this connection's interest in attaching is over
    writer.lock().unwrap().send(&Frame::HelloAck {
        generation: service.engine().context().generation(),
    });

    let fs = Arc::new(Mutex::new(FlushState::default()));
    let responder = {
        let writer = Arc::clone(&writer);
        let fs = Arc::clone(&fs);
        std::thread::spawn(move || {
            for ev in ev_rx {
                match ev {
                    SessionEvent::Batch(batch) => {
                        let (seq, acks) = {
                            let mut st = fs.lock().unwrap();
                            let seq = st.seqs.pop_front().unwrap_or(st.reported);
                            st.reported += 1;
                            let reported = st.reported;
                            let acks: Vec<u64> = {
                                let (due, keep) = st.pending.iter().partition(|&&p| p <= reported);
                                st.pending = keep;
                                due
                            };
                            (seq, acks)
                        };
                        let mut w = writer.lock().unwrap();
                        w.send(&Frame::Report {
                            seq,
                            generation: batch.generation,
                            wall: batch.wall,
                            stats: batch.stats,
                            outcomes: batch.outcomes,
                        });
                        for batches in acks {
                            w.send(&Frame::FlushAck { batches });
                        }
                    }
                    SessionEvent::Finished(report) => {
                        writer.lock().unwrap().send(&Frame::SessionEnd {
                            tuples: report.tuples as u64,
                            batches: report.batches.len() as u64,
                            wall: report.wall,
                            stats: report.stats,
                        });
                        break;
                    }
                }
            }
        })
    };

    loop {
        match Frame::decode(&mut reader) {
            Ok(Some(Frame::Batch { seq, pairs })) => {
                frames_in += 1;
                if pairs.is_empty() {
                    continue; // nothing to repair, nothing to report
                }
                let (dirty, clean): (Vec<Tuple>, Vec<Tuple>) = pairs.into_iter().unzip();
                cleans.lock().unwrap().extend(clean);
                {
                    let mut st = fs.lock().unwrap();
                    st.forwarded += 1;
                    st.seqs.push_back(seq);
                }
                // bounded: blocks when the engine is `depth` batches
                // behind, which stops the socket reads — backpressure
                // reaches the client as stalled writes
                if lane_tx.send(dirty).is_err() {
                    writer.lock().unwrap().send(&Frame::Error {
                        code: 3,
                        message: "service is shut down".into(),
                    });
                    net.sessions_torn += 1;
                    break;
                }
            }
            Ok(Some(Frame::Delta(delta))) => {
                frames_in += 1;
                match service.engine().apply_master_delta(&delta) {
                    Ok(generation) => {
                        writer.lock().unwrap().send(&Frame::DeltaAck { generation });
                    }
                    Err(e) => {
                        // the delta is refused, the session lives on
                        writer.lock().unwrap().send(&Frame::Error {
                            code: 3,
                            message: e.to_string(),
                        });
                    }
                }
            }
            Ok(Some(Frame::Flush)) => {
                frames_in += 1;
                let ack = {
                    let mut st = fs.lock().unwrap();
                    if st.reported >= st.forwarded {
                        Some(st.forwarded)
                    } else {
                        let threshold = st.forwarded;
                        st.pending.push(threshold);
                        None
                    }
                };
                if let Some(batches) = ack {
                    writer.lock().unwrap().send(&Frame::FlushAck { batches });
                }
            }
            Ok(Some(Frame::Shutdown)) => {
                frames_in += 1;
                break; // clean end-of-stream: drain, SessionEnd, close
            }
            Ok(Some(_)) => {
                frames_in += 1;
                writer.lock().unwrap().send(&Frame::Error {
                    code: 2,
                    message: "response frame on the request lane".into(),
                });
                net.sessions_torn += 1;
                break;
            }
            Ok(None) => {
                // abrupt-but-frame-aligned disconnect: same drain as
                // Shutdown, the client just won't read the answers
                break;
            }
            Err(e) => {
                net.decode_errors += 1;
                net.sessions_torn += 1;
                writer.lock().unwrap().send(&Frame::Error {
                    code: 2,
                    message: e.to_string(),
                });
                break;
            }
        }
    }

    // end the stream: the service drains whatever the lane still
    // buffers, finalizes the session, and the responder forwards the
    // final SessionEnd before exiting
    drop(lane_tx);
    let _ = responder.join();

    let w = writer.lock().unwrap();
    net.frames_in = frames_in;
    net.bytes_in = reader.bytes;
    net.frames_out = w.frames;
    net.bytes_out = w.bytes;
    drop(w);
    (session, net)
}
