//! Deriving a CFD set from editing rules.
//!
//! The paper's comparison runs `IncRep` "given a dirty database D and a
//! set of constraints". To give the baseline constraints with the same
//! information content as `Σ`, each editing rule
//! `((X, Xm) → (B, Bm), tp)` whose attribute lists align by *name*
//! between `R` and `Rm` becomes the CFD `(X ∪ Xp → B, tp)`: "tuples
//! matching `tp` that agree on the key must agree on `B`". Rules with
//! genuinely cross-attribute mappings (e.g. DBLP's
//! `((a2, a1) → (hp2, hp1), ·)`) have no CFD counterpart — exactly the
//! expressiveness gap Sect. 2 points out — and are skipped.

use certainfix_relation::AttrId;
use certainfix_rules::RuleSet;

use crate::cfd::{cell_from_pattern, Cfd};

/// Convert every name-aligned rule of `Σ` into a variable CFD.
/// Returns the CFDs and the number of rules skipped as inexpressible.
pub fn rules_to_cfds(rules: &RuleSet) -> (Vec<Cfd>, usize) {
    let r = rules.r_schema();
    let rm = rules.m_schema();
    let mut out = Vec::new();
    let mut skipped = 0usize;
    'rules: for (_, rule) in rules.iter() {
        // Every key pair and the fix pair must align by attribute name.
        for (&x, &xm) in rule.lhs().iter().zip(rule.lhs_m()) {
            if r.attr_name(x) != rm.attr_name(xm) {
                skipped += 1;
                continue 'rules;
            }
        }
        if r.attr_name(rule.rhs()) != rm.attr_name(rule.rhs_m()) {
            skipped += 1;
            continue;
        }
        // X ∪ Xp with pattern cells: keys get wildcards, pattern attrs
        // their (constant) cells; negations degrade to wildcards.
        let mut lhs: Vec<AttrId> = rule.lhs().to_vec();
        let mut pattern: Vec<Option<certainfix_relation::Value>> = vec![None; lhs.len()];
        for (&a, cell) in rule.lhs_p().iter().zip(rule.pattern().cells()) {
            match lhs.iter().position(|&x| x == a) {
                Some(i) => pattern[i] = cell_from_pattern(cell),
                None => {
                    if a == rule.rhs() {
                        // a pattern on B itself can't move to the lhs
                        continue;
                    }
                    lhs.push(a);
                    pattern.push(cell_from_pattern(cell));
                }
            }
        }
        out.push(Cfd::new(
            format!("cfd({})", rule.name()),
            lhs,
            pattern,
            rule.rhs(),
            None,
        ));
    }
    (out, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{Schema, Value};
    use certainfix_rules::parse_rules;

    #[test]
    fn aligned_rules_convert() {
        let r = Schema::new("R", ["zip", "AC", "city", "type"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules(
            "p1: match zip ~ zip set city := city when type = 1",
            &r,
            &rm,
        )
        .unwrap();
        let (cfds, skipped) = rules_to_cfds(&rules);
        assert_eq!(skipped, 0);
        assert_eq!(cfds.len(), 1);
        let c = &cfds[0];
        assert_eq!(c.lhs().len(), 2, "zip plus the pattern attr type");
        assert_eq!(c.rhs(), r.attr("city").unwrap());
        assert_eq!(c.render(&r), "cfd(p1): ([zip=_, type=1] → city=_)");
    }

    #[test]
    fn cross_attribute_rules_skipped() {
        let r = Schema::new("R", ["a1", "a2", "hp1", "hp2"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules(
            "f2: match a2 ~ a1 set hp2 := hp1\nf3: match a1 ~ a1 set hp1 := hp1",
            &r,
            &rm,
        )
        .unwrap();
        let (cfds, skipped) = rules_to_cfds(&rules);
        assert_eq!(skipped, 1, "f2 is not expressible as a CFD");
        assert_eq!(cfds.len(), 1);
        assert_eq!(cfds[0].name(), "cfd(f3)");
    }

    #[test]
    fn negated_patterns_degrade_to_wildcards() {
        let r = Schema::new("R", ["zip", "AC", "city"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules(
            "p: match zip ~ zip set city := city when AC != '0800'",
            &r,
            &rm,
        )
        .unwrap();
        let (cfds, _) = rules_to_cfds(&rules);
        // AC joins the lhs as a wildcard (the ≠ condition is lost —
        // CFDs cannot express it)
        assert!(cfds[0].render(&r).contains("AC=_"));
    }

    #[test]
    fn pattern_attr_equal_to_rhs_is_dropped() {
        let r = Schema::new("R", ["AC", "city"]).unwrap();
        let rm = r.clone();
        // ϕ4-style: pattern on AC (the key), fixing city
        let rules = parse_rules(
            "p4: match AC ~ AC set city := city when AC = '0800'",
            &r,
            &rm,
        )
        .unwrap();
        let (cfds, _) = rules_to_cfds(&rules);
        assert_eq!(cfds.len(), 1);
        assert_eq!(cfds[0].render(&r), "cfd(p4): ([AC=0800] → city=_)");
        let _ = Value::Null; // silence unused-import lints in some cfgs
    }
}
