//! String edit distance for the repair cost model.
//!
//! `IncRep`'s cost of updating a value `v` to `v'` is
//! `w(A, t) · dist(v, v') / max(|v|, |v'|)` — a weighted, normalized
//! edit distance [Cong et al. 2007, Sect. 3]. We implement the
//! restricted Damerau-Levenshtein distance (insertions, deletions,
//! substitutions, adjacent transpositions), which is the variant data
//! cleaning tools conventionally use for typo models.

use certainfix_relation::Value;

/// Restricted Damerau-Levenshtein distance over Unicode scalar values.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // three rolling rows: i-2, i-1, i
    let mut prev2: Vec<usize> = vec![0; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut curr: Vec<usize> = vec![0; m + 1];
    for i in 1..=n {
        curr[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j] + 1) // deletion
                .min(curr[j - 1] + 1) // insertion
                .min(prev[j - 1] + cost); // substitution
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1); // transposition
            }
            curr[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Distance normalized to `[0, 1]` by the longer string; equal strings
/// are 0, entirely different strings approach 1.
pub fn normalized_distance(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 0.0;
    }
    damerau_levenshtein(a, b) as f64 / max as f64
}

/// Normalized distance lifted to [`Value`]s. Changing to/from a null
/// costs 1 (inserting or deleting the whole value); differing types
/// cost 1; equal values cost 0.
pub fn value_distance(a: &Value, b: &Value) -> f64 {
    match (a, b) {
        _ if a == b => 0.0,
        (Value::Null, _) | (_, Value::Null) => 1.0,
        (Value::Str(x), Value::Str(y)) => normalized_distance(x.as_str(), y.as_str()),
        (Value::Int(x), Value::Int(y)) => normalized_distance(&x.to_string(), &y.to_string()),
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("", "abc"), 3);
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        assert_eq!(damerau_levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn transpositions_cost_one() {
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("Edi", "Edi"), 0);
        assert_eq!(damerau_levenshtein("Eid", "Edi"), 1);
        // restricted variant: "ca" -> "abc" is 3 (no overlapping edits)
        assert_eq!(damerau_levenshtein("ca", "abc"), 3);
    }

    #[test]
    fn unicode_is_by_scalar() {
        assert_eq!(damerau_levenshtein("naïve", "naive"), 1);
        assert_eq!(damerau_levenshtein("日本", "本日"), 1);
    }

    #[test]
    fn normalization_bounds() {
        assert_eq!(normalized_distance("", ""), 0.0);
        assert_eq!(normalized_distance("abc", "abc"), 0.0);
        assert_eq!(normalized_distance("abc", "xyz"), 1.0);
        let d = normalized_distance("020", "131");
        assert!(d > 0.0 && d <= 1.0);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("abc", "acb"), ("kitten", "sitting"), ("", "x")] {
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
        }
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let words = ["edinburgh", "edinburg", "london", "lodnon", ""];
        for a in words {
            for b in words {
                for c in words {
                    assert!(
                        damerau_levenshtein(a, c)
                            <= damerau_levenshtein(a, b) + damerau_levenshtein(b, c),
                        "{a} {b} {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn value_distances() {
        assert_eq!(value_distance(&Value::Null, &Value::Null), 0.0);
        assert_eq!(value_distance(&Value::Null, &Value::str("x")), 1.0);
        assert_eq!(value_distance(&Value::int(5), &Value::str("5")), 1.0);
        assert_eq!(value_distance(&Value::str("a"), &Value::str("a")), 0.0);
        assert!(value_distance(&Value::int(100), &Value::int(101)) < 1.0);
    }
}
