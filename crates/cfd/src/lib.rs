//! Conditional functional dependencies (CFDs) and the `IncRep`
//! repairing baseline.
//!
//! The paper's Sect. 6 compares `CertainFix` against `IncRep`, the
//! heuristic CFD-based repairing algorithm of
//! [Cong, Fan, Geerts, Jia, Ma — *Improving Data Quality: Consistency
//! and Accuracy*, VLDB 2007]. This crate provides everything that
//! comparison needs:
//!
//! * [`Cfd`] — CFDs `(X → B, tp)` with violation detection for both
//!   constant and variable CFDs,
//! * [`distance`] — the restricted Damerau-Levenshtein edit distance
//!   and its normalized form, used by the repair cost model,
//! * [`convert`] — turning editing rules into CFDs when input and
//!   master schemas align by attribute name (how the experiment derives
//!   a comparable constraint set),
//! * [`repair_tuple()`](increp::repair_tuple) — the cost-based repair:
//!   resolve each violation by the cheapest attribute modification
//!   (`weight × normalized distance`), which — unlike certain fixes —
//!   can pick the wrong side and corrupt a correct attribute (the
//!   paper's Example 1 failure mode).
//!
//! The old whole-relation `increp()` entry point is gone: CFD
//! incremental repair now runs through the unified session surface
//! (`certainfix_core::RepairSession` with a CFD workload), which fans
//! [`repair_tuple`](increp::repair_tuple) out across workers. The
//! per-tuple function stays public as the comparison/parity oracle.

pub mod cfd;
pub mod convert;
pub mod distance;
pub mod increp;

pub use cfd::{Cfd, Violation};
pub use convert::rules_to_cfds;
pub use distance::{damerau_levenshtein, normalized_distance, value_distance};
pub use increp::{repair_tuple, Change, IncRepConfig, TupleRepair};
