//! The `IncRep` repairing baseline [Cong et al., VLDB 2007].
//!
//! `IncRep` resolves CFD violations by *cost-based value modification*:
//! for each violation it considers candidate updates — move the
//! right-hand side to the value the reference prescribes, or break the
//! left-hand-side match by moving a key attribute to its nearest
//! alternative — and applies the cheapest, where
//! `cost(t, A, v → v') = w(A) · dist(v, v')` with the normalized
//! Damerau-Levenshtein distance of [`crate::distance`].
//!
//! This is precisely the behaviour the paper contrasts with certain
//! fixes (Example 1): when a typo in a *key* attribute makes the tuple
//! match the wrong reference entity, the cheapest repair often rewrites
//! a *correct* attribute, so precision < 100% and quality degrades as
//! the noise rate grows (Fig. 11c/f).

use certainfix_relation::{AttrId, MasterIndex, Relation, Tuple, Value};

use crate::cfd::Cfd;
use crate::distance::value_distance;

/// Tuning knobs for the baseline.
#[derive(Clone, Debug)]
pub struct IncRepConfig {
    /// Per-attribute weights `w(A)`; `None` = all 1.0.
    pub weights: Option<Vec<f64>>,
    /// Maximum resolution passes per tuple (the repair may cascade).
    pub max_passes: usize,
    /// How many reference values to scan when searching the nearest
    /// alternative for a key attribute.
    pub alternative_sample: usize,
    /// Extra cost factor for resolving a violation by rewriting a
    /// *left-hand-side* attribute (breaking the key match) instead of
    /// the prescribed right-hand side. Cong et al.'s cost model weights
    /// attributes by reliability; keys that many constraints depend on
    /// are the reliable ones, so breaking them is discouraged — but not
    /// forbidden, which is exactly where wrong repairs slip in.
    pub lhs_break_penalty: f64,
}

impl Default for IncRepConfig {
    fn default() -> Self {
        IncRepConfig {
            weights: None,
            max_passes: 4,
            alternative_sample: 32,
            lhs_break_penalty: 3.0,
        }
    }
}

/// One applied modification.
#[derive(Clone, Debug, PartialEq)]
pub struct Change {
    /// Row index in the input relation.
    pub row: usize,
    /// Modified attribute.
    pub attr: AttrId,
    /// Previous value.
    pub old: Value,
    /// New value.
    pub new: Value,
}

/// The repair outcome.
#[derive(Clone, Debug)]
pub struct IncRepReport {
    /// The repaired relation.
    pub repaired: Relation,
    /// All modifications, in application order.
    pub changes: Vec<Change>,
    /// Violations that could not be resolved within the pass budget.
    pub unresolved: usize,
}

fn weight(cfg: &IncRepConfig, a: AttrId) -> f64 {
    cfg.weights
        .as_ref()
        .and_then(|w| w.get(a.index()))
        .copied()
        .unwrap_or(1.0)
}

/// Nearest alternative value for attribute `a` drawn from the reference
/// active domain (excluding the current value), or `None`.
fn nearest_alternative(
    reference: &MasterIndex,
    a: AttrId,
    current: &Value,
    sample: usize,
) -> Option<(Value, f64)> {
    let dom = reference.relation().active_domain(a);
    dom.iter()
        .filter(|v| *v != current)
        .take(sample.max(1))
        .map(|v| (*v, value_distance(current, v)))
        .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal))
}

/// Repair `dirty` against `cfds`, using `reference` (the clean master
/// relation re-used as the consistent database) to witness variable-CFD
/// violations and to supply candidate values.
pub fn increp(
    dirty: &Relation,
    cfds: &[Cfd],
    reference: &MasterIndex,
    cfg: &IncRepConfig,
) -> IncRepReport {
    let mut repaired = dirty.clone();
    let mut changes = Vec::new();
    let mut unresolved = 0usize;
    for row in 0..repaired.len() {
        let mut passes = 0;
        loop {
            passes += 1;
            let mut applied = false;
            for cfd in cfds {
                let t = repaired.tuple(row).clone();
                let Some(repair) = plan_repair(cfd, &t, reference, cfg) else {
                    continue;
                };
                let (attr, new) = repair;
                let old = *t.get(attr);
                repaired.tuple_mut(row).set(attr, new);
                changes.push(Change {
                    row,
                    attr,
                    old,
                    new,
                });
                applied = true;
            }
            if !applied {
                break;
            }
            if passes >= cfg.max_passes {
                // still-violated CFDs are counted as unresolved
                let t = repaired.tuple(row);
                unresolved += cfds
                    .iter()
                    .filter(|c| c.violates_single(t) || c.violation_against(t, reference).is_some())
                    .count();
                break;
            }
        }
    }
    IncRepReport {
        repaired,
        changes,
        unresolved,
    }
}

/// Pick the cheapest single-attribute update resolving `cfd` on `t`,
/// if `t` violates it.
fn plan_repair(
    cfd: &Cfd,
    t: &Tuple,
    reference: &MasterIndex,
    cfg: &IncRepConfig,
) -> Option<(AttrId, Value)> {
    // What value does the violated CFD prescribe for B?
    let prescribed: Value = if cfd.violates_single(t) {
        cfd.rhs_pattern().cloned()?
    } else if let Some((_, expected)) = cfd.violation_against(t, reference) {
        expected
    } else {
        return None;
    };

    let rhs_cost = weight(cfg, cfd.rhs()) * value_distance(t.get(cfd.rhs()), &prescribed);
    let mut best: (f64, AttrId, Value) = (rhs_cost, cfd.rhs(), prescribed);

    // Alternatively, break the lhs match by nudging a key attribute.
    for &x in cfd.lhs() {
        if let Some((alt, dist)) =
            nearest_alternative(reference, x, t.get(x), cfg.alternative_sample)
        {
            let cost = weight(cfg, x) * dist * cfg.lhs_break_penalty;
            if cost < best.0 {
                best = (cost, x, alt);
            }
        }
    }
    Some((best.1, best.2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfd::Cfd;
    use certainfix_relation::{tuple, Schema};
    use std::sync::Arc;

    /// Reference: zip determines AC and city (two UK entities).
    fn setup() -> (Arc<Schema>, Vec<Cfd>, MasterIndex) {
        let s = Schema::new("R", ["zip", "AC", "city"]).unwrap();
        let reference = MasterIndex::new(Arc::new(
            Relation::new(
                s.clone(),
                vec![
                    tuple!["EH7 4AH", "131", "Edi"],
                    tuple!["NW1 6XE", "020", "Ldn"],
                ],
            )
            .unwrap(),
        ));
        let cfds = vec![
            Cfd::new(
                "zip->AC",
                vec![s.attr("zip").unwrap()],
                vec![None],
                s.attr("AC").unwrap(),
                None,
            ),
            Cfd::new(
                "zip->city",
                vec![s.attr("zip").unwrap()],
                vec![None],
                s.attr("city").unwrap(),
                None,
            ),
        ];
        (s, cfds, reference)
    }

    #[test]
    fn repairs_small_typo_on_rhs() {
        // city "Ed" is one edit from the prescribed "Edi": cheapest fix
        // is the rhs.
        let (s, cfds, reference) = setup();
        let dirty = Relation::new(s.clone(), vec![tuple!["EH7 4AH", "131", "Ed"]]).unwrap();
        let rep = increp(&dirty, &cfds, &reference, &IncRepConfig::default());
        assert_eq!(
            rep.repaired.tuple(0).get(s.attr("city").unwrap()),
            &Value::str("Edi")
        );
        assert_eq!(rep.changes.len(), 1);
        assert_eq!(rep.unresolved, 0);
    }

    #[test]
    fn may_corrupt_a_correct_attribute() {
        // The paper's Example 1 failure: the tuple has a completely
        // wrong AC but a correct zip, and the reference contains a zip
        // one edit away. The prescribed repair AC := 131 costs a full
        // rewrite (dist 1.0) while nudging the *correct* zip to the
        // neighbouring key is cheap even after the lhs-break penalty —
        // so IncRep corrupts the key instead of fixing the error.
        let s = Schema::new("R", ["zip", "AC", "city"]).unwrap();
        let reference = MasterIndex::new(Arc::new(
            Relation::new(
                s.clone(),
                vec![tuple!["10001", "131", "Edi"], tuple!["10002", "020", "Ldn"]],
            )
            .unwrap(),
        ));
        let cfds = vec![Cfd::new(
            "zip->AC",
            vec![s.attr("zip").unwrap()],
            vec![None],
            s.attr("AC").unwrap(),
            None,
        )];
        let truth = tuple!["10001", "131", "Edi"];
        let dirty = Relation::new(s.clone(), vec![tuple!["10001", "999", "Edi"]]).unwrap();
        let rep = increp(&dirty, &cfds, &reference, &IncRepConfig::default());
        // It changed SOMETHING (the tuple violates zip→AC)
        assert!(!rep.changes.is_empty());
        // the first modification touched a correct attribute (zip):
        // dist(10001→10002) = 0.2, ×2 penalty = 0.4 < dist(999→131) = 1
        assert_eq!(rep.changes[0].attr, s.attr("zip").unwrap());
        // and the result is NOT the ground truth.
        assert_ne!(
            rep.repaired.tuple(0),
            &truth,
            "IncRep lacks certainty guarantees"
        );
    }

    #[test]
    fn constant_cfd_repair() {
        let s = Schema::new("R", ["AC", "city"]).unwrap();
        let reference = MasterIndex::new(Arc::new(
            Relation::new(s.clone(), vec![tuple!["020", "Ldn"]]).unwrap(),
        ));
        let cfds = vec![Cfd::new(
            "c",
            vec![s.attr("AC").unwrap()],
            vec![Some(Value::str("020"))],
            s.attr("city").unwrap(),
            Some(Value::str("Ldn")),
        )];
        let dirty = Relation::new(s.clone(), vec![tuple!["020", "Ldnn"]]).unwrap();
        let rep = increp(&dirty, &cfds, &reference, &IncRepConfig::default());
        assert_eq!(
            rep.repaired.tuple(0).get(s.attr("city").unwrap()),
            &Value::str("Ldn")
        );
    }

    #[test]
    fn clean_tuples_untouched() {
        let (s, cfds, reference) = setup();
        let clean = Relation::new(
            s,
            vec![
                tuple!["EH7 4AH", "131", "Edi"],
                tuple!["NW1 6XE", "020", "Ldn"],
            ],
        )
        .unwrap();
        let rep = increp(&clean, &cfds, &reference, &IncRepConfig::default());
        assert!(rep.changes.is_empty());
        assert_eq!(rep.unresolved, 0);
    }

    #[test]
    fn weights_steer_the_choice() {
        // Make the rhs (AC) infinitely expensive: IncRep must move the
        // key (zip) instead.
        let (s, cfds, reference) = setup();
        let dirty = Relation::new(s.clone(), vec![tuple!["EH7 4AH", "021", "Edi"]]).unwrap();
        let cfg = IncRepConfig {
            weights: Some(vec![1.0, 1e9, 1.0]),
            ..Default::default()
        };
        let rep = increp(&dirty, &cfds, &reference, &cfg);
        assert!(
            rep.changes.iter().all(|c| c.attr != s.attr("AC").unwrap()),
            "AC must not be touched under an enormous weight: {:?}",
            rep.changes
        );
    }

    #[test]
    fn pass_budget_counts_unresolved() {
        // A pathological reference where resolving one CFD re-violates
        // the other can exhaust passes; unresolved is reported, not
        // looped forever.
        let (s, cfds, reference) = setup();
        let dirty = Relation::new(s, vec![tuple!["EH7 4AH", "020", "Ldn"]]).unwrap();
        let cfg = IncRepConfig {
            max_passes: 1,
            ..Default::default()
        };
        let rep = increp(&dirty, &cfds, &reference, &cfg);
        // with one pass it repaired something; whether violations remain
        // depends on the choice, but the call terminates and reports.
        assert!(rep.changes.len() <= 4);
    }
}
