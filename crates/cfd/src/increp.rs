//! The `IncRep` repairing baseline [Cong et al., VLDB 2007].
//!
//! `IncRep` resolves CFD violations by *cost-based value modification*:
//! for each violation it considers candidate updates — move the
//! right-hand side to the value the reference prescribes, or break the
//! left-hand-side match by moving a key attribute to its nearest
//! alternative — and applies the cheapest, where
//! `cost(t, A, v → v') = w(A) · dist(v, v')` with the normalized
//! Damerau-Levenshtein distance of [`crate::distance`].
//!
//! This is precisely the behaviour the paper contrasts with certain
//! fixes (Example 1): when a typo in a *key* attribute makes the tuple
//! match the wrong reference entity, the cheapest repair often rewrites
//! a *correct* attribute, so precision < 100% and quality degrades as
//! the noise rate grows (Fig. 11c/f).
//!
//! The repair is **per-tuple**: [`repair_tuple`] resolves one tuple to
//! a fixpoint (or the pass budget) against the reference, independent
//! of every other tuple in the stream. That is what lets the unified
//! session surface (`certainfix_core::RepairSession` with a CFD
//! workload) fan the baseline out across workers with bit-identical
//! results — the old whole-relation `increp()` entry point was exactly
//! this loop over rows and has been retired in its favour.

use certainfix_relation::{AttrId, MasterIndex, Tuple, Value};

use crate::cfd::Cfd;
use crate::distance::value_distance;

/// Tuning knobs for the baseline.
#[derive(Clone, Debug)]
pub struct IncRepConfig {
    /// Per-attribute weights `w(A)`; `None` = all 1.0.
    pub weights: Option<Vec<f64>>,
    /// Maximum resolution passes per tuple (the repair may cascade).
    pub max_passes: usize,
    /// How many reference values to scan when searching the nearest
    /// alternative for a key attribute.
    pub alternative_sample: usize,
    /// Extra cost factor for resolving a violation by rewriting a
    /// *left-hand-side* attribute (breaking the key match) instead of
    /// the prescribed right-hand side. Cong et al.'s cost model weights
    /// attributes by reliability; keys that many constraints depend on
    /// are the reliable ones, so breaking them is discouraged — but not
    /// forbidden, which is exactly where wrong repairs slip in.
    pub lhs_break_penalty: f64,
}

impl Default for IncRepConfig {
    fn default() -> Self {
        IncRepConfig {
            weights: None,
            max_passes: 4,
            alternative_sample: 32,
            lhs_break_penalty: 3.0,
        }
    }
}

/// One applied modification.
#[derive(Clone, Debug, PartialEq)]
pub struct Change {
    /// Modified attribute.
    pub attr: AttrId,
    /// Previous value.
    pub old: Value,
    /// New value.
    pub new: Value,
}

/// The outcome of repairing one tuple.
#[derive(Clone, Debug)]
pub struct TupleRepair {
    /// The repaired tuple.
    pub tuple: Tuple,
    /// All modifications, in application order.
    pub changes: Vec<Change>,
    /// CFDs still violated after the pass budget was exhausted (0 when
    /// the repair reached a fixpoint).
    pub unresolved: usize,
}

fn weight(cfg: &IncRepConfig, a: AttrId) -> f64 {
    cfg.weights
        .as_ref()
        .and_then(|w| w.get(a.index()))
        .copied()
        .unwrap_or(1.0)
}

/// Nearest alternative value for attribute `a` drawn from the reference
/// active domain (excluding the current value), or `None`.
fn nearest_alternative(
    reference: &MasterIndex,
    a: AttrId,
    current: &Value,
    sample: usize,
) -> Option<(Value, f64)> {
    let dom = reference.relation().active_domain(a);
    dom.iter()
        .filter(|v| *v != current)
        .take(sample.max(1))
        .map(|v| (*v, value_distance(current, v)))
        .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal))
}

/// Repair one tuple against `cfds`, using `reference` (the clean master
/// relation re-used as the consistent database) to witness variable-CFD
/// violations and to supply candidate values. Per-CFD repairs are
/// applied in CFD order, re-examined to a fixpoint or until
/// `cfg.max_passes` passes; a repair depends only on the tuple, the
/// CFDs, and the reference — never on other tuples — so a batch of
/// tuples may be repaired in any order (or in parallel) with identical
/// results.
pub fn repair_tuple(
    cfds: &[Cfd],
    t: &Tuple,
    reference: &MasterIndex,
    cfg: &IncRepConfig,
) -> TupleRepair {
    let mut tuple = t.clone();
    let mut changes = Vec::new();
    let mut unresolved = 0usize;
    let mut passes = 0;
    loop {
        passes += 1;
        let mut applied = false;
        for cfd in cfds {
            let Some((attr, new)) = plan_repair(cfd, &tuple, reference, cfg) else {
                continue;
            };
            let old = *tuple.get(attr);
            tuple.set(attr, new);
            changes.push(Change { attr, old, new });
            applied = true;
        }
        if !applied {
            break;
        }
        if passes >= cfg.max_passes {
            // still-violated CFDs are counted as unresolved
            unresolved = cfds
                .iter()
                .filter(|c| {
                    c.violates_single(&tuple) || c.violation_against(&tuple, reference).is_some()
                })
                .count();
            break;
        }
    }
    TupleRepair {
        tuple,
        changes,
        unresolved,
    }
}

/// Pick the cheapest single-attribute update resolving `cfd` on `t`,
/// if `t` violates it.
fn plan_repair(
    cfd: &Cfd,
    t: &Tuple,
    reference: &MasterIndex,
    cfg: &IncRepConfig,
) -> Option<(AttrId, Value)> {
    // What value does the violated CFD prescribe for B?
    let prescribed: Value = if cfd.violates_single(t) {
        cfd.rhs_pattern().cloned()?
    } else if let Some((_, expected)) = cfd.violation_against(t, reference) {
        expected
    } else {
        return None;
    };

    let rhs_cost = weight(cfg, cfd.rhs()) * value_distance(t.get(cfd.rhs()), &prescribed);
    let mut best: (f64, AttrId, Value) = (rhs_cost, cfd.rhs(), prescribed);

    // Alternatively, break the lhs match by nudging a key attribute.
    for &x in cfd.lhs() {
        if let Some((alt, dist)) =
            nearest_alternative(reference, x, t.get(x), cfg.alternative_sample)
        {
            let cost = weight(cfg, x) * dist * cfg.lhs_break_penalty;
            if cost < best.0 {
                best = (cost, x, alt);
            }
        }
    }
    Some((best.1, best.2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfd::Cfd;
    use certainfix_relation::{tuple, Relation, Schema};
    use std::sync::Arc;

    /// Reference: zip determines AC and city (two UK entities).
    fn setup() -> (Arc<Schema>, Vec<Cfd>, MasterIndex) {
        let s = Schema::new("R", ["zip", "AC", "city"]).unwrap();
        let reference = MasterIndex::new(Arc::new(
            Relation::new(
                s.clone(),
                vec![
                    tuple!["EH7 4AH", "131", "Edi"],
                    tuple!["NW1 6XE", "020", "Ldn"],
                ],
            )
            .unwrap(),
        ));
        let cfds = vec![
            Cfd::new(
                "zip->AC",
                vec![s.attr("zip").unwrap()],
                vec![None],
                s.attr("AC").unwrap(),
                None,
            ),
            Cfd::new(
                "zip->city",
                vec![s.attr("zip").unwrap()],
                vec![None],
                s.attr("city").unwrap(),
                None,
            ),
        ];
        (s, cfds, reference)
    }

    #[test]
    fn repairs_small_typo_on_rhs() {
        // city "Ed" is one edit from the prescribed "Edi": cheapest fix
        // is the rhs.
        let (s, cfds, reference) = setup();
        let rep = repair_tuple(
            &cfds,
            &tuple!["EH7 4AH", "131", "Ed"],
            &reference,
            &IncRepConfig::default(),
        );
        assert_eq!(rep.tuple.get(s.attr("city").unwrap()), &Value::str("Edi"));
        assert_eq!(rep.changes.len(), 1);
        assert_eq!(rep.unresolved, 0);
    }

    #[test]
    fn may_corrupt_a_correct_attribute() {
        // The paper's Example 1 failure: the tuple has a completely
        // wrong AC but a correct zip, and the reference contains a zip
        // one edit away. The prescribed repair AC := 131 costs a full
        // rewrite (dist 1.0) while nudging the *correct* zip to the
        // neighbouring key is cheap even after the lhs-break penalty —
        // so IncRep corrupts the key instead of fixing the error.
        let s = Schema::new("R", ["zip", "AC", "city"]).unwrap();
        let reference = MasterIndex::new(Arc::new(
            Relation::new(
                s.clone(),
                vec![tuple!["10001", "131", "Edi"], tuple!["10002", "020", "Ldn"]],
            )
            .unwrap(),
        ));
        let cfds = vec![Cfd::new(
            "zip->AC",
            vec![s.attr("zip").unwrap()],
            vec![None],
            s.attr("AC").unwrap(),
            None,
        )];
        let truth = tuple!["10001", "131", "Edi"];
        let rep = repair_tuple(
            &cfds,
            &tuple!["10001", "999", "Edi"],
            &reference,
            &IncRepConfig::default(),
        );
        // It changed SOMETHING (the tuple violates zip→AC)
        assert!(!rep.changes.is_empty());
        // the first modification touched a correct attribute (zip):
        // dist(10001→10002) = 0.2, ×2 penalty = 0.4 < dist(999→131) = 1
        assert_eq!(rep.changes[0].attr, s.attr("zip").unwrap());
        // and the result is NOT the ground truth.
        assert_ne!(rep.tuple, truth, "IncRep lacks certainty guarantees");
    }

    #[test]
    fn constant_cfd_repair() {
        let s = Schema::new("R", ["AC", "city"]).unwrap();
        let reference = MasterIndex::new(Arc::new(
            Relation::new(s.clone(), vec![tuple!["020", "Ldn"]]).unwrap(),
        ));
        let cfds = vec![Cfd::new(
            "c",
            vec![s.attr("AC").unwrap()],
            vec![Some(Value::str("020"))],
            s.attr("city").unwrap(),
            Some(Value::str("Ldn")),
        )];
        let rep = repair_tuple(
            &cfds,
            &tuple!["020", "Ldnn"],
            &reference,
            &IncRepConfig::default(),
        );
        assert_eq!(rep.tuple.get(s.attr("city").unwrap()), &Value::str("Ldn"));
    }

    #[test]
    fn clean_tuples_untouched() {
        let (_, cfds, reference) = setup();
        for clean in [
            tuple!["EH7 4AH", "131", "Edi"],
            tuple!["NW1 6XE", "020", "Ldn"],
        ] {
            let rep = repair_tuple(&cfds, &clean, &reference, &IncRepConfig::default());
            assert!(rep.changes.is_empty());
            assert_eq!(rep.unresolved, 0);
            assert_eq!(rep.tuple, clean);
        }
    }

    #[test]
    fn weights_steer_the_choice() {
        // Make the rhs (AC) infinitely expensive: IncRep must move the
        // key (zip) instead.
        let (s, cfds, reference) = setup();
        let cfg = IncRepConfig {
            weights: Some(vec![1.0, 1e9, 1.0]),
            ..Default::default()
        };
        let rep = repair_tuple(&cfds, &tuple!["EH7 4AH", "021", "Edi"], &reference, &cfg);
        assert!(
            rep.changes.iter().all(|c| c.attr != s.attr("AC").unwrap()),
            "AC must not be touched under an enormous weight: {:?}",
            rep.changes
        );
    }

    #[test]
    fn pass_budget_counts_unresolved() {
        // A pathological reference where resolving one CFD re-violates
        // the other can exhaust passes; unresolved is reported, not
        // looped forever.
        let (_, cfds, reference) = setup();
        let cfg = IncRepConfig {
            max_passes: 1,
            ..Default::default()
        };
        let rep = repair_tuple(&cfds, &tuple!["EH7 4AH", "020", "Ldn"], &reference, &cfg);
        // with one pass it repaired something; whether violations remain
        // depends on the choice, but the call terminates and reports.
        assert!(rep.changes.len() <= 4);
    }

    #[test]
    fn repair_is_row_order_independent() {
        // The per-tuple contract behind the session fan-out: repairing
        // the same tuples in any order yields identical results.
        let (_, cfds, reference) = setup();
        let dirty = [
            tuple!["EH7 4AH", "132", "Edi"],
            tuple!["NW1 6XE", "020", "Lnd"],
            tuple!["EH7 4AH", "131", "Ed"],
        ];
        let forward: Vec<Tuple> = dirty
            .iter()
            .map(|t| repair_tuple(&cfds, t, &reference, &IncRepConfig::default()).tuple)
            .collect();
        let mut backward: Vec<Tuple> = dirty
            .iter()
            .rev()
            .map(|t| repair_tuple(&cfds, t, &reference, &IncRepConfig::default()).tuple)
            .collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }
}
