//! Conditional functional dependencies.
//!
//! A CFD over schema `R` is `ψ = (X → B, tp)` where `X → B` is a
//! standard FD and `tp` is a pattern tuple over `X ∪ {B}` whose cells
//! are constants or `_` [Fan et al., TODS 2008]. When `tp[B]` is a
//! constant (and usually all of `tp[X]`), `ψ` is a *constant* CFD and a
//! single tuple can violate it; otherwise it is a *variable* CFD and
//! violations are witnessed by tuple pairs (or, in the monitoring
//! setting, by a tuple together with a clean reference relation).

use std::fmt;

use certainfix_relation::{
    AttrId, FxHashMap, MasterIndex, PatternValue, Relation, Schema, Tuple, Value,
};

/// A CFD `(X → B, tp)`. Pattern cells are `Const` or wildcard
/// (negations do not occur in standard CFDs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfd {
    name: String,
    lhs: Vec<AttrId>,
    /// Pattern on `X`, parallel to `lhs`; `None` = wildcard.
    lhs_pattern: Vec<Option<Value>>,
    rhs: AttrId,
    /// Pattern on `B`; `None` = wildcard (variable CFD).
    rhs_pattern: Option<Value>,
}

impl Cfd {
    /// Build a CFD; `lhs_pattern` must be parallel to `lhs`.
    pub fn new(
        name: impl Into<String>,
        lhs: Vec<AttrId>,
        lhs_pattern: Vec<Option<Value>>,
        rhs: AttrId,
        rhs_pattern: Option<Value>,
    ) -> Cfd {
        assert_eq!(lhs.len(), lhs_pattern.len(), "pattern must parallel X");
        assert!(!lhs.contains(&rhs), "B must not occur in X");
        Cfd {
            name: name.into(),
            lhs,
            lhs_pattern,
            rhs,
            rhs_pattern,
        }
    }

    /// The CFD's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `X`.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// `B`.
    pub fn rhs(&self) -> AttrId {
        self.rhs
    }

    /// The pattern constant on `B`, if any.
    pub fn rhs_pattern(&self) -> Option<&Value> {
        self.rhs_pattern.as_ref()
    }

    /// `true` iff `tp[B]` is a constant — a constant CFD (when the `X`
    /// pattern is also all constants it can be violated by one tuple).
    pub fn is_constant(&self) -> bool {
        self.rhs_pattern.is_some() && self.lhs_pattern.iter().all(Option::is_some)
    }

    /// Does `t[X]` match `tp[X]`? Tuples with nulls in `X` never match
    /// (a missing value cannot witness a violation).
    pub fn matches_lhs(&self, t: &Tuple) -> bool {
        self.lhs.iter().zip(&self.lhs_pattern).all(|(&a, p)| {
            let v = t.get(a);
            !v.is_null() && p.as_ref().map(|c| v == c).unwrap_or(true)
        })
    }

    /// Single-tuple violation (constant CFDs only): `t` matches `tp[X]`
    /// but `t[B]` differs from the constant `tp[B]`.
    pub fn violates_single(&self, t: &Tuple) -> bool {
        match &self.rhs_pattern {
            Some(b) => self.matches_lhs(t) && !t.get(self.rhs).is_null() && t.get(self.rhs) != b,
            None => false,
        }
    }

    /// Violation of `t` against a clean reference: `t` matches `tp[X]`,
    /// some reference tuple agrees with `t` on `X` (and matches the
    /// pattern), but prescribes a different `B`. Returns the prescribed
    /// value. This is how a variable CFD is checked in the monitoring
    /// setting where the reference relation is assumed clean.
    pub fn violation_against<'m>(
        &self,
        t: &Tuple,
        reference: &'m MasterIndex,
    ) -> Option<(&'m Tuple, Value)> {
        if !self.matches_lhs(t) {
            return None;
        }
        let ids = reference.matches_projection(t, &self.lhs, &self.lhs);
        for id in ids {
            let r = reference.tuple(id);
            if !self.matches_lhs(r) {
                continue;
            }
            let expected = match &self.rhs_pattern {
                Some(b) => *b,
                None => *r.get(self.rhs),
            };
            if expected.is_null() {
                continue;
            }
            let actual = t.get(self.rhs);
            if actual != &expected {
                return Some((r, expected));
            }
        }
        None
    }

    /// Pairwise violations inside one relation (the classical CFD
    /// semantics): pairs of row ids matching `tp[X]`, agreeing on `X`,
    /// and disagreeing on `B` (or disagreeing with `tp[B]`).
    pub fn violations(&self, rel: &Relation) -> Vec<Violation> {
        let mut out = Vec::new();
        // single-tuple violations
        if self.is_constant() {
            for (i, t) in rel.iter().enumerate() {
                if self.violates_single(t) {
                    out.push(Violation {
                        cfd: self.name.clone(),
                        rows: (i, i),
                        attr: self.rhs,
                    });
                }
            }
            return out;
        }
        // pair violations: bucket by X projection
        let mut buckets: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
        for (i, t) in rel.iter().enumerate() {
            if self.matches_lhs(t) {
                buckets.entry(t.project(&self.lhs)).or_default().push(i);
            }
        }
        for rows in buckets.values() {
            for w in rows.windows(2) {
                let (a, b) = (w[0], w[1]);
                let va = rel.tuple(a).get(self.rhs);
                let vb = rel.tuple(b).get(self.rhs);
                if !va.is_null() && !vb.is_null() && va != vb {
                    out.push(Violation {
                        cfd: self.name.clone(),
                        rows: (a, b),
                        attr: self.rhs,
                    });
                }
            }
        }
        out
    }

    /// Render against a schema: `ψ: ([AC] → city, (020 ‖ Ldn))`.
    pub fn render(&self, schema: &Schema) -> String {
        let lhs: Vec<String> = self
            .lhs
            .iter()
            .zip(&self.lhs_pattern)
            .map(|(&a, p)| match p {
                Some(v) => format!("{}={}", schema.attr_name(a), v),
                None => format!("{}=_", schema.attr_name(a)),
            })
            .collect();
        let rhs = match &self.rhs_pattern {
            Some(v) => format!("{}={}", schema.attr_name(self.rhs), v),
            None => format!("{}=_", schema.attr_name(self.rhs)),
        };
        format!("{}: ([{}] → {})", self.name, lhs.join(", "), rhs)
    }
}

impl fmt::Display for Cfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: |X| = {} → {:?}",
            self.name,
            self.lhs.len(),
            self.rhs
        )
    }
}

/// A detected violation: the CFD's name, witnessing row id(s) (equal
/// for single-tuple violations) and the right-hand-side attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated CFD.
    pub cfd: String,
    /// Witness rows (both equal for constant-CFD violations).
    pub rows: (usize, usize),
    /// The attribute in dispute.
    pub attr: AttrId,
}

/// Helper mirroring [`certainfix_relation::PatternValue`] into the
/// `Option<Value>` cells CFDs use.
pub fn cell_from_pattern(p: &PatternValue) -> Option<Value> {
    match p {
        PatternValue::Const(v) => Some(*v),
        // negations can't be expressed in a CFD; drop to wildcard
        PatternValue::Neq(_) | PatternValue::Wildcard => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{tuple, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::new("R", ["AC", "city", "zip"]).unwrap()
    }

    fn constant_cfd(s: &Schema) -> Cfd {
        // (AC = 020 → city = Ldn)
        Cfd::new(
            "c1",
            vec![s.attr("AC").unwrap()],
            vec![Some(Value::str("020"))],
            s.attr("city").unwrap(),
            Some(Value::str("Ldn")),
        )
    }

    fn variable_cfd(s: &Schema) -> Cfd {
        // (zip → city) with empty pattern
        Cfd::new(
            "v1",
            vec![s.attr("zip").unwrap()],
            vec![None],
            s.attr("city").unwrap(),
            None,
        )
    }

    #[test]
    fn example1_constant_violation() {
        // t1: AC = 020, city = Edi violates (020 → Ldn)
        let s = schema();
        let c = constant_cfd(&s);
        assert!(c.is_constant());
        assert!(c.violates_single(&tuple!["020", "Edi", "EH7"]));
        assert!(!c.violates_single(&tuple!["020", "Ldn", "EH7"]));
        assert!(!c.violates_single(&tuple!["131", "Edi", "EH7"]));
        // nulls don't witness violations
        assert!(!c.violates_single(&tuple!["020", Value::Null, "EH7"]));
    }

    #[test]
    fn variable_cfd_pair_violations() {
        let s = schema();
        let v = variable_cfd(&s);
        assert!(!v.is_constant());
        let rel = Relation::new(
            s.clone(),
            vec![
                tuple!["020", "Ldn", "Z1"],
                tuple!["020", "Edi", "Z1"], // conflicts with row 0 on zip Z1
                tuple!["131", "Edi", "Z2"],
            ],
        )
        .unwrap();
        let vs = v.violations(&rel);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rows, (0, 1));
        assert_eq!(vs[0].attr, s.attr("city").unwrap());
    }

    #[test]
    fn constant_cfd_relation_scan() {
        let s = schema();
        let c = constant_cfd(&s);
        let rel = Relation::new(
            s,
            vec![tuple!["020", "Edi", "Z1"], tuple!["020", "Ldn", "Z2"]],
        )
        .unwrap();
        let vs = c.violations(&rel);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rows, (0, 0));
    }

    #[test]
    fn violation_against_reference() {
        let s = schema();
        let v = variable_cfd(&s);
        let master = MasterIndex::new(Arc::new(
            Relation::new(
                s.clone(),
                vec![tuple!["131", "Edi", "Z1"], tuple!["020", "Ldn", "Z2"]],
            )
            .unwrap(),
        ));
        // dirty tuple: zip Z1 should imply city Edi
        let t = tuple!["131", "Lnd", "Z1"];
        let (_, expected) = v.violation_against(&t, &master).unwrap();
        assert_eq!(expected, Value::str("Edi"));
        // clean tuple: no violation
        assert!(v
            .violation_against(&tuple!["131", "Edi", "Z1"], &master)
            .is_none());
        // unmatched zip: no violation
        assert!(v
            .violation_against(&tuple!["131", "Lnd", "Z9"], &master)
            .is_none());
    }

    #[test]
    fn rendering() {
        let s = schema();
        assert_eq!(constant_cfd(&s).render(&s), "c1: ([AC=020] → city=Ldn)");
        assert_eq!(variable_cfd(&s).render(&s), "v1: ([zip=_] → city=_)");
        assert!(constant_cfd(&s).to_string().contains("c1"));
    }

    #[test]
    fn cell_conversion() {
        assert_eq!(
            cell_from_pattern(&PatternValue::Const(Value::int(1))),
            Some(Value::int(1))
        );
        assert_eq!(cell_from_pattern(&PatternValue::Wildcard), None);
        assert_eq!(cell_from_pattern(&PatternValue::Neq(Value::int(1))), None);
    }

    #[test]
    #[should_panic]
    fn rhs_in_lhs_panics() {
        let s = schema();
        let a = s.attr("AC").unwrap();
        let _ = Cfd::new("bad", vec![a], vec![None], a, None);
    }
}
