//! Minimal CSV serialization for relations.
//!
//! Master data and input streams live in files in any real deployment;
//! this module provides a dependency-free reader/writer for the subset
//! of CSV the workspace needs: comma separator, double-quote escaping,
//! a header row carrying the schema, empty cells as nulls. Values are
//! read back as integers when they round-trip exactly (so `score` stays
//! an `Int` while `zip = 01234` stays a string).

use std::sync::Arc;

use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Serialize a relation to CSV with a header row.
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let header: Vec<String> = rel.schema().attr_names().map(escape_cell).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for t in rel.iter() {
        let row: Vec<String> = t
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => escape_cell(&other.render()),
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

fn escape_cell(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Parse a CSV document (with a header row) into a relation named
/// `name`. Empty cells become nulls; cells that round-trip as `i64`
/// become integers.
pub fn from_csv(name: &str, csv: &str) -> Result<Relation, RelationError> {
    let mut rows = parse_rows(csv);
    if rows.is_empty() {
        return Relation::new(Schema::new(name, Vec::<String>::new())?, Vec::new());
    }
    let header = rows.remove(0);
    let schema: Arc<Schema> = Schema::new(name, header)?;
    let mut rel = Relation::empty(schema.clone());
    for cells in rows {
        let values: Vec<Value> = cells.into_iter().map(parse_cell).collect();
        rel.push(Tuple::for_schema(&schema, values)?)?;
    }
    Ok(rel)
}

fn parse_cell(cell: String) -> Value {
    if cell.is_empty() {
        return Value::Null;
    }
    match cell.parse::<i64>() {
        // accept only canonical renderings so "01" keeps its zero
        Ok(n) if n.to_string() == cell => Value::int(n),
        _ => Value::from(cell),
    }
}

/// Split a CSV document into rows of unescaped cells.
fn parse_rows(csv: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut in_quotes = false;
    let mut chars = csv.chars().peekable();
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cell.is_empty() => in_quotes = true,
            ',' if !in_quotes => {
                row.push(std::mem::take(&mut cell));
            }
            '\r' if !in_quotes => {}
            '\n' if !in_quotes => {
                row.push(std::mem::take(&mut cell));
                rows.push(std::mem::take(&mut row));
            }
            other => cell.push(other),
        }
    }
    if any && (!cell.is_empty() || !row.is_empty()) {
        row.push(cell);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use crate::tuple;

    #[test]
    fn roundtrip_with_nulls_and_ints() {
        let s = Schema::new("R", ["zip", "city", "score"]).unwrap();
        let rel = Relation::new(
            s,
            vec![
                tuple!["EH7 4AH", "Edi", 42],
                tuple!["01234", Value::Null, -7],
            ],
        )
        .unwrap();
        let csv = to_csv(&rel);
        let back = from_csv("R", &csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.tuple(0), rel.tuple(0));
        assert_eq!(back.tuple(1), rel.tuple(1));
        // the zero-padded zip stayed a string, the score an int
        assert_eq!(back.tuple(1).get(AttrId(0)), &Value::str("01234"));
        assert_eq!(back.tuple(0).get(AttrId(2)), &Value::int(42));
    }

    #[test]
    fn quoting_and_embedded_separators() {
        let s = Schema::new("R", ["a", "b"]).unwrap();
        let rel = Relation::new(
            s,
            vec![tuple!["x,y", "he said \"hi\""], tuple!["line\nbreak", "z"]],
        )
        .unwrap();
        let back = from_csv("R", &to_csv(&rel)).unwrap();
        assert_eq!(back.tuple(0), rel.tuple(0));
        assert_eq!(back.tuple(1), rel.tuple(1));
    }

    #[test]
    fn header_defines_the_schema() {
        let rel = from_csv("M", "name,year\nAda,1815\n").unwrap();
        assert_eq!(rel.schema().name(), "M");
        assert_eq!(
            rel.schema().attr_names().collect::<Vec<_>>(),
            vec!["name", "year"]
        );
        assert_eq!(rel.tuple(0).get(AttrId(1)), &Value::int(1815));
    }

    #[test]
    fn empty_and_headers_only() {
        let rel = from_csv("E", "").unwrap();
        assert!(rel.is_empty());
        assert_eq!(rel.schema().len(), 0);
        let rel = from_csv("H", "a,b\n").unwrap();
        assert!(rel.is_empty());
        assert_eq!(rel.schema().len(), 2);
    }

    #[test]
    fn missing_trailing_newline_is_fine() {
        let rel = from_csv("R", "a,b\n1,2").unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuple(0), &tuple![1, 2]);
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        assert!(from_csv("R", "a,b\n1\n").is_err());
    }

    #[test]
    fn crlf_input() {
        let rel = from_csv("R", "a,b\r\n1,2\r\n").unwrap();
        assert_eq!(rel.tuple(0), &tuple![1, 2]);
    }
}
