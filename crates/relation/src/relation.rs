//! Relations: a schema plus rows.

use std::fmt;
use std::sync::Arc;

use crate::error::RelationError;
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// An instance of a relation schema — the master relation `Dm`, a set of
/// input tuples `D`, or a test fixture.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// An empty instance of `schema`.
    pub fn empty(schema: Arc<Schema>) -> Relation {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Build from rows, checking each row's arity.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Result<Relation, RelationError> {
        for t in &tuples {
            if t.arity() != schema.len() {
                return Err(RelationError::ArityMismatch {
                    schema: schema.name().to_string(),
                    expected: schema.len(),
                    got: t.arity(),
                });
            }
        }
        Ok(Relation { schema, tuples })
    }

    /// The schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Append a row, checking arity.
    pub fn push(&mut self, t: Tuple) -> Result<(), RelationError> {
        if t.arity() != self.schema.len() {
            return Err(RelationError::ArityMismatch {
                schema: self.schema.name().to_string(),
                expected: self.schema.len(),
                got: t.arity(),
            });
        }
        self.tuples.push(t);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Row by index.
    pub fn tuple(&self, i: usize) -> &Tuple {
        &self.tuples[i]
    }

    /// Iterate rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// All rows as a slice.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Mutable access to a row (used by repair baselines).
    pub fn tuple_mut(&mut self, i: usize) -> &mut Tuple {
        &mut self.tuples[i]
    }

    /// Collect the *active domain* of an attribute: its distinct
    /// non-null values, in first-seen order.
    pub fn active_domain(&self, a: AttrId) -> Vec<Value> {
        let mut seen = crate::hashers::FxHashSet::default();
        let mut out = Vec::new();
        for t in &self.tuples {
            let v = t.get(a);
            if !v.is_null() && seen.insert(*v) {
                out.push(*v);
            }
        }
        out
    }

    /// Render the relation as an aligned text table (for examples and
    /// debugging output; not a serialization format).
    pub fn render_table(&self) -> String {
        let mut widths: Vec<usize> = self
            .schema
            .attr_names()
            .map(|n| n.chars().count())
            .collect();
        let rendered: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| {
                t.values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        let s = v.to_string();
                        widths[i] = widths[i].max(s.chars().count());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let header: Vec<String> = self
            .schema
            .attr_names()
            .enumerate()
            .map(|(i, n)| format!("{n:<w$}", w = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join(" | ").chars().count()));
        out.push('\n');
        for row in rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, s)| format!("{s:<w$}", w = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instance with {} tuple(s)",
            self.schema.name(),
            self.tuples.len()
        )
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn schema() -> Arc<Schema> {
        Schema::new("R", ["a", "b"]).unwrap()
    }

    #[test]
    fn construction_checks_arity() {
        let s = schema();
        assert!(Relation::new(s.clone(), vec![tuple![1, 2]]).is_ok());
        assert!(Relation::new(s.clone(), vec![tuple![1]]).is_err());
        let mut r = Relation::empty(s);
        assert!(r.is_empty());
        r.push(tuple![1, 2]).unwrap();
        assert!(r.push(tuple![1, 2, 3]).is_err());
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuple(0), &tuple![1, 2]);
    }

    #[test]
    fn active_domain_dedupes_and_skips_null() {
        let s = schema();
        let r = Relation::new(
            s,
            vec![tuple![1, "x"], tuple![1, Value::Null], tuple![2, "x"]],
        )
        .unwrap();
        assert_eq!(
            r.active_domain(AttrId(0)),
            vec![Value::int(1), Value::int(2)]
        );
        assert_eq!(r.active_domain(AttrId(1)), vec![Value::str("x")]);
    }

    #[test]
    fn iteration_and_display() {
        let s = schema();
        let r = Relation::new(s, vec![tuple![1, 2], tuple![3, 4]]).unwrap();
        assert_eq!(r.iter().count(), 2);
        assert_eq!((&r).into_iter().count(), 2);
        assert_eq!(r.to_string(), "R instance with 2 tuple(s)");
    }

    #[test]
    fn table_rendering() {
        let s = schema();
        let r = Relation::new(s, vec![tuple![10, "hello"]]).unwrap();
        let table = r.render_table();
        assert!(table.contains("a "));
        assert!(table.contains("hello"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn tuple_mut_allows_in_place_repair() {
        let s = schema();
        let mut r = Relation::new(s, vec![tuple![1, 2]]).unwrap();
        r.tuple_mut(0).set(AttrId(1), Value::int(9));
        assert_eq!(r.tuple(0).get(AttrId(1)), &Value::int(9));
    }
}
