//! A fast, non-cryptographic hasher for internal hash maps.
//!
//! The rule engine hashes short keys (attribute-id vectors, projected
//! value lists) on its hot path; SipHash is needlessly slow there and
//! HashDoS is not a concern for an in-process analysis library. This is
//! the well-known "Fx" multiply-rotate hash used by rustc, implemented
//! locally so the workspace needs no extra dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&"hello"), hash_of(&"hellp"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        // prefix-free-ish on byte slices of different lengths
        assert_ne!(hash_of(&&b"ab"[..]), hash_of(&&b"ab\0"[..]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(10);
        assert!(s.contains(&10));
        assert!(!s.contains(&11));
    }
}
