//! Pattern tuples and tableaux.
//!
//! The paper's patterns (Sect. 2) have three cell forms over an
//! attribute `A`:
//!
//! * a constant `a` — the Boolean condition `x = a`,
//! * a negated constant `ā` — the condition `x ≠ a`,
//! * the unnamed wildcard `_` — no condition.
//!
//! A tuple `t` *matches* a pattern tuple `tc` over attributes `Xp`,
//! written `t[Xp] ≈ tc[Xp]`, iff every cell condition holds. Editing
//! rules carry a pattern tuple; regions `(Z, Tc)` carry a pattern
//! *tableau* `Tc` (a set of pattern tuples over `Z`).

use std::fmt;

use crate::attrset::AttrSet;
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;

/// One pattern cell: `_`, `a`, or `ā`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum PatternValue {
    /// `_` — matches any value, including a missing one.
    #[default]
    Wildcard,
    /// `a` — matches exactly this constant.
    Const(Value),
    /// `ā` — matches any *known* value different from this constant.
    ///
    /// A null cell does not satisfy `ā`: a missing value might be `a`.
    Neq(Value),
}

impl PatternValue {
    /// Evaluate the cell condition on a value.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PatternValue::Wildcard => true,
            PatternValue::Const(c) => v.agrees_with(c),
            PatternValue::Neq(c) => !v.is_null() && v != c,
        }
    }

    /// `true` for the wildcard cell.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, PatternValue::Wildcard)
    }

    /// `true` for a constant cell.
    pub fn is_const(&self) -> bool {
        matches!(self, PatternValue::Const(_))
    }

    /// The constant carried by `Const`, if any.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            PatternValue::Const(c) => Some(c),
            _ => None,
        }
    }

    /// `true` iff every value matched by `self` is matched by `other`.
    ///
    /// Used when checking whether a refined pattern subsumes another:
    /// `a ⊑ _`, `a ⊑ b̄` (for `a ≠ b`), `ā ⊑ _`, `x ⊑ x`.
    pub fn subsumed_by(&self, other: &PatternValue) -> bool {
        match (self, other) {
            (_, PatternValue::Wildcard) => true,
            (PatternValue::Const(a), PatternValue::Const(b)) => a == b,
            (PatternValue::Const(a), PatternValue::Neq(b)) => a != b,
            (PatternValue::Neq(a), PatternValue::Neq(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for PatternValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternValue::Wildcard => write!(f, "_"),
            PatternValue::Const(v) => write!(f, "{v}"),
            PatternValue::Neq(v) => write!(f, "≠{v}"),
        }
    }
}

/// A pattern tuple `tp[Xp]`: parallel lists of attributes and cells.
///
/// The attribute list is kept explicit (rather than a full-width row)
/// because patterns are sparse: `tp2[type] = (2)` constrains one of the
/// supplier schema's ten attributes.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct PatternTuple {
    attrs: Vec<AttrId>,
    cells: Vec<PatternValue>,
}

impl PatternTuple {
    /// The empty pattern `()` — matches every tuple.
    pub fn empty() -> PatternTuple {
        PatternTuple::default()
    }

    /// Build from `(attr, cell)` pairs.
    ///
    /// # Panics
    /// Panics (in debug builds) if an attribute repeats.
    pub fn new(pairs: Vec<(AttrId, PatternValue)>) -> PatternTuple {
        let (attrs, cells): (Vec<_>, Vec<_>) = pairs.into_iter().unzip();
        debug_assert!(
            {
                let mut seen = AttrSet::EMPTY;
                attrs.iter().all(|&a| seen.insert(a))
            },
            "pattern tuple attributes must be distinct"
        );
        PatternTuple { attrs, cells }
    }

    /// Constrained attributes `Xp`.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Constrained attributes as a set.
    pub fn attr_set(&self) -> AttrSet {
        self.attrs.iter().copied().collect()
    }

    /// Pattern cells, parallel to [`Self::attrs`].
    pub fn cells(&self) -> &[PatternValue] {
        &self.cells
    }

    /// The cell constraining `a`, if any.
    pub fn cell(&self, a: AttrId) -> Option<&PatternValue> {
        self.attrs
            .iter()
            .position(|&x| x == a)
            .map(|i| &self.cells[i])
    }

    /// `t[Xp] ≈ tp[Xp]` — the paper's match relation.
    pub fn matches(&self, t: &Tuple) -> bool {
        self.attrs
            .iter()
            .zip(&self.cells)
            .all(|(&a, c)| c.matches(t.get(a)))
    }

    /// Normal form (Sect. 2, Notations (3)): drop wildcard cells. The
    /// result matches exactly the same tuples.
    pub fn normalize(&self) -> PatternTuple {
        let pairs = self
            .attrs
            .iter()
            .zip(&self.cells)
            .filter(|(_, c)| !c.is_wildcard())
            .map(|(&a, c)| (a, c.clone()))
            .collect();
        PatternTuple::new(pairs)
    }

    /// `true` iff no cell is a wildcard (after which `normalize` is a
    /// no-op). Note this is per-cell; a *concrete* pattern additionally
    /// has no negations — see [`Self::is_concrete`].
    pub fn is_normalized(&self) -> bool {
        self.cells.iter().all(|c| !c.is_wildcard())
    }

    /// Concrete patterns (special case (4) of Sect. 4.1): constants only.
    pub fn is_concrete(&self) -> bool {
        self.cells.iter().all(|c| c.is_const())
    }

    /// Positive patterns (special case (3) of Sect. 4.1): no negations.
    pub fn is_positive(&self) -> bool {
        self.cells
            .iter()
            .all(|c| !matches!(c, PatternValue::Neq(_)))
    }

    /// Number of constrained attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` for the empty pattern.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Extend/override cells, keeping attribute order stable. Existing
    /// constraints on the same attribute are replaced. Used to build
    /// `Σ_t[Z]`-refined rules (Sect. 5.2) and `ext(Z, Tc, ϕ)`.
    pub fn refined_with(&self, extra: &[(AttrId, PatternValue)]) -> PatternTuple {
        let mut attrs = self.attrs.clone();
        let mut cells = self.cells.clone();
        for (a, c) in extra {
            match attrs.iter().position(|x| x == a) {
                Some(i) => cells[i] = c.clone(),
                None => {
                    attrs.push(*a);
                    cells.push(c.clone());
                }
            }
        }
        PatternTuple { attrs, cells }
    }

    /// Instantiate this pattern from a concrete tuple: for every
    /// constrained attribute take `t[A]` as a constant. Requires the
    /// tuple to match first for the result to be meaningful.
    pub fn instantiate_from(&self, t: &Tuple) -> PatternTuple {
        let pairs = self
            .attrs
            .iter()
            .map(|&a| (a, PatternValue::Const(*t.get(a))))
            .collect();
        PatternTuple::new(pairs)
    }

    /// `true` iff every tuple matching `self` also matches `other`
    /// (sound, syntactic check: per-attribute cell subsumption).
    pub fn subsumed_by(&self, other: &PatternTuple) -> bool {
        other.attrs.iter().zip(&other.cells).all(|(&a, oc)| {
            match self.cell(a) {
                Some(sc) => sc.subsumed_by(oc),
                // `self` leaves `a` unconstrained: only a wildcard in
                // `other` is implied.
                None => oc.is_wildcard(),
            }
        })
    }

    /// Render against a schema, e.g. `[type=1, AC≠0800]`.
    pub fn render(&self, schema: &Schema) -> String {
        if self.attrs.is_empty() {
            return "()".to_string();
        }
        let cells: Vec<String> = self
            .attrs
            .iter()
            .zip(&self.cells)
            .map(|(&a, c)| match c {
                PatternValue::Wildcard => format!("{}=_", schema.attr_name(a)),
                PatternValue::Const(v) => format!("{}={}", schema.attr_name(a), v),
                PatternValue::Neq(v) => format!("{}≠{}", schema.attr_name(a), v),
            })
            .collect();
        format!("[{}]", cells.join(", "))
    }
}

/// A pattern tableau: a set of pattern tuples over a common attribute
/// list `Z` (the `Tc` of a region `(Z, Tc)`).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Tableau {
    rows: Vec<PatternTuple>,
}

impl Tableau {
    /// The empty tableau (marks no tuple).
    pub fn empty() -> Tableau {
        Tableau::default()
    }

    /// Build from rows.
    pub fn new(rows: Vec<PatternTuple>) -> Tableau {
        Tableau { rows }
    }

    /// Add a row.
    pub fn push(&mut self, row: PatternTuple) {
        self.rows.push(row);
    }

    /// The rows.
    pub fn rows(&self) -> &[PatternTuple] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A tuple is *marked* by `(Z, Tc)` iff it matches some row.
    pub fn marks(&self, t: &Tuple) -> bool {
        self.rows.iter().any(|r| r.matches(t))
    }

    /// First row matching `t`, if any.
    pub fn matching_row(&self, t: &Tuple) -> Option<&PatternTuple> {
        self.rows.iter().find(|r| r.matches(t))
    }

    /// `true` iff every row is concrete.
    pub fn is_concrete(&self) -> bool {
        self.rows.iter().all(|r| r.is_concrete())
    }

    /// `true` iff no row carries a negation.
    pub fn is_positive(&self) -> bool {
        self.rows.iter().all(|r| r.is_positive())
    }
}

impl FromIterator<PatternTuple> for Tableau {
    fn from_iter<I: IntoIterator<Item = PatternTuple>>(iter: I) -> Tableau {
        Tableau {
            rows: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn cell_matching() {
        let w = PatternValue::Wildcard;
        let c = PatternValue::Const(Value::str("020"));
        let n = PatternValue::Neq(Value::str("0800"));
        assert!(w.matches(&Value::Null));
        assert!(w.matches(&Value::str("anything")));
        assert!(c.matches(&Value::str("020")));
        assert!(!c.matches(&Value::str("131")));
        assert!(!c.matches(&Value::Null));
        assert!(n.matches(&Value::str("131")));
        assert!(!n.matches(&Value::str("0800")));
        assert!(!n.matches(&Value::Null), "null might be the negated value");
    }

    #[test]
    fn cell_subsumption() {
        use PatternValue::*;
        let one = Const(Value::int(1));
        let two = Const(Value::int(2));
        let n1 = Neq(Value::int(1));
        assert!(one.subsumed_by(&Wildcard));
        assert!(one.subsumed_by(&one));
        assert!(!one.subsumed_by(&two));
        assert!(two.subsumed_by(&n1));
        assert!(!one.subsumed_by(&n1));
        assert!(n1.subsumed_by(&Wildcard));
        assert!(n1.subsumed_by(&n1));
        assert!(!Wildcard.subsumed_by(&one));
    }

    #[test]
    fn pattern_tuple_matching_example3() {
        // tp3[type, AC] = (1, ≠0800) from eR ϕ3 of the paper (Example 3).
        let tp = PatternTuple::new(vec![
            (a(0), PatternValue::Const(Value::int(1))),
            (a(1), PatternValue::Neq(Value::str("0800"))),
        ]);
        assert!(tp.matches(&tuple![1, "020"]));
        assert!(!tp.matches(&tuple![2, "020"]));
        assert!(!tp.matches(&tuple![1, "0800"]));
        assert!(PatternTuple::empty().matches(&tuple![1, "0800"]));
    }

    #[test]
    fn normalization_drops_wildcards() {
        let tp = PatternTuple::new(vec![
            (a(0), PatternValue::Wildcard),
            (a(1), PatternValue::Const(Value::int(2))),
        ]);
        assert!(!tp.is_normalized());
        let n = tp.normalize();
        assert!(n.is_normalized());
        assert_eq!(n.len(), 1);
        // equivalence on a few tuples
        for t in [tuple![0, 2], tuple![5, 2], tuple![5, 3]] {
            assert_eq!(tp.matches(&t), n.matches(&t));
        }
    }

    #[test]
    fn classification() {
        let concrete = PatternTuple::new(vec![(a(0), PatternValue::Const(Value::int(1)))]);
        assert!(concrete.is_concrete() && concrete.is_positive());
        let pos = PatternTuple::new(vec![(a(0), PatternValue::Wildcard)]);
        assert!(!pos.is_concrete());
        assert!(pos.is_positive());
        let neg = PatternTuple::new(vec![(a(0), PatternValue::Neq(Value::int(1)))]);
        assert!(!neg.is_positive());
    }

    #[test]
    fn refinement_overrides_and_appends() {
        let tp = PatternTuple::new(vec![(a(0), PatternValue::Wildcard)]);
        let r = tp.refined_with(&[
            (a(0), PatternValue::Const(Value::int(1))),
            (a(2), PatternValue::Const(Value::int(3))),
        ]);
        assert_eq!(r.cell(a(0)), Some(&PatternValue::Const(Value::int(1))));
        assert_eq!(r.cell(a(2)), Some(&PatternValue::Const(Value::int(3))));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn instantiation_from_tuple() {
        let tp = PatternTuple::new(vec![
            (a(0), PatternValue::Wildcard),
            (a(1), PatternValue::Neq(Value::int(9))),
        ]);
        let t = tuple!["x", 4];
        let inst = tp.instantiate_from(&t);
        assert!(inst.is_concrete());
        assert!(inst.matches(&t));
        assert!(!inst.matches(&tuple!["x", 5]));
    }

    #[test]
    fn tuple_subsumption() {
        let narrow = PatternTuple::new(vec![
            (a(0), PatternValue::Const(Value::int(1))),
            (a(1), PatternValue::Const(Value::int(2))),
        ]);
        let wide = PatternTuple::new(vec![(a(0), PatternValue::Const(Value::int(1)))]);
        assert!(narrow.subsumed_by(&wide));
        assert!(!wide.subsumed_by(&narrow));
        assert!(narrow.subsumed_by(&PatternTuple::empty()));
    }

    #[test]
    fn tableau_marking() {
        let t1 = PatternTuple::new(vec![(a(0), PatternValue::Const(Value::int(1)))]);
        let t2 = PatternTuple::new(vec![(a(0), PatternValue::Const(Value::int(2)))]);
        let tab: Tableau = [t1, t2].into_iter().collect();
        assert_eq!(tab.len(), 2);
        assert!(tab.marks(&tuple![1]));
        assert!(tab.marks(&tuple![2]));
        assert!(!tab.marks(&tuple![3]));
        assert!(tab.matching_row(&tuple![2]).is_some());
        assert!(tab.is_concrete());
        assert!(tab.is_positive());
        assert!(!Tableau::empty().marks(&tuple![1]));
    }

    #[test]
    fn render_with_schema() {
        let schema = Schema::new("R", ["type", "AC"]).unwrap();
        let tp = PatternTuple::new(vec![
            (a(0), PatternValue::Const(Value::int(1))),
            (a(1), PatternValue::Neq(Value::str("0800"))),
        ]);
        assert_eq!(tp.render(&schema), "[type=1, AC≠0800]");
        assert_eq!(PatternTuple::empty().render(&schema), "()");
    }
}
