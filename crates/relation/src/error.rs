//! Error types shared by the relational substrate.

use std::fmt;

/// Errors raised while constructing schemas, tuples or relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A schema exceeded [`crate::MAX_ATTRS`] attributes.
    SchemaTooLarge {
        /// Schema name.
        schema: String,
        /// Offending attribute count.
        attrs: usize,
    },
    /// The same attribute name occurred twice in one schema.
    DuplicateAttr {
        /// Schema name.
        schema: String,
        /// The duplicated attribute name.
        attr: String,
    },
    /// A named attribute does not exist in the schema.
    UnknownAttr {
        /// Schema name.
        schema: String,
        /// The attribute that was requested.
        attr: String,
    },
    /// A tuple's arity does not match its schema.
    ArityMismatch {
        /// Schema name.
        schema: String,
        /// Expected number of cells.
        expected: usize,
        /// Number of cells provided.
        got: usize,
    },
    /// A delta referenced a row id outside the relation.
    RowOutOfRange {
        /// Schema name.
        schema: String,
        /// The offending row id.
        row: u32,
        /// Number of rows in the relation.
        len: usize,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::SchemaTooLarge { schema, attrs } => write!(
                f,
                "schema `{schema}` has {attrs} attributes; at most {} are supported",
                crate::MAX_ATTRS
            ),
            RelationError::DuplicateAttr { schema, attr } => {
                write!(f, "schema `{schema}` declares attribute `{attr}` twice")
            }
            RelationError::UnknownAttr { schema, attr } => {
                write!(f, "schema `{schema}` has no attribute named `{attr}`")
            }
            RelationError::ArityMismatch {
                schema,
                expected,
                got,
            } => write!(
                f,
                "tuple arity {got} does not match schema `{schema}` (expected {expected})"
            ),
            RelationError::RowOutOfRange { schema, row, len } => {
                write!(f, "row {row} is out of range for `{schema}` ({len} row(s))")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RelationError::UnknownAttr {
            schema: "R".into(),
            attr: "zip".into(),
        };
        assert_eq!(e.to_string(), "schema `R` has no attribute named `zip`");
        let e = RelationError::ArityMismatch {
            schema: "R".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("arity 2"));
        let e = RelationError::SchemaTooLarge {
            schema: "R".into(),
            attrs: 99,
        };
        assert!(e.to_string().contains("99"));
        let e = RelationError::DuplicateAttr {
            schema: "R".into(),
            attr: "a".into(),
        };
        assert!(e.to_string().contains("twice"));
        let e = RelationError::RowOutOfRange {
            schema: "R".into(),
            row: 7,
            len: 3,
        };
        assert!(e.to_string().contains("row 7"));
    }
}
