//! Encoding several master relations as one (Sect. 2, Remark (3)).
//!
//! The paper simplifies its exposition to a single master relation and
//! notes: "given master schemas `Rm1, …, Rmk`, there exists a single
//! master schema `Rm` such that each instance `Dm` of `Rm`
//! characterizes an instance of `(Dm1, …, Dmk)`. Here `Rm` has a
//! special attribute `id` such that `σ_{id=i}(Rm)` yields `Dmi`."
//! This module implements exactly that encoding, so rule sets written
//! against several master sources (a customer file plus a product
//! catalog, say) can run on the single-relation engine: prefix each
//! source's rules' master attributes with its source name and add an
//! `id` pattern to the key through a constant column.

use std::sync::Arc;

use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// The reserved selector attribute.
pub const MASTER_ID_ATTR: &str = "__master_id";

/// Combine named master relations into one relation over the union
/// schema: `__master_id` first, then each source's attributes prefixed
/// with `"{source}."`. Every row holds its source's id and values, with
/// nulls in the other sources' columns — nulls never match a rule key,
/// so cross-source confusion is impossible by construction.
pub fn combine_masters(sources: &[(&str, &Relation)]) -> Result<Relation, RelationError> {
    let mut attrs: Vec<String> = vec![MASTER_ID_ATTR.to_string()];
    for (name, rel) in sources {
        for a in rel.schema().attr_names() {
            attrs.push(format!("{name}.{a}"));
        }
    }
    let schema: Arc<Schema> = Schema::new("Rm*", attrs)?;
    let mut out = Relation::empty(schema.clone());
    let mut offset = 1usize; // column 0 is the id
    for (name, rel) in sources {
        for t in rel.iter() {
            let mut row = Tuple::nulls(schema.len());
            row.set(schema.attr_or_err(MASTER_ID_ATTR)?, Value::str(*name));
            for (i, v) in t.values().iter().enumerate() {
                row.set(crate::schema::AttrId((offset + i) as u16), *v);
            }
            out.push(row)?;
        }
        offset += rel.schema().len();
    }
    Ok(out)
}

/// `σ_{id=source}(Rm*)`: recover one source's rows, projected back onto
/// its own schema.
pub fn select_master(
    combined: &Relation,
    source: &str,
    original: &Arc<Schema>,
) -> Result<Relation, RelationError> {
    let id = combined.schema().attr_or_err(MASTER_ID_ATTR)?;
    let cols: Vec<crate::schema::AttrId> = original
        .attr_names()
        .map(|a| combined.schema().attr_or_err(&format!("{source}.{a}")))
        .collect::<Result<_, _>>()?;
    let mut out = Relation::empty(original.clone());
    let wanted = Value::str(source);
    for t in combined.iter() {
        if t.get(id) == &wanted {
            out.push(Tuple::new(t.project(&cols)))?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn sources() -> (Arc<Schema>, Relation, Arc<Schema>, Relation) {
        let people = Schema::new("People", ["name", "zip"]).unwrap();
        let dp = Relation::new(
            people.clone(),
            vec![tuple!["Brady", "EH7"], tuple!["Smith", "NW1"]],
        )
        .unwrap();
        let items = Schema::new("Items", ["sku", "label"]).unwrap();
        let di = Relation::new(items.clone(), vec![tuple!["S1", "CD"]]).unwrap();
        (people, dp, items, di)
    }

    #[test]
    fn union_schema_and_row_placement() {
        let (_, dp, _, di) = sources();
        let combined = combine_masters(&[("people", &dp), ("items", &di)]).unwrap();
        assert_eq!(combined.schema().len(), 1 + 2 + 2);
        assert_eq!(combined.len(), 3);
        let id = combined.schema().attr(MASTER_ID_ATTR).unwrap();
        let zip = combined.schema().attr("people.zip").unwrap();
        let sku = combined.schema().attr("items.sku").unwrap();
        // person rows: own columns set, item columns null
        assert_eq!(combined.tuple(0).get(id), &Value::str("people"));
        assert_eq!(combined.tuple(0).get(zip), &Value::str("EH7"));
        assert!(combined.tuple(0).get(sku).is_null());
        // item rows: the reverse
        assert_eq!(combined.tuple(2).get(id), &Value::str("items"));
        assert!(combined.tuple(2).get(zip).is_null());
        assert_eq!(combined.tuple(2).get(sku), &Value::str("S1"));
    }

    #[test]
    fn selection_recovers_each_source() {
        let (people, dp, items, di) = sources();
        let combined = combine_masters(&[("people", &dp), ("items", &di)]).unwrap();
        let back_p = select_master(&combined, "people", &people).unwrap();
        assert_eq!(back_p.len(), dp.len());
        for i in 0..dp.len() {
            assert_eq!(back_p.tuple(i), dp.tuple(i));
        }
        let back_i = select_master(&combined, "items", &items).unwrap();
        assert_eq!(back_i.tuple(0), di.tuple(0));
    }

    #[test]
    fn rules_on_the_combined_master_cannot_cross_sources() {
        // A key probe against a person's column never matches an item
        // row (its person columns are null).
        let (_, dp, _, di) = sources();
        let combined = combine_masters(&[("people", &dp), ("items", &di)]).unwrap();
        let index = crate::index::MasterIndex::new(Arc::new(combined.clone()));
        let zip = combined.schema().attr("people.zip").unwrap();
        let hits = index.matches(&[zip], &[Value::str("EH7")]);
        assert_eq!(hits.len(), 1);
        assert_eq!(
            combined
                .tuple(hits[0] as usize)
                .get(combined.schema().attr(MASTER_ID_ATTR).unwrap()),
            &Value::str("people")
        );
    }

    #[test]
    fn schema_width_is_enforced() {
        // combining beyond 64 attributes fails loudly
        let wide = Schema::new("W", (0..40).map(|i| format!("a{i}")).collect::<Vec<_>>()).unwrap();
        let rel = Relation::empty(wide);
        let err = combine_masters(&[("x", &rel), ("y", &rel)]).unwrap_err();
        assert!(matches!(err, RelationError::SchemaTooLarge { .. }));
    }
}
