//! Interned string symbols.
//!
//! Every string cell value in the workspace is a [`Sym`]: a `u32` id
//! into a process-wide [`Interner`]. Interning makes [`crate::Value`]
//! a 16-byte `Copy` word, and turns the hot-path operations of rule
//! application — equality of `t[X]` against `tm[Xm]`, hashing of
//! projected key lists, copying master values into input tuples — into
//! integer operations instead of `Arc` traffic and byte comparisons.
//!
//! # Lifetime rules
//!
//! The interner is append-only and leaks: a string, once interned,
//! stays resolvable for the life of the process, which is what makes
//! [`Sym::as_str`] return `&'static str` with no guard object. This is
//! the right trade for the monitoring workload (master data and the
//! attribute domains are bounded; input strings recur), but it means a
//! `Sym` should not be minted for unbounded garbage — corrupt
//! free-text that will never be compared again is still better kept
//! out of [`crate::Value`] construction loops than interned
//! gratuitously. Long-running deployments ingesting adversarially
//! unique strings should watch [`Interner::len`] (on
//! [`Interner::global`]) as a growth metric and cap or reject
//! free-text fields upstream; a scoped, evictable interner is the
//! planned escape hatch if a workload ever needs one.
//!
//! # Concurrency
//!
//! `intern` takes a sharded lock only on the *miss* path; repeat
//! interning of a known string takes a shard read lock. `resolve` is
//! lock-free: symbol ids index an append-only table of chunks whose
//! slots are published with release/acquire atomics, so readers never
//! block writers and vice versa.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

use crate::hashers::{FxHashMap, FxHasher};

/// Number of lock shards for the string → id map (power of two).
const SHARDS: usize = 16;

/// log2 of the first chunk's capacity.
const CHUNK_SHIFT: u32 = 10;

/// Number of resolution chunks; chunk `k` holds `1024 << k` slots.
const CHUNKS: usize = 22;

/// Largest id representable by the chunk table.
const MAX_SYMS: u64 = (1u64 << (CHUNK_SHIFT + CHUNKS as u32)) - (1 << CHUNK_SHIFT);

/// An interned string: a dense `u32` id in the global [`Interner`].
///
/// Equality and hashing are O(1) on the id — two `Sym`s are equal iff
/// their strings are equal, because the interner deduplicates.
/// Ordering compares the *resolved strings*, so sorting symbols sorts
/// their text (matching the pre-interning semantics of
/// [`crate::Value`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Intern `s` in the global interner.
    #[inline]
    pub fn intern(s: &str) -> Sym {
        Interner::global().intern(s)
    }

    /// Intern an owned string (reuses the allocation on a miss).
    #[inline]
    pub fn intern_owned(s: String) -> Sym {
        Interner::global().intern_owned(s)
    }

    /// The interned text. Lock-free; never fails for a `Sym` obtained
    /// from [`Sym::intern`].
    #[inline]
    pub fn as_str(self) -> &'static str {
        Interner::global().resolve(self)
    }

    /// The raw id (dense, starting at 0, in interning order).
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::intern_owned(s)
    }
}

/// The append-only, process-wide string interner backing [`Sym`].
pub struct Interner {
    /// string → id, sharded by string hash. Keys borrow the leaked
    /// strings owned by the chunk table.
    shards: [RwLock<FxHashMap<&'static str, u32>>; SHARDS],
    /// id → string. Chunk `k` is a lazily allocated array of
    /// `1024 << k` slots; a slot holds a pointer to a leaked `String`.
    chunks: [AtomicPtr<AtomicPtr<String>>; CHUNKS],
    /// Next id to hand out.
    next: AtomicU64,
}

impl Interner {
    fn new() -> Interner {
        Interner {
            shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            chunks: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            next: AtomicU64::new(0),
        }
    }

    /// The process-wide interner used by [`Sym`] and [`crate::Value`].
    pub fn global() -> &'static Interner {
        static GLOBAL: OnceLock<Interner> = OnceLock::new();
        GLOBAL.get_or_init(Interner::new)
    }

    fn shard_of(s: &str) -> usize {
        let mut h = FxHasher::default();
        s.hash(&mut h);
        h.finish() as usize & (SHARDS - 1)
    }

    /// Intern by reference, copying the string only on a miss.
    pub fn intern(&self, s: &str) -> Sym {
        let shard = &self.shards[Self::shard_of(s)];
        if let Some(&id) = shard.read().expect("interner poisoned").get(s) {
            return Sym(id);
        }
        self.intern_slow(shard, || s.to_owned())
    }

    /// Intern an owned string, reusing its allocation on a miss.
    pub fn intern_owned(&self, s: String) -> Sym {
        let shard = &self.shards[Self::shard_of(&s)];
        if let Some(&id) = shard.read().expect("interner poisoned").get(s.as_str()) {
            return Sym(id);
        }
        self.intern_slow(shard, move || s)
    }

    fn intern_slow(
        &self,
        shard: &RwLock<FxHashMap<&'static str, u32>>,
        make: impl FnOnce() -> String,
    ) -> Sym {
        let owned = make();
        let mut w = shard.write().expect("interner poisoned");
        // Another thread may have interned the same string between our
        // read probe and taking the write lock.
        if let Some(&id) = w.get(owned.as_str()) {
            return Sym(id);
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(id < MAX_SYMS, "interner capacity exhausted");
        let id = id as u32;
        let leaked: &'static String = Box::leak(Box::new(owned));
        // Publish the slot before the id escapes: the release store
        // pairs with the acquire load in `resolve`.
        self.slot(id)
            .store(leaked as *const String as *mut String, Ordering::Release);
        w.insert(leaked.as_str(), id);
        Sym(id)
    }

    /// The text of `sym`. Lock-free.
    ///
    /// # Panics
    /// Panics on an id never returned by this interner (only possible
    /// by forging a `Sym`).
    pub fn resolve(&self, sym: Sym) -> &'static str {
        let (chunk_idx, idx) = Self::locate(sym.0);
        let chunk = self.chunks[chunk_idx].load(Ordering::Acquire);
        assert!(!chunk.is_null(), "unknown symbol id {}", sym.0);
        // SAFETY: a non-null chunk is a live array of `1024 << k`
        // slots, and `locate` bounds `idx` by exactly that capacity.
        let p = unsafe { &*chunk.add(idx) }.load(Ordering::Acquire);
        assert!(!p.is_null(), "unknown symbol id {}", sym.0);
        // SAFETY: slots only ever hold pointers to leaked (immortal,
        // immutable) strings, published with release ordering.
        unsafe { (*p).as_str() }
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed) as usize
    }

    /// `true` before the first interning.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map an id to (chunk index, index within chunk).
    #[inline]
    fn locate(id: u32) -> (usize, usize) {
        let slot = id as u64 + (1 << CHUNK_SHIFT);
        let chunk_idx = (63 - slot.leading_zeros() - CHUNK_SHIFT) as usize;
        let idx = (slot - (1u64 << (chunk_idx as u32 + CHUNK_SHIFT))) as usize;
        (chunk_idx, idx)
    }

    /// The slot for `id`, allocating its chunk if needed.
    fn slot(&self, id: u32) -> &AtomicPtr<String> {
        let (chunk_idx, idx) = Self::locate(id);
        let head = &self.chunks[chunk_idx];
        let mut chunk = head.load(Ordering::Acquire);
        if chunk.is_null() {
            let cap = 1usize << (chunk_idx as u32 + CHUNK_SHIFT);
            let fresh: Box<[AtomicPtr<String>]> =
                (0..cap).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
            let fresh = Box::into_raw(fresh) as *mut AtomicPtr<String>;
            match head.compare_exchange(ptr::null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => chunk = fresh,
                Err(winner) => {
                    // SAFETY: `fresh` was just created by Box::into_raw
                    // with length `cap` and lost the race unpublished.
                    drop(unsafe { Box::from_raw(ptr::slice_from_raw_parts_mut(fresh, cap)) });
                    chunk = winner;
                }
            }
        }
        // SAFETY: `chunk` is a live array of `1024 << chunk_idx` slots
        // and `locate` bounds `idx` by that capacity.
        unsafe { &*chunk.add(idx) }
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let s = Sym::intern("EH7 4AH");
        assert_eq!(s.as_str(), "EH7 4AH");
        assert_eq!(Sym::intern_owned("EH7 4AH".to_owned()).as_str(), "EH7 4AH");
        assert_eq!(Sym::intern("").as_str(), "");
    }

    #[test]
    fn dedup_same_string_same_sym() {
        let a = Sym::intern("edinburgh");
        let b = Sym::intern("edinburgh");
        let c = Sym::intern_owned(String::from("edinburgh"));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, Sym::intern("glasgow"));
    }

    #[test]
    fn ordering_follows_strings_not_ids() {
        // interning order deliberately inverted relative to text order
        let z = Sym::intern("zzz-order-test");
        let a = Sym::intern("aaa-order-test");
        assert!(a < z);
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_and_debug_resolve() {
        let s = Sym::intern("Edi");
        assert_eq!(format!("{s}"), "Edi");
        assert_eq!(format!("{s:?}"), "\"Edi\"");
    }

    #[test]
    fn cross_thread_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|i| {
                            // every thread interns the same 100 strings,
                            // in a thread-dependent order
                            let i = (i + 13 * t) % 100;
                            (i, Sym::intern(&format!("xthread-{i}")))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<(i32, Sym)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for per_thread in &results {
            for &(i, sym) in per_thread {
                assert_eq!(sym.as_str(), format!("xthread-{i}"));
                // all threads agree on the id for a given string
                let reference = results[0].iter().find(|(j, _)| *j == i).unwrap().1;
                assert_eq!(sym, reference);
            }
        }
    }

    #[test]
    fn interner_len_grows_monotonically() {
        let before = Interner::global().len();
        let _ = Sym::intern("len-probe-one");
        let _ = Sym::intern("len-probe-two");
        let _ = Sym::intern("len-probe-one");
        let after = Interner::global().len();
        assert!(after >= before + 2);
        assert!(!Interner::global().is_empty());
    }

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(Interner::locate(0), (0, 0));
        assert_eq!(Interner::locate(1023), (0, 1023));
        assert_eq!(Interner::locate(1024), (1, 0));
        assert_eq!(Interner::locate(3071), (1, 2047));
        assert_eq!(Interner::locate(3072), (2, 0));
        // every id maps within its chunk's capacity
        for id in [0u32, 1, 1023, 1024, 4095, 1 << 20, u32::MAX / 2] {
            let (k, i) = Interner::locate(id);
            assert!(k < CHUNKS);
            assert!(i < (1usize << (k as u32 + CHUNK_SHIFT)));
        }
    }

    #[test]
    fn sym_is_small_and_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Sym>();
        assert_eq!(std::mem::size_of::<Sym>(), 4);
        assert_eq!(std::mem::size_of::<Option<Sym>>(), 8);
    }
}
