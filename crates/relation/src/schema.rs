//! Relation schemas and attribute identifiers.

use std::fmt;
use std::sync::Arc;

use crate::error::RelationError;
use crate::hashers::FxHashMap;

/// Maximum number of attributes in a schema.
///
/// Chosen so an attribute set fits in a single `u64` word
/// ([`crate::AttrSet`]); the paper's evaluation schemas have 19 and 12
/// attributes.
pub const MAX_ATTRS: usize = 64;

/// Positional identifier of an attribute within one [`Schema`].
///
/// `AttrId`s from different schemas must not be mixed; the rule layer
/// keeps `R`-side and `Rm`-side ids in separate fields for this reason.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The attribute position as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A named, ordered list of attributes.
///
/// Schemas are cheap to share (`Arc<Schema>`), immutable after
/// construction, and resolve attribute names to [`AttrId`]s in O(1).
#[derive(Debug, Clone)]
pub struct Schema {
    name: String,
    attrs: Vec<String>,
    by_name: FxHashMap<String, AttrId>,
}

impl Schema {
    /// Build a schema from a name and attribute names.
    ///
    /// Fails if the attribute count exceeds [`MAX_ATTRS`] or a name is
    /// duplicated.
    pub fn new<S, I>(name: impl Into<String>, attrs: I) -> Result<Arc<Schema>, RelationError>
    where
        S: Into<String>,
        I: IntoIterator<Item = S>,
    {
        let name = name.into();
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        if attrs.len() > MAX_ATTRS {
            return Err(RelationError::SchemaTooLarge {
                schema: name,
                attrs: attrs.len(),
            });
        }
        let mut by_name = FxHashMap::default();
        for (i, a) in attrs.iter().enumerate() {
            if by_name.insert(a.clone(), AttrId(i as u16)).is_some() {
                return Err(RelationError::DuplicateAttr {
                    schema: name,
                    attr: a.clone(),
                });
            }
        }
        Ok(Arc::new(Schema {
            name,
            attrs,
            by_name,
        }))
    }

    /// The schema's name (`R`, `Rm`, `HOSP`, ...).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` iff the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Resolve an attribute name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Resolve an attribute name, failing with a descriptive error.
    pub fn attr_or_err(&self, name: &str) -> Result<AttrId, RelationError> {
        self.attr(name).ok_or_else(|| RelationError::UnknownAttr {
            schema: self.name.clone(),
            attr: name.to_string(),
        })
    }

    /// Resolve several attribute names at once.
    pub fn attrs_or_err(&self, names: &[&str]) -> Result<Vec<AttrId>, RelationError> {
        names.iter().map(|n| self.attr_or_err(n)).collect()
    }

    /// Name of an attribute id.
    ///
    /// # Panics
    /// Panics if `id` is out of range for this schema.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()]
    }

    /// All attribute ids, in schema order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attrs.len() as u16).map(AttrId)
    }

    /// All attribute names, in schema order.
    pub fn attr_names(&self) -> impl Iterator<Item = &str> {
        self.attrs.iter().map(String::as_str)
    }

    /// Render a list of attribute ids as `[a, b, c]` for diagnostics.
    pub fn render_attrs(&self, ids: &[AttrId]) -> String {
        let names: Vec<&str> = ids.iter().map(|&id| self.attr_name(id)).collect();
        format!("[{}]", names.join(", "))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attrs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_resolution() {
        let s = Schema::new("R", ["fn", "ln", "zip"]).unwrap();
        assert_eq!(s.name(), "R");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.attr("ln"), Some(AttrId(1)));
        assert_eq!(s.attr("nope"), None);
        assert_eq!(s.attr_name(AttrId(2)), "zip");
        assert_eq!(
            s.attr_ids().collect::<Vec<_>>(),
            vec![AttrId(0), AttrId(1), AttrId(2)]
        );
        assert_eq!(s.attr_names().collect::<Vec<_>>(), vec!["fn", "ln", "zip"]);
    }

    #[test]
    fn duplicate_attr_rejected() {
        let err = Schema::new("R", ["a", "b", "a"]).unwrap_err();
        assert_eq!(
            err,
            RelationError::DuplicateAttr {
                schema: "R".into(),
                attr: "a".into()
            }
        );
    }

    #[test]
    fn oversized_schema_rejected() {
        let names: Vec<String> = (0..65).map(|i| format!("a{i}")).collect();
        let err = Schema::new("big", names).unwrap_err();
        assert!(matches!(
            err,
            RelationError::SchemaTooLarge { attrs: 65, .. }
        ));
    }

    #[test]
    fn max_size_schema_accepted() {
        let names: Vec<String> = (0..64).map(|i| format!("a{i}")).collect();
        assert!(Schema::new("big", names).is_ok());
    }

    #[test]
    fn attr_or_err_reports_schema() {
        let s = Schema::new("R", ["a"]).unwrap();
        let err = s.attr_or_err("b").unwrap_err();
        assert!(err.to_string().contains("`R`"));
        assert_eq!(s.attrs_or_err(&["a"]).unwrap(), vec![AttrId(0)]);
        assert!(s.attrs_or_err(&["a", "b"]).is_err());
    }

    #[test]
    fn display_and_render() {
        let s = Schema::new("R", ["x", "y"]).unwrap();
        assert_eq!(s.to_string(), "R(x, y)");
        assert_eq!(s.render_attrs(&[AttrId(1), AttrId(0)]), "[y, x]");
    }
}
