//! Hash indexes over master data.
//!
//! Rule application must find master tuples `tm` with `tm[Xm] = t[X]`
//! (Sect. 2). A `TransFix` run probes many different key lists `Xm`, so
//! [`MasterIndex`] lazily builds and caches one [`KeyIndex`] per
//! distinct attribute list. The paper's complexity analysis of
//! `TransFix` ("it takes constant time to check whether there exists a
//! master tuple that is applicable, by using a hash table that stores
//! `tm[Xm]` as a key") is realized here.

use std::sync::{Arc, RwLock};

use crate::hashers::FxHashMap;
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;

/// An index of a relation on one attribute list.
///
/// Rows whose key contains a null are not indexed: a null never agrees
/// with any probe value (see [`Value::agrees_with`]).
#[derive(Debug)]
pub struct KeyIndex {
    key: Vec<AttrId>,
    map: FxHashMap<Box<[Value]>, Vec<u32>>,
}

impl KeyIndex {
    /// Build the index eagerly.
    pub fn build(rel: &Relation, key: &[AttrId]) -> KeyIndex {
        let mut map: FxHashMap<Box<[Value]>, Vec<u32>> = FxHashMap::default();
        'rows: for (i, t) in rel.iter().enumerate() {
            let mut k = Vec::with_capacity(key.len());
            for &a in key {
                let v = *t.get(a);
                if v.is_null() {
                    continue 'rows;
                }
                k.push(v);
            }
            map.entry(k.into_boxed_slice()).or_default().push(i as u32);
        }
        KeyIndex {
            key: key.to_vec(),
            map,
        }
    }

    /// The indexed attribute list.
    pub fn key(&self) -> &[AttrId] {
        &self.key
    }

    /// Row ids whose key equals `probe` (empty if the probe contains a
    /// null or has no match).
    pub fn lookup(&self, probe: &[Value]) -> &[u32] {
        debug_assert_eq!(probe.len(), self.key.len());
        if probe.iter().any(Value::is_null) {
            return &[];
        }
        self.map.get(probe).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A master relation bundled with a cache of [`KeyIndex`]es.
///
/// Cloning is cheap (`Arc` inside); the cache is shared and grows
/// monotonically as new key lists are probed.
#[derive(Clone, Debug)]
pub struct MasterIndex {
    rel: Arc<Relation>,
    cache: Arc<RwLock<FxHashMap<Vec<AttrId>, Arc<KeyIndex>>>>,
}

impl MasterIndex {
    /// Wrap a master relation.
    pub fn new(rel: Arc<Relation>) -> MasterIndex {
        MasterIndex {
            rel,
            cache: Arc::new(RwLock::new(FxHashMap::default())),
        }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Arc<Relation> {
        &self.rel
    }

    /// Number of master tuples.
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// `true` iff the master relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Get (or lazily build) the index for `key`.
    pub fn index_for(&self, key: &[AttrId]) -> Arc<KeyIndex> {
        if let Some(idx) = self.cache.read().expect("index cache poisoned").get(key) {
            return idx.clone();
        }
        let built = Arc::new(KeyIndex::build(&self.rel, key));
        let mut w = self.cache.write().expect("index cache poisoned");
        // Another thread may have raced us; keep the first build.
        w.entry(key.to_vec()).or_insert(built).clone()
    }

    /// Master tuples `tm` with `tm[key] = probe` (by row id).
    pub fn matches(&self, key: &[AttrId], probe: &[Value]) -> Vec<u32> {
        self.index_for(key).lookup(probe).to_vec()
    }

    /// Master tuples matching the projection `t[from]` on master
    /// attributes `to` — the `t[X] = tm[Xm]` probe of rule application.
    pub fn matches_projection(&self, t: &Tuple, from: &[AttrId], to: &[AttrId]) -> Vec<u32> {
        let probe = t.project(from);
        self.matches(to, &probe)
    }

    /// Resolve a row id.
    pub fn tuple(&self, id: u32) -> &Tuple {
        self.rel.tuple(id as usize)
    }

    /// Number of cached indexes (diagnostics).
    pub fn cached_indexes(&self) -> usize {
        self.cache.read().expect("index cache poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;

    fn master() -> Arc<Relation> {
        let s = Schema::new("Rm", ["zip", "ac", "city"]).unwrap();
        Arc::new(
            Relation::new(
                s,
                vec![
                    tuple!["EH7 4AH", "131", "Edi"],
                    tuple!["WC1H 9SE", "020", "Ldn"],
                    tuple!["EH7 4AH", "131", "Edi"], // duplicate key
                    tuple![Value::Null, "999", "Gla"], // null key: unindexed
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn lookup_by_single_attr() {
        let idx = KeyIndex::build(&master(), &[AttrId(0)]);
        assert_eq!(idx.lookup(&[Value::str("EH7 4AH")]), &[0, 2]);
        assert_eq!(idx.lookup(&[Value::str("nope")]), &[] as &[u32]);
        assert_eq!(idx.lookup(&[Value::Null]), &[] as &[u32]);
        assert_eq!(idx.key(), &[AttrId(0)]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn composite_keys() {
        let idx = KeyIndex::build(&master(), &[AttrId(1), AttrId(2)]);
        assert_eq!(idx.lookup(&[Value::str("020"), Value::str("Ldn")]), &[1]);
        assert_eq!(
            idx.lookup(&[Value::str("020"), Value::str("Edi")]),
            &[] as &[u32]
        );
        // the null-zip row IS indexed here because its ac/city are non-null
        assert_eq!(idx.lookup(&[Value::str("999"), Value::str("Gla")]), &[3]);
    }

    #[test]
    fn master_index_caches() {
        let m = MasterIndex::new(master());
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.cached_indexes(), 0);
        let _ = m.index_for(&[AttrId(0)]);
        let _ = m.index_for(&[AttrId(0)]);
        let _ = m.index_for(&[AttrId(1)]);
        assert_eq!(m.cached_indexes(), 2);
        assert_eq!(m.matches(&[AttrId(1)], &[Value::str("131")]), vec![0, 2]);
    }

    #[test]
    fn projection_probe() {
        // input tuple with phn in position 0 matched against master ac in
        // position 1 — attribute lists on both sides differ.
        let m = MasterIndex::new(master());
        let t = tuple!["131", "ignored"];
        let hits = m.matches_projection(&t, &[AttrId(0)], &[AttrId(1)]);
        assert_eq!(hits, vec![0, 2]);
        assert_eq!(m.tuple(hits[0]).get(AttrId(2)), &Value::str("Edi"));
    }

    #[test]
    fn null_probe_finds_nothing() {
        let m = MasterIndex::new(master());
        let t = tuple![Value::Null, "x"];
        assert!(m
            .matches_projection(&t, &[AttrId(0)], &[AttrId(0)])
            .is_empty());
    }
}
