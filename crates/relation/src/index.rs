//! Hash indexes over master data.
//!
//! Rule application must find master tuples `tm` with `tm[Xm] = t[X]`
//! (Sect. 2). A `TransFix` run probes many different key lists `Xm`, so
//! [`MasterIndex`] lazily builds and caches one [`KeyIndex`] per
//! distinct attribute list. The paper's complexity analysis of
//! `TransFix` ("it takes constant time to check whether there exists a
//! master tuple that is applicable, by using a hash table that stores
//! `tm[Xm]` as a key") is realized here.
//!
//! Two probe disciplines coexist:
//!
//! * the convenience path ([`MasterIndex::matches_projection`]) hashes
//!   the key list, takes the cache's read lock, and returns an owned
//!   `Vec<u32>` — fine for one-off analyses;
//! * the compile-once-probe-many path: pin the [`Arc<KeyIndex>`]
//!   returned by [`MasterIndex::index_for`] once, then probe it through
//!   [`KeyIndex::lookup_projection`] with a caller-owned scratch buffer.
//!   Steady-state probes touch neither the lock nor the allocator and
//!   borrow the hit list straight out of the index. The compiled rule
//!   plans of `certainfix-rules` are built on this path.
//!
//! Index *builds* are single-flight: two workers racing on a cold key
//! list block on one [`OnceLock`] and share the one built index instead
//! of both paying for (and one discarding) a full build.
//!
//! # Live master data
//!
//! Master data is curated over time, so a [`MasterIndex`] is one
//! *generation* of an evolving lineage rather than a frozen singleton.
//! [`MasterIndex::apply_delta`] takes a [`MasterDelta`] (a batch of
//! inserts/updates/deletes) and returns the **next-generation**
//! snapshot; the receiver is never mutated, so probes pinned against an
//! older generation keep seeing exactly the rows they started with —
//! invalidation never blocks an in-flight probe. All generations of a
//! lineage share one slot cache whose entries are *generation-stamped*:
//! [`MasterIndex::index_for`] only reuses a slot stamped with its own
//! generation and restamps stale ones, so a delta invalidates every
//! affected [`KeyIndex`] without touching threads still probing the old
//! snapshot. Delete-free deltas go further and *patch* already-built
//! indexes in place of a rebuild (inserted rows append the largest row
//! ids; updated rows move between hit lists), which
//! [`MasterIndex::index_patches`] counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::error::RelationError;
use crate::hashers::FxHashMap;
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;

/// An index of a relation on one attribute list.
///
/// Rows whose key contains a null are not indexed: a null never agrees
/// with any probe value (see [`Value::agrees_with`]).
#[derive(Debug)]
pub struct KeyIndex {
    key: Vec<AttrId>,
    /// Hit lists are refcounted slices so consumers that must hold a
    /// list beyond the borrow (the block-probe layer's shared spans)
    /// can clone the refcount instead of copying the rows — one atomic
    /// bump per distinct key, whatever the list's fan-out.
    map: HitMap,
}

/// The hit-list map behind a [`KeyIndex`], specialized by key width.
#[derive(Debug)]
enum HitMap {
    /// Single-attribute keys hash their injective
    /// [`Value::grouping_rank`] directly — no per-key heap slice and
    /// no slice hashing on the probe path.
    Rank(FxHashMap<u128, Arc<[u32]>>),
    /// Wider keys hash the boxed value slice.
    Slice(FxHashMap<Box<[Value]>, Arc<[u32]>>),
}

impl KeyIndex {
    /// Build the index eagerly.
    pub fn build(rel: &Relation, key: &[AttrId]) -> KeyIndex {
        let map = if key.len() == 1 {
            let mut rows: FxHashMap<u128, Vec<u32>> = FxHashMap::default();
            for (i, t) in rel.iter().enumerate() {
                let v = *t.get(key[0]);
                if !v.is_null() {
                    rows.entry(v.grouping_rank()).or_default().push(i as u32);
                }
            }
            HitMap::Rank(rows.into_iter().map(|(k, v)| (k, v.into())).collect())
        } else {
            let mut rows: FxHashMap<Box<[Value]>, Vec<u32>> = FxHashMap::default();
            'rows: for (i, t) in rel.iter().enumerate() {
                let mut k = Vec::with_capacity(key.len());
                for &a in key {
                    let v = *t.get(a);
                    if v.is_null() {
                        continue 'rows;
                    }
                    k.push(v);
                }
                rows.entry(k.into_boxed_slice()).or_default().push(i as u32);
            }
            HitMap::Slice(rows.into_iter().map(|(k, v)| (k, v.into())).collect())
        };
        KeyIndex {
            key: key.to_vec(),
            map,
        }
    }

    /// The indexed attribute list.
    pub fn key(&self) -> &[AttrId] {
        &self.key
    }

    /// Row ids whose key equals `probe` (empty if the probe contains a
    /// null or has no match).
    pub fn lookup(&self, probe: &[Value]) -> &[u32] {
        debug_assert_eq!(probe.len(), self.key.len());
        self.lookup_shared(probe).map_or(&[], |v| &v[..])
    }

    /// The refcounted hit list for `probe`, or `None` on a miss or a
    /// null probe value. Same rows as [`lookup`](Self::lookup); use
    /// this when the list must outlive the index borrow — cloning the
    /// `Arc` shares the rows without copying them.
    pub fn lookup_shared(&self, probe: &[Value]) -> Option<&Arc<[u32]>> {
        debug_assert_eq!(probe.len(), self.key.len());
        match &self.map {
            HitMap::Rank(m) => {
                let v = probe[0];
                if v.is_null() {
                    None
                } else {
                    m.get(&v.grouping_rank())
                }
            }
            HitMap::Slice(m) => {
                if probe.iter().any(Value::is_null) {
                    None
                } else {
                    m.get(probe)
                }
            }
        }
    }

    /// The `t[from] = tm[key]` probe of rule application, with a
    /// caller-owned scratch buffer: project `t[from]` into `probe`
    /// (cleared first) and look the projection up. Once `probe` has
    /// warmed to the widest key it is reused for, this path performs
    /// **zero heap allocations** and returns the hit list by borrow.
    pub fn lookup_projection(&self, t: &Tuple, from: &[AttrId], probe: &mut Vec<Value>) -> &[u32] {
        debug_assert_eq!(from.len(), self.key.len());
        probe.clear();
        probe.extend(from.iter().map(|&a| *t.get(a)));
        self.lookup(probe)
    }

    /// Rank-keyed variant of [`lookup_shared`](Self::lookup_shared)
    /// for single-attribute indexes, when the caller has already
    /// computed [`Value::grouping_rank`] (rank 0 is `Null`, which
    /// matches nothing). Panics on a wider index.
    pub fn lookup_rank_shared(&self, rank: u128) -> Option<&Arc<[u32]>> {
        match &self.map {
            HitMap::Rank(m) => {
                if rank == 0 {
                    None
                } else {
                    m.get(&rank)
                }
            }
            HitMap::Slice(_) => panic!("rank probes require a single-attribute index"),
        }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match &self.map {
            HitMap::Rank(m) => m.len(),
            HitMap::Slice(m) => m.len(),
        }
    }

    /// Length of the longest hit list (0 for an empty index) — the
    /// worst-case fan-out of one probe. Consumers that materialize hit
    /// lists (the block-probe arena) use this to decide whether
    /// prefetching pays or the list should stay on the borrow path.
    pub fn max_hit_len(&self) -> usize {
        match &self.map {
            HitMap::Rank(m) => m.values().map(|v| v.len()).max().unwrap_or(0),
            HitMap::Slice(m) => m.values().map(|v| v.len()).max().unwrap_or(0),
        }
    }

    /// A copy of this index brought up to `new_rel`, given that
    /// `new_rel` came out of `old_rel` through a **delete-free** delta:
    /// the rows in `updated` (deduplicated ids) changed in place and
    /// rows `old_rel.len()..new_rel.len()` were appended. Updated rows
    /// move between hit lists (sorted insertion keeps lists ascending),
    /// inserted rows append the new largest ids, and lists that empty
    /// out are dropped — the result is indistinguishable from a fresh
    /// [`KeyIndex::build`] on `new_rel`.
    fn patched(&self, old_rel: &Relation, new_rel: &Relation, updated: &[u32]) -> KeyIndex {
        fn add(rows: &mut Vec<u32>, id: u32) {
            if let Err(at) = rows.binary_search(&id) {
                rows.insert(at, id);
            }
        }
        fn del(rows: &mut Vec<u32>, id: u32) {
            if let Ok(at) = rows.binary_search(&id) {
                rows.remove(at);
            }
        }
        let map = match &self.map {
            HitMap::Rank(built) => {
                let a = self.key[0];
                let mut m: FxHashMap<u128, Vec<u32>> =
                    built.iter().map(|(k, v)| (*k, v.to_vec())).collect();
                for &r in updated {
                    let old = *old_rel.tuple(r as usize).get(a);
                    let new = *new_rel.tuple(r as usize).get(a);
                    if old == new {
                        continue;
                    }
                    if !old.is_null() {
                        if let Some(rows) = m.get_mut(&old.grouping_rank()) {
                            del(rows, r);
                        }
                    }
                    if !new.is_null() {
                        add(m.entry(new.grouping_rank()).or_default(), r);
                    }
                }
                for i in old_rel.len()..new_rel.len() {
                    let v = *new_rel.tuple(i).get(a);
                    if !v.is_null() {
                        m.entry(v.grouping_rank()).or_default().push(i as u32);
                    }
                }
                m.retain(|_, rows| !rows.is_empty());
                HitMap::Rank(m.into_iter().map(|(k, v)| (k, v.into())).collect())
            }
            HitMap::Slice(built) => {
                let project = |rel: &Relation, row: usize| -> Option<Box<[Value]>> {
                    let mut k = Vec::with_capacity(self.key.len());
                    for &a in &self.key {
                        let v = *rel.tuple(row).get(a);
                        if v.is_null() {
                            return None;
                        }
                        k.push(v);
                    }
                    Some(k.into_boxed_slice())
                };
                let mut m: FxHashMap<Box<[Value]>, Vec<u32>> =
                    built.iter().map(|(k, v)| (k.clone(), v.to_vec())).collect();
                for &r in updated {
                    let old = project(old_rel, r as usize);
                    let new = project(new_rel, r as usize);
                    if old == new {
                        continue;
                    }
                    if let Some(k) = old {
                        if let Some(rows) = m.get_mut(&k) {
                            del(rows, r);
                        }
                    }
                    if let Some(k) = new {
                        add(m.entry(k).or_default(), r);
                    }
                }
                for i in old_rel.len()..new_rel.len() {
                    if let Some(k) = project(new_rel, i) {
                        m.entry(k).or_default().push(i as u32);
                    }
                }
                m.retain(|_, rows| !rows.is_empty());
                HitMap::Slice(m.into_iter().map(|(k, v)| (k, v.into())).collect())
            }
        };
        KeyIndex {
            key: self.key.clone(),
            map,
        }
    }
}

/// A *factorised* index: a trie over key-prefix values.
///
/// Where a [`KeyIndex`] stores one flat hit list per full key, a
/// `KeyTrie` factorises the hit lists of the whole key-prefix family:
/// the node reached by descending values `v1 … vd` holds exactly the
/// row ids a `KeyIndex` over the first `d` key columns would return for
/// the probe `(v1 … vd)` — same ascending row order, same null
/// semantics (a row is inserted along its prefix path only while its
/// key values stay non-null, so a null at column `d` keeps the row out
/// of every node deeper than `d`).
///
/// Two probe disciplines benefit:
///
/// * **shared-prefix descent** ([`KeyTrie::cursor`]): a block of probes
///   sorted by key re-descends only the suffix that differs from the
///   previous probe, so wide keys with overlapping prefixes share the
///   partial lookups (the FDB-style factorised representation);
/// * **prefix lookups** ([`KeyTrie::lookup_prefix`]): the hits of any
///   key *prefix* come from one descent — no per-prefix sub-index
///   build.
///
/// Row ids are materialized per node, so memory is
/// `O(|key| · |rows|)` ids in the worst case — fine for the key widths
/// editing rules use (the compiled plans build one trie per distinct
/// rule key list).
#[derive(Debug)]
pub struct KeyTrie {
    key: Vec<AttrId>,
    root: TrieNode,
}

#[derive(Debug, Default)]
struct TrieNode {
    rows: Vec<u32>,
    children: FxHashMap<Value, TrieNode>,
}

impl KeyTrie {
    /// Build the trie eagerly: each row is inserted along its key
    /// prefix path until the first null (or the full key depth).
    pub fn build(rel: &Relation, key: &[AttrId]) -> KeyTrie {
        let mut root = TrieNode::default();
        for (i, t) in rel.iter().enumerate() {
            let mut node = &mut root;
            for &a in key {
                let v = *t.get(a);
                if v.is_null() {
                    break;
                }
                node = node.children.entry(v).or_default();
                node.rows.push(i as u32);
            }
        }
        KeyTrie {
            key: key.to_vec(),
            root,
        }
    }

    /// The indexed attribute list (maximum descent depth).
    pub fn key(&self) -> &[AttrId] {
        &self.key
    }

    /// Row ids matching `probe` on the first `probe.len()` key columns,
    /// ascending. Empty when the probe is empty, contains a null, or
    /// matches nothing — exactly the result a [`KeyIndex`] over those
    /// columns would return.
    pub fn lookup_prefix(&self, probe: &[Value]) -> &[u32] {
        debug_assert!(probe.len() <= self.key.len());
        let mut node = &self.root;
        if probe.is_empty() {
            return &[];
        }
        for v in probe {
            if v.is_null() {
                return &[];
            }
            match node.children.get(v) {
                Some(child) => node = child,
                None => return &[],
            }
        }
        &node.rows
    }

    /// An incremental-descent cursor positioned at the root.
    pub fn cursor(&self) -> TrieCursor<'_> {
        TrieCursor {
            trie: self,
            path: Vec::with_capacity(self.key.len()),
        }
    }
}

/// An incremental descent through a [`KeyTrie`], for probe sequences
/// sorted by key: [`truncate`](TrieCursor::truncate) back to the length
/// of the common prefix with the previous probe, then
/// [`descend`](TrieCursor::descend) only the differing suffix. Dead
/// paths (a missing child or a null probe value) are tracked, so a
/// descent below a miss stays a miss until truncated back above it.
#[derive(Debug)]
pub struct TrieCursor<'t> {
    trie: &'t KeyTrie,
    /// `path[d]` is the node after consuming `d + 1` probe values;
    /// `None` marks a dead path.
    path: Vec<Option<&'t TrieNode>>,
}

impl<'t> TrieCursor<'t> {
    /// Number of probe values consumed so far.
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// Rewind to `depth` consumed values (no-op if already shallower).
    pub fn truncate(&mut self, depth: usize) {
        self.path.truncate(depth);
    }

    /// Consume one more probe value; returns `false` if the path is
    /// (or just went) dead.
    pub fn descend(&mut self, v: Value) -> bool {
        let parent = match self.path.last() {
            None => Some(&self.trie.root),
            Some(p) => *p,
        };
        let child = match parent {
            Some(node) if !v.is_null() => node.children.get(&v),
            _ => None,
        };
        self.path.push(child);
        child.is_some()
    }

    /// Row ids at the current position — the hits of the consumed
    /// prefix. Empty at the root or on a dead path.
    pub fn hits(&self) -> &'t [u32] {
        match self.path.last() {
            Some(Some(node)) => &node.rows,
            _ => &[],
        }
    }
}

/// One cache slot: filled exactly once, by whichever thread wins the
/// [`OnceLock`] race; losers block on the lock and share the result.
type IndexSlot = Arc<OnceLock<Arc<KeyIndex>>>;

/// A cache entry stamped with the generation its index was built
/// against. [`MasterIndex::index_for`] only trusts an entry whose
/// stamp matches its own generation; anything else is stale and gets
/// restamped (fresh empty slot) under the write lock. The stale slot's
/// `Arc` stays alive in whoever pinned it, so restamping never blocks
/// or invalidates an in-flight probe.
#[derive(Clone, Debug)]
struct GenSlot {
    generation: u64,
    slot: IndexSlot,
}

/// A batch of master-data mutations, applied atomically by
/// [`MasterIndex::apply_delta`] to produce the next generation.
///
/// Within one delta, updates land first (in call order — the last
/// update to a row wins), then deletes remove rows (duplicate deletes
/// are fine; surviving rows keep their relative order and are
/// renumbered densely), then inserts append at the end in call order.
/// Row ids refer to the generation the delta is applied to, before any
/// renumbering. The resulting row list is exactly what a from-scratch
/// master over those rows would hold, so a delta-maintained index is
/// indistinguishable from a rebuilt one (invariant D10).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MasterDelta {
    inserts: Vec<Tuple>,
    updates: Vec<(u32, Tuple)>,
    deletes: Vec<u32>,
}

impl MasterDelta {
    /// An empty batch.
    pub fn new() -> MasterDelta {
        MasterDelta::default()
    }

    /// Append a master tuple (chainable).
    pub fn insert(mut self, t: Tuple) -> MasterDelta {
        self.inserts.push(t);
        self
    }

    /// Replace row `row` (chainable; the last update to a row wins).
    pub fn update(mut self, row: u32, t: Tuple) -> MasterDelta {
        self.updates.push((row, t));
        self
    }

    /// Delete row `row` (chainable).
    pub fn delete(mut self, row: u32) -> MasterDelta {
        self.deletes.push(row);
        self
    }

    /// Number of mutations in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.updates.len() + self.deletes.len()
    }

    /// `true` iff the batch holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` iff the batch deletes at least one row (deltas with
    /// deletes renumber rows and cannot be index-patched).
    pub fn has_deletes(&self) -> bool {
        !self.deletes.is_empty()
    }

    /// The tuples this batch appends.
    pub fn inserts(&self) -> &[Tuple] {
        &self.inserts
    }

    /// The `(row, tuple)` replacements this batch makes.
    pub fn updates(&self) -> &[(u32, Tuple)] {
        &self.updates
    }

    /// The row ids this batch deletes.
    pub fn deletes(&self) -> &[u32] {
        &self.deletes
    }
}

/// A master relation bundled with a cache of [`KeyIndex`]es.
///
/// Cloning is cheap (`Arc` inside); the cache is shared and grows
/// monotonically as new key lists are probed. Builds are single-flight
/// (see the [module docs](self)) and counted —
/// [`MasterIndex::index_builds`] is the monitoring hook asserting that
/// racing workers never duplicate a build.
///
/// A `MasterIndex` is one immutable **generation** of an evolving
/// lineage: [`apply_delta`](Self::apply_delta) returns the next
/// generation and leaves the receiver untouched, while all generations
/// share one slot cache with generation-stamped entries (see the
/// [module docs](self#live-master-data)).
#[derive(Clone, Debug)]
pub struct MasterIndex {
    rel: Arc<Relation>,
    generation: u64,
    cache: Arc<RwLock<FxHashMap<Vec<AttrId>, GenSlot>>>,
    builds: Arc<AtomicU64>,
    patches: Arc<AtomicU64>,
}

impl MasterIndex {
    /// Wrap a master relation (generation 0 of a fresh lineage).
    pub fn new(rel: Arc<Relation>) -> MasterIndex {
        MasterIndex {
            rel,
            generation: 0,
            cache: Arc::new(RwLock::new(FxHashMap::default())),
            builds: Arc::new(AtomicU64::new(0)),
            patches: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Arc<Relation> {
        &self.rel
    }

    /// Number of master tuples.
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// `true` iff the master relation is empty.
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Get (or lazily build) the index for `key`.
    ///
    /// Builds are *single-flight per generation*: the slot for `key` is
    /// reserved (or restamped, if a delta left it stale) under the
    /// write lock, but the build itself runs outside any lock,
    /// serialized by the slot's [`OnceLock`] — concurrent callers for
    /// the same cold key block until the one build finishes and then
    /// share it. A slot stamped with a different generation is never
    /// reused: it belongs to another snapshot of the lineage, whose
    /// pinned `Arc`s keep it alive independently of the cache. Callers
    /// on the steady-state path should pin the returned `Arc` instead
    /// of re-calling this (each call hashes `key` and takes the read
    /// lock).
    pub fn index_for(&self, key: &[AttrId]) -> Arc<KeyIndex> {
        let slot = {
            let r = self.cache.read().expect("index cache poisoned");
            r.get(key)
                .filter(|e| e.generation == self.generation)
                .map(|e| e.slot.clone())
        };
        let slot = slot.unwrap_or_else(|| {
            let mut w = self.cache.write().expect("index cache poisoned");
            let entry = w.entry(key.to_vec()).or_insert_with(|| GenSlot {
                generation: self.generation,
                slot: IndexSlot::default(),
            });
            if entry.generation != self.generation {
                *entry = GenSlot {
                    generation: self.generation,
                    slot: IndexSlot::default(),
                };
            }
            entry.slot.clone()
        });
        slot.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(KeyIndex::build(&self.rel, key))
        })
        .clone()
    }

    /// Apply a batch of mutations, returning the **next-generation**
    /// snapshot. `self` is untouched: probes pinned against it (or any
    /// older generation) keep their rows — this is the non-blocking
    /// half of the invalidation contract.
    ///
    /// The shared slot cache is maintained eagerly where that is cheap:
    /// for a **delete-free** delta every already-built index of the
    /// current generation is *patched* (updated rows move between hit
    /// lists, inserted rows append the new largest ids) and restamped
    /// to the new generation — counted by
    /// [`index_patches`](Self::index_patches), and bit-identical to a
    /// fresh build. Deltas with deletes renumber rows, so affected
    /// slots are left stale and rebuilt lazily on the next
    /// [`index_for`](Self::index_for).
    ///
    /// Row ids in `delta` refer to `self`'s rows. Errors:
    /// [`RelationError::RowOutOfRange`] for an update/delete past the
    /// end, [`RelationError::ArityMismatch`] for a tuple that does not
    /// fit the schema (either way the lineage is left untouched).
    pub fn apply_delta(&self, delta: &MasterDelta) -> Result<MasterIndex, RelationError> {
        let schema = self.rel.schema();
        let check_row = |row: u32| {
            if (row as usize) < self.rel.len() {
                Ok(())
            } else {
                Err(RelationError::RowOutOfRange {
                    schema: schema.name().to_string(),
                    row,
                    len: self.rel.len(),
                })
            }
        };
        for &(row, _) in &delta.updates {
            check_row(row)?;
        }
        for &row in &delta.deletes {
            check_row(row)?;
        }
        let mut rows = self.rel.tuples().to_vec();
        for (row, t) in &delta.updates {
            rows[*row as usize] = t.clone();
        }
        let mut deletes = delta.deletes.clone();
        deletes.sort_unstable();
        deletes.dedup();
        for &row in deletes.iter().rev() {
            rows.remove(row as usize);
        }
        rows.extend(delta.inserts.iter().cloned());
        let rel = Arc::new(Relation::new(Arc::clone(schema), rows)?);
        let generation = self.generation + 1;
        if deletes.is_empty() {
            // Only the final value of a row matters, and a row may move
            // between hit lists at most once — dedup the updated ids.
            let mut updated: Vec<u32> = delta.updates.iter().map(|&(r, _)| r).collect();
            updated.sort_unstable();
            updated.dedup();
            let mut w = self.cache.write().expect("index cache poisoned");
            for entry in w.values_mut() {
                if entry.generation != self.generation {
                    continue;
                }
                let Some(idx) = entry.slot.get().cloned() else {
                    continue;
                };
                let slot = IndexSlot::default();
                let _ = slot.set(Arc::new(idx.patched(&self.rel, &rel, &updated)));
                *entry = GenSlot { generation, slot };
                self.patches.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(MasterIndex {
            rel,
            generation,
            cache: Arc::clone(&self.cache),
            builds: Arc::clone(&self.builds),
            patches: Arc::clone(&self.patches),
        })
    }

    /// The generation of this snapshot: 0 for [`new`](Self::new), +1
    /// per applied delta along the lineage.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of already-built indexes maintained by in-place patching
    /// (delete-free deltas) instead of left for a lazy rebuild.
    pub fn index_patches(&self) -> u64 {
        self.patches.load(Ordering::Relaxed)
    }

    /// Number of [`KeyIndex`] builds actually executed (diagnostics;
    /// with single-flight builds this equals the number of distinct
    /// key lists ever probed, however many workers raced on them).
    pub fn index_builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Master tuples `tm` with `tm[key] = probe` (by row id).
    pub fn matches(&self, key: &[AttrId], probe: &[Value]) -> Vec<u32> {
        self.index_for(key).lookup(probe).to_vec()
    }

    /// Master tuples matching the projection `t[from]` on master
    /// attributes `to` — the `t[X] = tm[Xm]` probe of rule application.
    pub fn matches_projection(&self, t: &Tuple, from: &[AttrId], to: &[AttrId]) -> Vec<u32> {
        let probe = t.project(from);
        self.matches(to, &probe)
    }

    /// [`matches_projection`](Self::matches_projection) with reusable
    /// buffers: the projection goes through `probe` and the hit list is
    /// copied into `out` (both cleared first). One lock acquisition and
    /// — once the buffers are warm — zero heap allocations per call.
    /// Hot paths that can also pin the index should prefer
    /// [`KeyIndex::lookup_projection`], which skips the lock *and* the
    /// copy.
    pub fn matches_projection_into(
        &self,
        t: &Tuple,
        from: &[AttrId],
        to: &[AttrId],
        probe: &mut Vec<Value>,
        out: &mut Vec<u32>,
    ) {
        let idx = self.index_for(to);
        out.clear();
        out.extend_from_slice(idx.lookup_projection(t, from, probe));
    }

    /// Resolve a row id.
    pub fn tuple(&self, id: u32) -> &Tuple {
        self.rel.tuple(id as usize)
    }

    /// Number of cached indexes (diagnostics).
    pub fn cached_indexes(&self) -> usize {
        self.cache.read().expect("index cache poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;

    fn master() -> Arc<Relation> {
        let s = Schema::new("Rm", ["zip", "ac", "city"]).unwrap();
        Arc::new(
            Relation::new(
                s,
                vec![
                    tuple!["EH7 4AH", "131", "Edi"],
                    tuple!["WC1H 9SE", "020", "Ldn"],
                    tuple!["EH7 4AH", "131", "Edi"], // duplicate key
                    tuple![Value::Null, "999", "Gla"], // null key: unindexed
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn lookup_by_single_attr() {
        let idx = KeyIndex::build(&master(), &[AttrId(0)]);
        assert_eq!(idx.lookup(&[Value::str("EH7 4AH")]), &[0, 2]);
        assert_eq!(idx.lookup(&[Value::str("nope")]), &[] as &[u32]);
        assert_eq!(idx.lookup(&[Value::Null]), &[] as &[u32]);
        assert_eq!(idx.key(), &[AttrId(0)]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn composite_keys() {
        let idx = KeyIndex::build(&master(), &[AttrId(1), AttrId(2)]);
        assert_eq!(idx.lookup(&[Value::str("020"), Value::str("Ldn")]), &[1]);
        assert_eq!(
            idx.lookup(&[Value::str("020"), Value::str("Edi")]),
            &[] as &[u32]
        );
        // the null-zip row IS indexed here because its ac/city are non-null
        assert_eq!(idx.lookup(&[Value::str("999"), Value::str("Gla")]), &[3]);
    }

    #[test]
    fn master_index_caches() {
        let m = MasterIndex::new(master());
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert_eq!(m.cached_indexes(), 0);
        let _ = m.index_for(&[AttrId(0)]);
        let _ = m.index_for(&[AttrId(0)]);
        let _ = m.index_for(&[AttrId(1)]);
        assert_eq!(m.cached_indexes(), 2);
        assert_eq!(m.matches(&[AttrId(1)], &[Value::str("131")]), vec![0, 2]);
    }

    #[test]
    fn projection_probe() {
        // input tuple with phn in position 0 matched against master ac in
        // position 1 — attribute lists on both sides differ.
        let m = MasterIndex::new(master());
        let t = tuple!["131", "ignored"];
        let hits = m.matches_projection(&t, &[AttrId(0)], &[AttrId(1)]);
        assert_eq!(hits, vec![0, 2]);
        assert_eq!(m.tuple(hits[0]).get(AttrId(2)), &Value::str("Edi"));
    }

    #[test]
    fn null_probe_finds_nothing() {
        let m = MasterIndex::new(master());
        let t = tuple![Value::Null, "x"];
        assert!(m
            .matches_projection(&t, &[AttrId(0)], &[AttrId(0)])
            .is_empty());
    }

    #[test]
    fn lookup_projection_reuses_the_probe_buffer() {
        let m = MasterIndex::new(master());
        let idx = m.index_for(&[AttrId(1)]);
        let mut probe: Vec<Value> = Vec::new();
        let t = tuple!["131", "ignored"];
        assert_eq!(idx.lookup_projection(&t, &[AttrId(0)], &mut probe), &[0, 2]);
        let cap = probe.capacity();
        // warm buffer: repeated probes never grow it
        for _ in 0..8 {
            let miss = tuple!["000", "ignored"];
            assert_eq!(
                idx.lookup_projection(&miss, &[AttrId(0)], &mut probe),
                &[] as &[u32]
            );
            assert_eq!(probe.capacity(), cap);
        }
        // null projections find nothing, as with owned probes
        let n = tuple![Value::Null, "x"];
        assert!(idx
            .lookup_projection(&n, &[AttrId(0)], &mut probe)
            .is_empty());
    }

    #[test]
    fn matches_projection_into_agrees_with_owned_path() {
        let m = MasterIndex::new(master());
        let mut probe = Vec::new();
        let mut out = Vec::new();
        for t in [
            tuple!["131", "x"],
            tuple!["nope", "x"],
            tuple![Value::Null, "x"],
        ] {
            m.matches_projection_into(&t, &[AttrId(0)], &[AttrId(1)], &mut probe, &mut out);
            assert_eq!(out, m.matches_projection(&t, &[AttrId(0)], &[AttrId(1)]));
        }
    }

    /// Every trie node agrees with the flat [`KeyIndex`] over the same
    /// prefix columns: identical ids, identical (ascending) order, and
    /// identical null semantics at every depth.
    #[test]
    fn trie_prefixes_match_per_depth_key_indexes() {
        let rel = master();
        let key = [AttrId(0), AttrId(1), AttrId(2)];
        let trie = KeyTrie::build(&rel, &key);
        assert_eq!(trie.key(), &key);
        for d in 1..=key.len() {
            let idx = KeyIndex::build(&rel, &key[..d]);
            for t in rel.iter() {
                let probe: Vec<Value> = key[..d].iter().map(|&a| *t.get(a)).collect();
                assert_eq!(trie.lookup_prefix(&probe), idx.lookup(&probe), "depth {d}");
            }
            // misses agree too
            let miss: Vec<Value> = (0..d).map(|_| Value::str("nope")).collect();
            assert_eq!(trie.lookup_prefix(&miss), idx.lookup(&miss));
        }
        // the null-zip row is reachable at no depth (zip is column 0)
        assert_eq!(
            trie.lookup_prefix(&[Value::Null]),
            &[] as &[u32],
            "null probes find nothing"
        );
        assert_eq!(trie.lookup_prefix(&[]), &[] as &[u32]);
    }

    /// The cursor's shared-prefix descent visits the same nodes as
    /// fresh full descents.
    #[test]
    fn trie_cursor_reuses_shared_prefixes() {
        let rel = master();
        let key = [AttrId(1), AttrId(2)];
        let trie = KeyTrie::build(&rel, &key);
        let mut cur = trie.cursor();
        // "131" → {0, 2} at depth 1; "131","Edi" → {0, 2} at depth 2
        assert!(cur.descend(Value::str("131")));
        assert_eq!(cur.hits(), &[0, 2]);
        assert!(cur.descend(Value::str("Edi")));
        assert_eq!(cur.hits(), &[0, 2]);
        assert_eq!(cur.depth(), 2);
        // rewind one level, take a dead branch, and stay dead below it
        cur.truncate(1);
        assert!(!cur.descend(Value::str("Lnd")));
        assert_eq!(cur.hits(), &[] as &[u32]);
        assert_eq!(cur.depth(), 2);
        // truncating above the miss revives the path
        cur.truncate(0);
        assert!(cur.descend(Value::str("020")));
        assert!(cur.descend(Value::str("Ldn")));
        assert_eq!(cur.hits(), &[1]);
        // null values kill the path like a missing child
        cur.truncate(1);
        assert!(!cur.descend(Value::Null));
        assert_eq!(cur.hits(), &[] as &[u32]);
    }

    /// Patched indexes are indistinguishable from a fresh build: same
    /// hit lists (ascending), same distinct keys, emptied lists
    /// dropped — for both the `Rank` and the `Slice` map layout.
    #[test]
    fn delete_free_deltas_patch_built_indexes() {
        let m0 = MasterIndex::new(master());
        let zip = [AttrId(0)];
        let wide = [AttrId(1), AttrId(2)];
        let _ = m0.index_for(&zip);
        let _ = m0.index_for(&wide);
        let builds_before = m0.index_builds();
        let delta = MasterDelta::new()
            .update(0, tuple!["G2 8DL", "141", "Gla"]) // leaves both hit lists
            .update(3, tuple!["EH8 9YL", "131", "Edi"]) // null zip becomes indexed
            .insert(tuple!["EH7 4AH", "131", "Edi"]); // joins the duplicate-key list
        assert_eq!(delta.len(), 3);
        assert!(!delta.has_deletes());
        let m1 = m0.apply_delta(&delta).unwrap();
        assert_eq!(m1.generation(), 1);
        assert_eq!(m1.index_patches(), 2, "both built indexes were patched");
        assert_eq!(
            m1.index_builds(),
            builds_before,
            "patching is not a rebuild"
        );
        let fresh = MasterIndex::new(Arc::clone(m1.relation()));
        for key in [&zip[..], &wide[..]] {
            let patched = m1.index_for(key);
            let rebuilt = fresh.index_for(key);
            assert_eq!(patched.distinct_keys(), rebuilt.distinct_keys());
            assert_eq!(patched.max_hit_len(), rebuilt.max_hit_len());
            for t in m1.relation().iter() {
                let probe: Vec<Value> = key.iter().map(|&a| *t.get(a)).collect();
                assert_eq!(patched.lookup(&probe), rebuilt.lookup(&probe));
            }
            let miss = vec![Value::str("nope"); key.len()];
            assert_eq!(patched.lookup(&miss), &[] as &[u32]);
        }
        // ascending with the inserted row's (largest) id at the end
        assert_eq!(m1.index_for(&zip).lookup(&[Value::str("EH7 4AH")]), &[2, 4]);
    }

    /// The non-blocking half of the invalidation contract: pinned
    /// indexes and older snapshots keep serving the generation they
    /// were built against, however many deltas land after them.
    #[test]
    fn in_flight_probes_survive_deltas() {
        let m0 = MasterIndex::new(master());
        let zip = [AttrId(0)];
        let pinned = m0.index_for(&zip);
        let m1 = m0
            .apply_delta(&MasterDelta::new().update(0, tuple!["X", "1", "Y"]))
            .unwrap();
        // the pinned index still answers for generation 0 …
        assert_eq!(pinned.lookup(&[Value::str("EH7 4AH")]), &[0, 2]);
        // … the old snapshot re-resolves to generation-0 rows …
        assert_eq!(m0.index_for(&zip).lookup(&[Value::str("EH7 4AH")]), &[0, 2]);
        // … and only the new generation sees the update.
        assert_eq!(m1.index_for(&zip).lookup(&[Value::str("EH7 4AH")]), &[2]);
        assert_eq!(m1.index_for(&zip).lookup(&[Value::str("X")]), &[0]);
        assert_eq!((m0.generation(), m1.generation()), (0, 1));
    }

    /// Deltas with deletes renumber rows: slots go stale and rebuild
    /// lazily, duplicate deletes collapse, survivors keep their order.
    #[test]
    fn deletes_renumber_and_rebuild_lazily() {
        let m0 = MasterIndex::new(master());
        let zip = [AttrId(0)];
        let _ = m0.index_for(&zip);
        let patches = m0.index_patches();
        let m1 = m0
            .apply_delta(&MasterDelta::new().delete(0).delete(0).delete(3))
            .unwrap();
        assert_eq!(m1.index_patches(), patches, "deletes never patch");
        assert_eq!(m1.len(), 2);
        assert_eq!(m1.index_for(&zip).lookup(&[Value::str("WC1H 9SE")]), &[0]);
        assert_eq!(m1.index_for(&zip).lookup(&[Value::str("EH7 4AH")]), &[1]);
    }

    /// Mixed batches compose as documented: updates first (last wins),
    /// then deletes, then inserts.
    #[test]
    fn mixed_deltas_apply_updates_then_deletes_then_inserts() {
        let m0 = MasterIndex::new(master());
        let d = MasterDelta::new()
            .insert(tuple!["Z", "9", "Zed"])
            .delete(1)
            .update(1, tuple!["GONE", "0", "No"]) // updated, then deleted
            .update(2, tuple!["EH7 4AH", "131", "Lei"])
            .update(2, tuple!["EH7 4AH", "131", "Edi"]); // last wins: no-op
        let m1 = m0.apply_delta(&d).unwrap();
        assert_eq!(m1.len(), 4);
        let zip = [AttrId(0)];
        assert_eq!(m1.index_for(&zip).lookup(&[Value::str("Z")]), &[3]);
        assert_eq!(
            m1.index_for(&zip).lookup(&[Value::str("GONE")]),
            &[] as &[u32]
        );
        assert_eq!(m1.index_for(&zip).lookup(&[Value::str("EH7 4AH")]), &[0, 1]);
        assert_eq!(m1.tuple(1).get(AttrId(2)), &Value::str("Edi"));
    }

    /// Patching drops hit lists that empty out, so `distinct_keys`
    /// agrees with a fresh build.
    #[test]
    fn patching_drops_emptied_hit_lists() {
        let m0 = MasterIndex::new(master());
        let zip = [AttrId(0)];
        assert_eq!(m0.index_for(&zip).distinct_keys(), 2);
        let m1 = m0
            .apply_delta(
                &MasterDelta::new()
                    .update(0, tuple!["A", "1", "x"])
                    .update(2, tuple!["B", "2", "y"]),
            )
            .unwrap();
        let idx = m1.index_for(&zip);
        assert_eq!(idx.lookup(&[Value::str("EH7 4AH")]), &[] as &[u32]);
        assert_eq!(idx.distinct_keys(), 3, "A, B, WC1H 9SE");
    }

    /// Bad deltas are rejected atomically: the lineage is untouched.
    #[test]
    fn bad_deltas_are_rejected() {
        let m = MasterIndex::new(master());
        let err = m.apply_delta(&MasterDelta::new().delete(9)).unwrap_err();
        assert!(matches!(err, RelationError::RowOutOfRange { row: 9, .. }));
        let err = m
            .apply_delta(&MasterDelta::new().update(9, tuple!["a", "b", "c"]))
            .unwrap_err();
        assert!(matches!(err, RelationError::RowOutOfRange { row: 9, .. }));
        let err = m
            .apply_delta(&MasterDelta::new().insert(tuple!["too", "short"]))
            .unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
        assert_eq!(m.generation(), 0, "failed deltas leave the lineage alone");
        assert!(MasterDelta::new().is_empty());
    }

    /// The single-flight satellite: many threads racing on the same
    /// cold key list trigger exactly one build; distinct key lists each
    /// build once.
    #[test]
    fn cold_index_builds_are_single_flight() {
        let m = MasterIndex::new(master());
        assert_eq!(m.index_builds(), 0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    let idx = m.index_for(&[AttrId(0)]);
                    assert_eq!(idx.key(), &[AttrId(0)]);
                });
            }
        });
        assert_eq!(m.index_builds(), 1, "racing workers shared one build");
        assert_eq!(m.cached_indexes(), 1);
        let _ = m.index_for(&[AttrId(1), AttrId(2)]);
        let _ = m.index_for(&[AttrId(1), AttrId(2)]);
        assert_eq!(m.index_builds(), 2);
    }
}
