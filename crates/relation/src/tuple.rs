//! Tuples (rows) aligned to a schema.

use std::fmt;
use std::sync::Arc;

use crate::error::RelationError;
use crate::schema::{AttrId, Schema};
use crate::value::Value;

/// A row of values, positionally aligned to a [`Schema`].
///
/// `Tuple` does not carry its schema (rows are stored densely inside
/// [`crate::Relation`]); call sites that need names pass the schema
/// explicitly. Cells default to [`Value::Null`].
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// A tuple of `arity` null cells.
    pub fn nulls(arity: usize) -> Tuple {
        Tuple {
            values: vec![Value::Null; arity],
        }
    }

    /// Build from an exact list of values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple { values }
    }

    /// Build from values, checking arity against a schema.
    pub fn for_schema(schema: &Schema, values: Vec<Value>) -> Result<Tuple, RelationError> {
        if values.len() != schema.len() {
            return Err(RelationError::ArityMismatch {
                schema: schema.name().to_string(),
                expected: schema.len(),
                got: values.len(),
            });
        }
        Ok(Tuple { values })
    }

    /// Number of cells.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Read one cell.
    #[inline]
    pub fn get(&self, a: AttrId) -> &Value {
        &self.values[a.index()]
    }

    /// Write one cell.
    #[inline]
    pub fn set(&mut self, a: AttrId, v: Value) {
        self.values[a.index()] = v;
    }

    /// Project the tuple onto an attribute list (`t[X]` in the paper).
    /// `Value` is `Copy`, so this is a word-sized gather.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|&a| self.values[a.index()]).collect()
    }

    /// `true` iff `t[X] = s[Y]` position-wise, with null never agreeing.
    ///
    /// This is the match condition `t[X] = tm[Xm]` of rule application;
    /// `attrs_self` and `attrs_other` must have equal length.
    pub fn agrees_on(&self, attrs_self: &[AttrId], other: &Tuple, attrs_other: &[AttrId]) -> bool {
        debug_assert_eq!(attrs_self.len(), attrs_other.len());
        attrs_self
            .iter()
            .zip(attrs_other)
            .all(|(&a, &b)| self.get(a).agrees_with(other.get(b)))
    }

    /// `true` iff no cell is null.
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(|v| !v.is_null())
    }

    /// Attribute ids of the cells where `self` and `other` differ.
    pub fn diff(&self, other: &Tuple) -> Vec<AttrId> {
        debug_assert_eq!(self.arity(), other.arity());
        (0..self.values.len() as u16)
            .map(AttrId)
            .filter(|&a| self.get(a) != other.get(a))
            .collect()
    }

    /// Iterate `(AttrId, &Value)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (AttrId(i as u16), v))
    }

    /// The raw cell slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Render as `(v1, v2, ...)`.
    pub fn render(&self) -> String {
        let cells: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
        format!("({})", cells.join(", "))
    }

    /// Render with attribute names against a schema.
    pub fn render_named(&self, schema: &Schema) -> String {
        let cells: Vec<String> = self
            .iter()
            .map(|(a, v)| format!("{}={}", schema.attr_name(a), v))
            .collect();
        format!("({})", cells.join(", "))
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Tuple {
        Tuple::new(values)
    }
}

/// Convenience builder used pervasively in tests and examples:
/// `tuple!["Bob", "Brady", 20, Value::Null]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

/// Helper for building a tuple from named cells against a schema; unnamed
/// attributes default to null. Used by data generators and tests.
pub fn tuple_from_named(
    schema: &Arc<Schema>,
    cells: &[(&str, Value)],
) -> Result<Tuple, RelationError> {
    let mut t = Tuple::nulls(schema.len());
    for (name, v) in cells {
        let a = schema.attr_or_err(name)?;
        t.set(a, *v);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_project() {
        let mut t = Tuple::nulls(3);
        assert_eq!(t.arity(), 3);
        assert!(t.get(AttrId(0)).is_null());
        t.set(AttrId(1), Value::str("x"));
        assert_eq!(t.get(AttrId(1)), &Value::str("x"));
        assert_eq!(
            t.project(&[AttrId(1), AttrId(0)]),
            vec![Value::str("x"), Value::Null]
        );
        assert!(!t.is_complete());
    }

    #[test]
    fn arity_checked_constructor() {
        let s = Schema::new("R", ["a", "b"]).unwrap();
        assert!(Tuple::for_schema(&s, vec![Value::int(1), Value::int(2)]).is_ok());
        let err = Tuple::for_schema(&s, vec![Value::int(1)]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { got: 1, .. }));
    }

    #[test]
    fn agreement_across_different_attr_lists() {
        // t[phn] = tm[Mphn] style matching: positions differ.
        let t = tuple!["079172485", "home"];
        let tm = tuple!["ignored", "079172485"];
        assert!(t.agrees_on(&[AttrId(0)], &tm, &[AttrId(1)]));
        assert!(!t.agrees_on(&[AttrId(1)], &tm, &[AttrId(0)]));
        // nulls never agree
        let n = tuple![Value::Null];
        assert!(!n.agrees_on(&[AttrId(0)], &n, &[AttrId(0)]));
    }

    #[test]
    fn diff_lists_changed_attrs() {
        let a = tuple![1, 2, 3];
        let b = tuple![1, 9, 3];
        assert_eq!(a.diff(&b), vec![AttrId(1)]);
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn named_construction_and_rendering() {
        let s = Schema::new("R", ["fn", "ln", "zip"]).unwrap();
        let t = tuple_from_named(
            &s,
            &[("ln", Value::str("Brady")), ("fn", Value::str("Bob"))],
        )
        .unwrap();
        assert_eq!(t.get(AttrId(0)), &Value::str("Bob"));
        assert_eq!(t.get(AttrId(2)), &Value::Null);
        assert_eq!(t.render(), "(Bob, Brady, ⊥)");
        assert_eq!(t.render_named(&s), "(fn=Bob, ln=Brady, zip=⊥)");
        assert!(tuple_from_named(&s, &[("nope", Value::Null)]).is_err());
    }

    #[test]
    fn macro_builds_values() {
        let t = tuple!["a", 5, Value::Null];
        assert_eq!(t.values().len(), 3);
        assert_eq!(t.get(AttrId(0)), &Value::str("a"));
        assert_eq!(t.get(AttrId(1)), &Value::int(5));
        assert!(t.get(AttrId(2)).is_null());
    }

    #[test]
    fn iter_yields_pairs() {
        let t = tuple![7, 8];
        let pairs: Vec<(AttrId, Value)> = t.iter().map(|(a, v)| (a, *v)).collect();
        assert_eq!(
            pairs,
            vec![(AttrId(0), Value::int(7)), (AttrId(1), Value::int(8))]
        );
    }
}
