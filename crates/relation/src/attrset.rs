//! One-word attribute bitsets.
//!
//! Regions `(Z, Tc)`, closures, and the bookkeeping of the fixing
//! algorithms all manipulate *sets of attributes* of a single schema.
//! Since schemas are capped at [`crate::MAX_ATTRS`] = 64 attributes, a
//! set is a single `u64` with O(1) union/intersection/subset tests.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign, Sub};

use crate::schema::{AttrId, Schema};

/// A set of [`AttrId`]s of one schema, stored as a 64-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AttrSet(u64);

impl AttrSet {
    /// The empty set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// The set `{0, 1, .., n-1}` of the first `n` attributes.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn full(n: usize) -> AttrSet {
        assert!(n <= 64, "attribute sets hold at most 64 attributes");
        if n == 64 {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << n) - 1)
        }
    }

    /// Set containing a single attribute.
    pub fn singleton(a: AttrId) -> AttrSet {
        AttrSet(1u64 << a.0)
    }

    /// Build from an iterator of ids (also available through the
    /// standard `FromIterator`/`collect`).
    pub fn collect_from<I: IntoIterator<Item = AttrId>>(iter: I) -> AttrSet {
        let mut s = AttrSet::EMPTY;
        for a in iter {
            s.insert(a);
        }
        s
    }

    /// Insert an attribute; returns `true` if it was newly added.
    pub fn insert(&mut self, a: AttrId) -> bool {
        let bit = 1u64 << a.0;
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Remove an attribute; returns `true` if it was present.
    pub fn remove(&mut self, a: AttrId) -> bool {
        let bit = 1u64 << a.0;
        let had = self.0 & bit != 0;
        self.0 &= !bit;
        had
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, a: AttrId) -> bool {
        self.0 & (1u64 << a.0) != 0
    }

    /// `true` iff `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// `true` iff the sets share no attribute.
    #[inline]
    pub fn is_disjoint(&self, other: &AttrSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` iff the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Union.
    #[inline]
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    pub fn intersection(&self, other: &AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// Iterate members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                Some(AttrId(tz as u16))
            }
        })
    }

    /// Members as a vector, ascending.
    pub fn to_vec(&self) -> Vec<AttrId> {
        self.iter().collect()
    }

    /// Render against a schema for diagnostics, e.g. `{zip, AC}`.
    pub fn render(&self, schema: &Schema) -> String {
        let names: Vec<&str> = self.iter().map(|a| schema.attr_name(a)).collect();
        format!("{{{}}}", names.join(", "))
    }

    /// The raw mask (for hashing / compact storage).
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// Rebuild from a raw mask.
    pub fn from_bits(bits: u64) -> AttrSet {
        AttrSet(bits)
    }
}

impl BitOr for AttrSet {
    type Output = AttrSet;
    fn bitor(self, rhs: AttrSet) -> AttrSet {
        self.union(&rhs)
    }
}

impl BitOrAssign for AttrSet {
    fn bitor_assign(&mut self, rhs: AttrSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for AttrSet {
    type Output = AttrSet;
    fn bitand(self, rhs: AttrSet) -> AttrSet {
        self.intersection(&rhs)
    }
}

impl Sub for AttrSet {
    type Output = AttrSet;
    fn sub(self, rhs: AttrSet) -> AttrSet {
        self.difference(&rhs)
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> AttrSet {
        AttrSet::collect_from(iter)
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u16]) -> AttrSet {
        v.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AttrSet::EMPTY;
        assert!(s.insert(AttrId(3)));
        assert!(!s.insert(AttrId(3)));
        assert!(s.contains(AttrId(3)));
        assert!(!s.contains(AttrId(2)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(AttrId(3)));
        assert!(!s.remove(AttrId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = ids(&[0, 1, 2]);
        let b = ids(&[2, 3]);
        assert_eq!(a.union(&b), ids(&[0, 1, 2, 3]));
        assert_eq!(a.intersection(&b), ids(&[2]));
        assert_eq!(a.difference(&b), ids(&[0, 1]));
        assert_eq!(a | b, a.union(&b));
        assert_eq!(a & b, a.intersection(&b));
        assert_eq!(a - b, a.difference(&b));
        assert!(ids(&[1]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(ids(&[0]).is_disjoint(&ids(&[1])));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn full_and_iteration() {
        assert_eq!(AttrSet::full(0), AttrSet::EMPTY);
        assert_eq!(AttrSet::full(64).len(), 64);
        assert_eq!(
            AttrSet::full(3).to_vec(),
            vec![AttrId(0), AttrId(1), AttrId(2)]
        );
        let s = ids(&[63, 0, 17]);
        assert_eq!(s.to_vec(), vec![AttrId(0), AttrId(17), AttrId(63)]);
    }

    #[test]
    #[should_panic]
    fn full_over_64_panics() {
        let _ = AttrSet::full(65);
    }

    #[test]
    fn render_against_schema() {
        let schema = Schema::new("R", ["x", "y", "z"]).unwrap();
        assert_eq!(ids(&[0, 2]).render(&schema), "{x, z}");
        assert_eq!(AttrSet::EMPTY.render(&schema), "{}");
    }

    #[test]
    fn bits_roundtrip() {
        let s = ids(&[5, 9]);
        assert_eq!(AttrSet::from_bits(s.bits()), s);
    }

    #[test]
    fn or_assign() {
        let mut s = ids(&[1]);
        s |= ids(&[2]);
        assert_eq!(s, ids(&[1, 2]));
    }
}
