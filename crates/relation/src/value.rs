//! Cell values.
//!
//! The paper's data model is untyped constants drawn from attribute
//! domains; we model them with a small dynamic [`Value`] enum. String
//! payloads are interned [`Sym`]bols (see [`crate::symbol`]), so a
//! `Value` is a 16-byte `Copy` word: the fixing engine copies master
//! values into input tuples and compares/hashes projected key lists on
//! every rule application, and all of those are now machine-word
//! integer operations. Resolution back to text happens only at
//! display and CSV boundaries.

use std::borrow::Cow;
use std::fmt;

use crate::symbol::Sym;

/// A single cell value.
///
/// `Null` represents a *missing* value (e.g. the empty `str`/`zip` cells
/// of tuple `t2` in Fig. 1 of the paper). Missing values never compare
/// equal to any constant during rule matching — a rule can *fill* a null
/// (by writing its `rhs`) but never *match* on one.
///
/// Equality and hashing are O(1): `Str` compares interned ids, which
/// the global [`crate::Interner`] keeps in bijection with string
/// contents. Ordering still compares string *text* (via [`Sym`]'s
/// `Ord`), so sorted output is identical to the pre-interning
/// representation: `Null < Int(_) < Str(_)`, integers numerically,
/// strings lexicographically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Value {
    /// A missing / unknown cell.
    #[default]
    Null,
    /// An integer constant.
    Int(i64),
    /// An interned string constant.
    Str(Sym),
}

impl Value {
    /// Build a string value (interning its text).
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Sym::intern(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// `true` iff the cell is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A cheap injective grouping key: equal values — and only equal
    /// values — share a rank (the interner keeps symbols in bijection
    /// with string contents). `Null` is 0; ints and symbols carry a
    /// tag in bits 64–65 above their payload. Hot paths group, hash,
    /// and compare values by rank without touching string text; the
    /// rank order is NOT the semantic [`Ord`] order.
    #[inline]
    pub fn grouping_rank(&self) -> u128 {
        match *self {
            Value::Null => 0,
            Value::Int(i) => (1u128 << 64) | u128::from(i as u64),
            Value::Str(s) => (2u128 << 64) | u128::from(s.id()),
        }
    }

    /// View the value as a string slice when it is a `Str`.
    ///
    /// Interned strings live for the life of the process, hence the
    /// `'static` borrow.
    pub fn as_str(&self) -> Option<&'static str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The interned symbol when the value is a `Str`.
    pub fn as_sym(&self) -> Option<Sym> {
        match self {
            Value::Str(s) => Some(*s),
            _ => None,
        }
    }

    /// View the value as an integer when it is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Render the value for CSV-style output. `Null` renders as the empty
    /// string; everything else via `Display`.
    pub fn render(&self) -> Cow<'static, str> {
        match self {
            Value::Null => Cow::Borrowed(""),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Str(s) => Cow::Borrowed(s.as_str()),
        }
    }

    /// Equality used by rule matching: two cells "agree" iff both are
    /// non-null and equal. A null never agrees with anything, including
    /// another null (a missing value is an *unknown* constant).
    pub fn agrees_with(&self, other: &Value) -> bool {
        !self.is_null() && !other.is_null() && self == other
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Sym::intern_owned(s))
    }
}

impl From<Sym> for Value {
    fn from(s: Sym) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_default() {
        assert_eq!(Value::default(), Value::Null);
        assert!(Value::Null.is_null());
        assert!(!Value::int(3).is_null());
    }

    #[test]
    fn agreement_requires_non_null_equality() {
        assert!(Value::str("Edi").agrees_with(&Value::str("Edi")));
        assert!(!Value::str("Edi").agrees_with(&Value::str("Ldn")));
        assert!(!Value::Null.agrees_with(&Value::Null));
        assert!(!Value::Null.agrees_with(&Value::int(1)));
        assert!(!Value::int(1).agrees_with(&Value::Null));
    }

    #[test]
    fn int_and_str_never_equal() {
        assert_ne!(Value::int(20), Value::str("20"));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7), Value::Int(7));
        assert_eq!(Value::from("abc"), Value::str("abc"));
        assert_eq!(Value::from(String::from("abc")), Value::str("abc"));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::int(4).as_int(), Some(4));
        assert_eq!(Value::Null.as_str(), None);
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::from(Sym::intern("abc")), Value::str("abc"));
        assert_eq!(Value::str("abc").as_sym(), Some(Sym::intern("abc")));
        assert_eq!(Value::int(1).as_sym(), None);
    }

    #[test]
    fn rendering() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::int(-3).render(), "-3");
        assert_eq!(Value::str("a b").render(), "a b");
        assert_eq!(format!("{}", Value::Null), "⊥");
        assert_eq!(format!("{:?}", Value::str("a")), "\"a\"");
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![Value::str("b"), Value::Null, Value::int(2), Value::str("a")];
        vs.sort();
        assert_eq!(
            vs,
            vec![Value::Null, Value::int(2), Value::str("a"), Value::str("b")]
        );
    }

    #[test]
    fn value_is_a_copy_word() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Value>();
        assert!(std::mem::size_of::<Value>() <= 16);
    }

    #[test]
    fn equal_strings_share_one_symbol() {
        let (a, b) = (Value::str("shared"), Value::str("shared"));
        assert_eq!(a.as_sym(), b.as_sym());
    }
}
