//! Relational substrate for the `certain-fix` workspace.
//!
//! This crate provides the data model over which editing rules
//! (Fan et al., *Towards Certain Fixes with Editing Rules and Master
//! Data*, VLDB 2010) are defined:
//!
//! * [`Sym`] / [`Interner`] — interned string symbols: every string cell
//!   is a `u32` id into a process-wide, append-only interner, so value
//!   equality/hashing is O(1) on a machine word (see [`symbol`] for the
//!   lifetime rules — interned strings are immortal),
//! * [`Value`] — a dynamically typed cell value (`Null` / `Int` /
//!   `Str(Sym)`) that is `Copy` and 16 bytes wide,
//! * [`Schema`] / [`AttrId`] / [`AttrSet`] — named attribute lists with a
//!   one-word bitset over attribute positions,
//! * [`Tuple`] — a row aligned to a schema,
//! * [`PatternValue`] / [`PatternTuple`] / [`Tableau`] — the paper's
//!   three-valued patterns (`a`, `ā`, `_`) and pattern tableaux,
//! * [`Relation`] — a schema plus rows (used for master data `Dm` and
//!   input sets `D`),
//! * [`MasterIndex`] — lazily built hash indexes keyed on attribute lists,
//!   used by the rule-application engine to find master tuples `tm` with
//!   `tm[Xm] = t[X]` in expected O(1).
//!
//! Schemas are capped at [`MAX_ATTRS`] (64) attributes so that attribute
//! sets fit in one machine word; the paper's schemas have 19 (HOSP) and
//! 12 (DBLP) attributes.

pub mod attrset;
pub mod csv;
pub mod error;
pub mod hashers;
pub mod index;
pub mod multimaster;
pub mod pattern;
pub mod relation;
pub mod schema;
pub mod symbol;
pub mod tuple;
pub mod value;

pub use attrset::AttrSet;
pub use csv::{from_csv, to_csv};
pub use error::RelationError;
pub use hashers::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::{KeyIndex, KeyTrie, MasterDelta, MasterIndex, TrieCursor};
pub use multimaster::{combine_masters, select_master, MASTER_ID_ATTR};
pub use pattern::{PatternTuple, PatternValue, Tableau};
pub use relation::Relation;
pub use schema::{AttrId, Schema, MAX_ATTRS};
pub use symbol::{Interner, Sym};
pub use tuple::Tuple;
pub use value::Value;

/// Compile-time audit: everything the parallel batch-repair engine
/// shares across worker threads must be `Send + Sync`. The interner's
/// raw-pointer chunk table and the `&'static str` handed out by
/// [`Sym::as_str`] make this worth pinning down in the type system: a
/// future change that sneaks in an `Rc`, a `Cell`, or an unmarked raw
/// pointer fails this function's type-check instead of a code review.
#[allow(dead_code)]
fn _send_sync_audit() {
    fn check<T: Send + Sync>() {}
    check::<Sym>();
    check::<Value>();
    check::<Tuple>();
    check::<Schema>();
    check::<AttrSet>();
    check::<Relation>();
    check::<KeyIndex>();
    check::<KeyTrie>();
    check::<MasterIndex>();
    check::<MasterDelta>();
    check::<Interner>();
    check::<PatternTuple>();
    check::<Tableau>();
}
