//! Direct fixes (special case (5) of Sect. 4.1; Theorem 5).
//!
//! Under the *direct fix* semantics (a) rule patterns only mention key
//! attributes (`Xp ⊆ X`), and (b) fixes never extend the region: every
//! step uses `(Z, Tc)` itself, so only rules with `lhs ∪ lhsp ⊆ Z` and
//! `rhs ∉ Z` ever fire. Consistency and coverage then reduce to the
//! SQL-style joins `Qϕ1,ϕ2` of the paper, evaluated here as hash joins
//! over the master relation — PTIME in `|Σ|` and `|Dm|`.

use certainfix_relation::{AttrId, AttrSet, FxHashMap, MasterIndex, PatternValue, Value};
use certainfix_rules::{EditingRule, RulePlan, RuleSet};

use crate::region::Region;

/// A pair of master prescriptions that disagree — the witness returned
/// by `Qϕ1,ϕ2`.
#[derive(Clone, Debug)]
pub struct DirectConflict {
    /// Indices of the two rules.
    pub rules: (usize, usize),
    /// The disputed attribute `B`.
    pub attr: AttrId,
    /// The two prescribed values.
    pub values: (Value, Value),
}

/// Report of the direct-fix analyses.
#[derive(Clone, Debug)]
pub struct DirectReport {
    /// `true` iff no query `Qϕ1,ϕ2` is non-empty.
    pub consistent: bool,
    /// First conflict found.
    pub conflict: Option<DirectConflict>,
    /// For coverage: attributes of `R \ Z` with no applicable rule +
    /// master support under some tableau row (empty iff covered).
    pub uncovered: AttrSet,
}

/// Can a marked tuple satisfy both `tc`'s cell and the rule pattern's
/// cell on the same attribute?
fn cells_compatible(tc_cell: Option<&PatternValue>, tp_cell: &PatternValue) -> bool {
    match (tc_cell, tp_cell) {
        (None | Some(PatternValue::Wildcard), _) => true,
        (Some(PatternValue::Const(v)), tp) => tp.matches(v),
        // tc has a negation: some non-`v` value satisfying `tp` exists
        // unless `tp` is the very constant excluded.
        (Some(PatternValue::Neq(v)), PatternValue::Const(c)) => v != c,
        (Some(PatternValue::Neq(_)), _) => true,
    }
}

/// Rules applicable under the direct semantics for region `(Z, Tc)` and
/// row `tc`: `lhs ∪ lhsp ⊆ Z`, `rhs ∉ Z`, and the rule pattern is
/// jointly satisfiable with `tc` on every pattern attribute.
fn applicable_direct<'a>(
    rules: &'a RuleSet,
    region: &Region,
    tc: &certainfix_relation::PatternTuple,
) -> Vec<(usize, &'a EditingRule)> {
    let z = region.z_set();
    rules
        .iter()
        .filter(|(_, rule)| {
            rule.premise().is_subset(&z)
                && !z.contains(rule.rhs())
                && rule
                    .lhs_p()
                    .iter()
                    .zip(rule.pattern().cells())
                    .all(|(&a, tp_cell)| cells_compatible(tc.cell(a), tp_cell))
        })
        .collect()
}

/// `Qϕ` of Theorem 5: master rows matching both the rule's pattern
/// (through the key mapping, for pattern attrs that are keys) and the
/// row `tc` (through the key mapping). Returns `(key values in lhs
/// order, prescribed B value)` per surviving master row.
fn rule_result_set(
    rule: &EditingRule,
    tc: &certainfix_relation::PatternTuple,
    master: &MasterIndex,
) -> Vec<(Vec<Value>, Value)> {
    let mut out = Vec::new();
    'rows: for tm in master.relation().iter() {
        for (i, &x) in rule.lhs().iter().enumerate() {
            let mv = tm.get(rule.lhs_m()[i]);
            // tc constraint on the key attribute
            if let Some(cell) = tc.cell(x) {
                if !cell.matches(mv) {
                    continue 'rows;
                }
            }
            // rule pattern constraint, when the pattern attr is a key
            if let Some(tp_cell) = rule.pattern().cell(x) {
                if !tp_cell.matches(mv) {
                    continue 'rows;
                }
            }
            if mv.is_null() {
                continue 'rows;
            }
        }
        let key: Vec<Value> = rule.lhs_m().iter().map(|&a| *tm.get(a)).collect();
        out.push((key, *tm.get(rule.rhs_m())));
    }
    out
}

/// Decide consistency of `(Σ, Dm)` relative to `region` under the
/// direct-fix semantics.
pub fn direct_consistent(rules: &RuleSet, master: &MasterIndex, region: &Region) -> DirectReport {
    for tc in region.tableau().rows() {
        let applicable = applicable_direct(rules, region, tc);
        // Group by target attribute; only same-target pairs can clash.
        for (pos1, &(i1, r1)) in applicable.iter().enumerate() {
            let set1 = rule_result_set(r1, tc, master);
            for &(i2, r2) in applicable.iter().skip(pos1) {
                if r1.rhs() != r2.rhs() {
                    continue;
                }
                let set2 = if i1 == i2 {
                    set1.clone()
                } else {
                    rule_result_set(r2, tc, master)
                };
                // Join on the shared R-side key attributes.
                let shared: Vec<AttrId> = r1
                    .lhs()
                    .iter()
                    .copied()
                    .filter(|a| r2.lhs().contains(a))
                    .collect();
                let proj1: Vec<usize> = shared
                    .iter()
                    .map(|a| r1.lhs().iter().position(|x| x == a).unwrap())
                    .collect();
                let proj2: Vec<usize> = shared
                    .iter()
                    .map(|a| r2.lhs().iter().position(|x| x == a).unwrap())
                    .collect();
                let mut seen: FxHashMap<Vec<Value>, Vec<&Value>> = FxHashMap::default();
                for (key, b) in &set1 {
                    let jk: Vec<Value> = proj1.iter().map(|&i| key[i]).collect();
                    seen.entry(jk).or_default().push(b);
                }
                for (key, b) in &set2 {
                    let jk: Vec<Value> = proj2.iter().map(|&i| key[i]).collect();
                    if let Some(bs) = seen.get(&jk) {
                        if let Some(other) = bs.iter().find(|v| **v != b) {
                            return DirectReport {
                                consistent: false,
                                conflict: Some(DirectConflict {
                                    rules: (i1, i2),
                                    attr: r1.rhs(),
                                    values: (*(*other), *b),
                                }),
                                uncovered: AttrSet::EMPTY,
                            };
                        }
                    }
                }
            }
        }
    }
    DirectReport {
        consistent: true,
        conflict: None,
        uncovered: AttrSet::EMPTY,
    }
}

/// Decide whether `region` is a certain region under the direct-fix
/// semantics: consistency plus, for each `B ∈ R \ Z` and each tableau
/// row, an applicable rule fixing `B` whose key is pinned to constants
/// by `tc` and matched by at least one master tuple (condition (2) in
/// the proof of Theorem 5).
pub fn direct_covers(rules: &RuleSet, master: &MasterIndex, region: &Region) -> DirectReport {
    direct_covers_with(rules, master, region, None)
}

/// [`direct_covers`] with an optional compiled [`RulePlan`].
///
/// The support check only fires for rules whose key attributes are all
/// pinned to *constants* by the tableau row — exactly the shape a hash
/// probe answers. With a plan, the `Qϕ`-non-emptiness scan over `Dm`
/// becomes one lookup of those constants in the rule's pinned full-key
/// index; without one, the full `rule_result_set` scan runs as
/// before. Verdicts are identical either way.
pub fn direct_covers_with(
    rules: &RuleSet,
    master: &MasterIndex,
    region: &Region,
    plan: Option<&RulePlan>,
) -> DirectReport {
    debug_assert!(plan.map_or(true, |p| p.len() == rules.len()));
    let consistency = direct_consistent(rules, master, region);
    if !consistency.consistent {
        return consistency;
    }
    let full = AttrSet::full(rules.r_schema().len());
    let mut uncovered = AttrSet::EMPTY;
    for b in (full - region.z_set()).iter() {
        let mut covered_everywhere = true;
        for tc in region.tableau().rows() {
            let ok = applicable_direct(rules, region, tc)
                .iter()
                .any(|&(i, rule)| {
                    rule.rhs() == b
                        && rule
                            .lhs()
                            .iter()
                            .all(|&x| matches!(tc.cell(x), Some(PatternValue::Const(_))))
                        && match plan {
                            Some(p) => plan_supports(p, i, rule, tc),
                            None => !rule_result_set(rule, tc, master).is_empty(),
                        }
                });
            if !ok {
                covered_everywhere = false;
                break;
            }
        }
        if !covered_everywhere {
            uncovered.insert(b);
        }
    }
    DirectReport {
        consistent: true,
        conflict: None,
        uncovered,
    }
}

/// Plan-backed replacement for the `!rule_result_set(..).is_empty()`
/// support check when every key cell of `tc` is a constant: verify the
/// rule's own pattern cells on key attributes accept those constants,
/// then probe the pinned full-key index with them. Equivalent to the
/// scan — both demand master rows with `tm[Xm]` equal to the (non-null)
/// constants.
fn plan_supports(
    plan: &RulePlan,
    i: usize,
    rule: &EditingRule,
    tc: &certainfix_relation::PatternTuple,
) -> bool {
    let mut probe: Vec<Value> = Vec::with_capacity(rule.lhs().len());
    for &x in rule.lhs() {
        match tc.cell(x) {
            Some(PatternValue::Const(v)) => {
                // the rule pattern may also constrain the key attribute
                if let Some(tp_cell) = rule.pattern().cell(x) {
                    if !tp_cell.matches(v) {
                        return false;
                    }
                }
                probe.push(*v);
            }
            _ => return false,
        }
    }
    !plan.lookup(i, &probe).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{tuple, PatternTuple, Relation, Schema, Tableau};
    use certainfix_rules::parse_rules;
    use std::sync::Arc;

    fn setup(
        master_rows: Vec<certainfix_relation::Tuple>,
        dsl: &str,
    ) -> (Arc<Schema>, RuleSet, MasterIndex) {
        let r = Schema::new("R", ["zip", "phn", "type", "ac", "city", "street"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules(dsl, &r, &rm).unwrap();
        let master = MasterIndex::new(Arc::new(Relation::new(rm, master_rows).unwrap()));
        (r, rules, master)
    }

    fn region(r: &Schema, z: &[&str], rows: Vec<PatternTuple>) -> Region {
        Region::new(
            z.iter().map(|n| r.attr(n).unwrap()).collect(),
            Tableau::new(rows),
        )
        .unwrap()
    }

    #[test]
    fn consistent_when_master_is_functional() {
        let (r, rules, master) = setup(
            vec![
                tuple!["Z1", "P1", 1, "131", "Edi", "Elm"],
                tuple!["Z2", "P2", 1, "020", "Lnd", "Oak"],
            ],
            "p1: match zip ~ zip set city := city\np2: match phn ~ phn set city := city",
        );
        let reg = region(
            &r,
            &["zip", "phn"],
            vec![PatternTuple::new(vec![
                (
                    r.attr("zip").unwrap(),
                    PatternValue::Const(Value::str("Z1")),
                ),
                (
                    r.attr("phn").unwrap(),
                    PatternValue::Const(Value::str("P1")),
                ),
            ])],
        );
        let rep = direct_consistent(&rules, &master, &reg);
        assert!(rep.consistent);
    }

    #[test]
    fn cross_rule_conflict_found() {
        // zip Z1 says Edi, phn P1 says Lnd (they belong to different
        // master tuples but a marked input can carry both keys).
        let (r, rules, master) = setup(
            vec![
                tuple!["Z1", "PX", 1, "131", "Edi", "Elm"],
                tuple!["Z9", "P1", 1, "020", "Lnd", "Oak"],
            ],
            "p1: match zip ~ zip set city := city\np2: match phn ~ phn set city := city",
        );
        let reg = region(
            &r,
            &["zip", "phn"],
            vec![PatternTuple::new(vec![
                (
                    r.attr("zip").unwrap(),
                    PatternValue::Const(Value::str("Z1")),
                ),
                (
                    r.attr("phn").unwrap(),
                    PatternValue::Const(Value::str("P1")),
                ),
            ])],
        );
        let rep = direct_consistent(&rules, &master, &reg);
        assert!(!rep.consistent);
        let c = rep.conflict.unwrap();
        assert_eq!(c.attr, r.attr("city").unwrap());
    }

    #[test]
    fn within_rule_conflict_found() {
        // One rule, two master rows with the same key, different city.
        let (r, rules, master) = setup(
            vec![
                tuple!["Z1", "P1", 1, "131", "Edi", "Elm"],
                tuple!["Z1", "P2", 1, "131", "Lnd", "Oak"],
            ],
            "p1: match zip ~ zip set city := city",
        );
        let reg = region(
            &r,
            &["zip"],
            vec![PatternTuple::new(vec![(
                r.attr("zip").unwrap(),
                PatternValue::Const(Value::str("Z1")),
            )])],
        );
        let rep = direct_consistent(&rules, &master, &reg);
        assert!(!rep.consistent);
        let c = rep.conflict.unwrap();
        assert_eq!(c.rules.0, c.rules.1);
    }

    #[test]
    fn pattern_filters_prevent_false_conflicts() {
        // The two rules fire on disjoint type values: no conflict even
        // though their prescriptions differ.
        let (r, rules, master) = setup(
            vec![
                tuple!["Z1", "P1", 1, "131", "Edi", "Elm"],
                tuple!["Z1", "P1", 2, "020", "Lnd", "Oak"],
            ],
            "p1: match zip ~ zip, type ~ type set city := city when type = 1\n\
             p2: match zip ~ zip, type ~ type set city := city when type = 2",
        );
        // tc pins type = 1: only p1 compatible.
        let reg = region(
            &r,
            &["zip", "type"],
            vec![PatternTuple::new(vec![
                (
                    r.attr("zip").unwrap(),
                    PatternValue::Const(Value::str("Z1")),
                ),
                (r.attr("type").unwrap(), PatternValue::Const(Value::int(1))),
            ])],
        );
        let rep = direct_consistent(&rules, &master, &reg);
        assert!(rep.consistent);
    }

    #[test]
    fn coverage_requires_constant_keys_and_support() {
        let (r, rules, master) = setup(
            vec![tuple!["Z1", "P1", 1, "131", "Edi", "Elm"]],
            "p1: match zip ~ zip set city := city, ac := ac, street := street\n\
             p2: match phn ~ phn set type := type",
        );
        // Row pins zip and phn to master values: everything except the
        // Z attributes is covered.
        let reg = region(
            &r,
            &["zip", "phn"],
            vec![PatternTuple::new(vec![
                (
                    r.attr("zip").unwrap(),
                    PatternValue::Const(Value::str("Z1")),
                ),
                (
                    r.attr("phn").unwrap(),
                    PatternValue::Const(Value::str("P1")),
                ),
            ])],
        );
        let rep = direct_covers(&rules, &master, &reg);
        assert!(rep.consistent);
        assert!(rep.uncovered.is_empty(), "uncovered: {rep:?}");

        // A wildcard zip can't guarantee master support: city/ac/street
        // become uncovered.
        let reg2 = region(
            &r,
            &["zip", "phn"],
            vec![PatternTuple::new(vec![(
                r.attr("phn").unwrap(),
                PatternValue::Const(Value::str("P1")),
            )])],
        );
        let rep2 = direct_covers(&rules, &master, &reg2);
        assert!(rep2.consistent);
        assert!(rep2.uncovered.contains(r.attr("city").unwrap()));
        assert!(!rep2.uncovered.contains(r.attr("type").unwrap()));
    }

    /// The plan-probed coverage check agrees with the full-scan check
    /// on covered, uncovered, and unmatched-key regions.
    #[test]
    fn plan_backed_coverage_matches_scan() {
        use certainfix_rules::RulePlan;
        let (r, rules, master) = setup(
            vec![
                tuple!["Z1", "P1", 1, "131", "Edi", "Elm"],
                tuple!["Z2", "P2", 2, "020", "Lnd", "Oak"],
            ],
            "p1: match zip ~ zip set city := city, ac := ac, street := street\n\
             p2: match phn ~ phn set type := type\n\
             p3: match zip ~ zip, type ~ type set street := street when type = 1",
        );
        let plan = RulePlan::compile(&rules, &master);
        let regions = [
            region(
                &r,
                &["zip", "phn", "type"],
                vec![PatternTuple::new(vec![
                    (
                        r.attr("zip").unwrap(),
                        PatternValue::Const(Value::str("Z1")),
                    ),
                    (
                        r.attr("phn").unwrap(),
                        PatternValue::Const(Value::str("P1")),
                    ),
                    (r.attr("type").unwrap(), PatternValue::Const(Value::int(1))),
                ])],
            ),
            region(
                &r,
                &["zip"],
                vec![PatternTuple::new(vec![(
                    r.attr("zip").unwrap(),
                    PatternValue::Const(Value::str("NOPE")),
                )])],
            ),
            region(
                &r,
                &["zip", "phn"],
                vec![PatternTuple::new(vec![(
                    r.attr("phn").unwrap(),
                    PatternValue::Const(Value::str("P2")),
                )])],
            ),
        ];
        for (k, reg) in regions.iter().enumerate() {
            let scan = direct_covers(&rules, &master, reg);
            let probed = direct_covers_with(&rules, &master, reg, Some(&plan));
            assert_eq!(scan.consistent, probed.consistent, "region {k}");
            assert_eq!(scan.uncovered, probed.uncovered, "region {k}");
        }
    }

    #[test]
    fn unmatched_key_leaves_attr_uncovered() {
        let (r, rules, master) = setup(
            vec![tuple!["Z1", "P1", 1, "131", "Edi", "Elm"]],
            "p1: match zip ~ zip set city := city",
        );
        let reg = region(
            &r,
            &["zip"],
            vec![PatternTuple::new(vec![(
                r.attr("zip").unwrap(),
                PatternValue::Const(Value::str("NOPE")),
            )])],
        );
        let rep = direct_covers(&rules, &master, &reg);
        assert!(rep.uncovered.contains(r.attr("city").unwrap()));
    }

    #[test]
    fn cell_compatibility_logic() {
        use PatternValue::*;
        let one = Value::int(1);
        let two = Value::int(2);
        assert!(cells_compatible(None, &Const(one)));
        assert!(cells_compatible(Some(&Wildcard), &Neq(one)));
        assert!(cells_compatible(Some(&Const(one)), &Const(one)));
        assert!(!cells_compatible(Some(&Const(one)), &Const(two)));
        assert!(!cells_compatible(Some(&Const(one)), &Neq(one)));
        assert!(!cells_compatible(Some(&Neq(one)), &Const(one)));
        assert!(cells_compatible(Some(&Neq(one)), &Const(two)));
        assert!(cells_compatible(Some(&Neq(one)), &Neq(two)));
    }
}
