//! Static analyses and deduction for editing rules (Sects. 3–5.2 of the
//! paper).
//!
//! The crate is organized around one engine and several analyses built
//! on it:
//!
//! * [`chase`] — the *unique-fix engine*: given `(Σ, Dm)`, a tuple and a
//!   validated attribute set, repeatedly applies rules per the region
//!   semantics `t →((Z,Tc),ϕ,tm) t'`, detecting the two conflict shapes
//!   of the PTIME algorithm in the proof of Theorem 4. It decides unique
//!   and certain fixes for concrete instances and powers monitoring.
//! * [`region`] — regions `(Z, Tc)` and their extension `ext(Z, Tc, ϕ)`.
//! * [`consistency`] / [`coverage`] — the consistency and coverage
//!   problems (Sect. 4.1), exact for concrete tableaux and, via bounded
//!   active-domain expansion (the construction in the proof of
//!   Theorem 4(I)), for general tableaux under a configurable budget.
//! * [`direct`] — the PTIME checks for *direct fixes* (Theorem 5).
//! * [`zproblems`] — Z-validating / Z-counting / Z-minimum (Sect. 4.2),
//!   exact for fixed `Σ` (Props. 8, 11, 15) under a budget.
//! * [`closure`](mod@closure) — schema-level attribute closure under `Σ`, the shared
//!   core of region derivation and suggestion generation.
//! * [`derive`](mod@derive) — certain-region deduction: `CompCRegion` (the heuristic
//!   of \[20\] used by the paper's framework) and the greedy `GRegion`
//!   baseline of Sect. 6, plus the quality-ranked [`RegionCatalog`].
//! * [`suggest`](mod@suggest) — applicable rules `Σ_t[Z]` (Prop. 20) and suggestion
//!   generation (Sect. 5.2).

pub mod chase;
pub mod closure;
pub mod consistency;
pub mod coverage;
pub mod derive;
pub mod direct;
pub mod error;
pub mod region;
pub mod suggest;
pub mod zproblems;

pub use chase::{Chase, ChaseResult, Conflict, ConflictKind, Fix};
pub use closure::{closure, firing_rules, ClosureTrace};
pub use consistency::{check_consistency, ConsistencyReport};
pub use coverage::{check_coverage, CoverageReport};
pub use derive::{
    comp_cregion, comp_cregion_in_mode, gregion, gregion_in_mode, DerivedRegion, RegionCatalog,
};
pub use direct::{direct_consistent, direct_covers, direct_covers_with, DirectReport};
pub use error::AnalysisError;
pub use region::Region;
pub use suggest::{
    applicable_rules, applicable_rules_with, is_suggestion, is_suggestion_with, suggest,
    suggest_with, Suggestion,
};
pub use zproblems::{z_count, z_minimum, z_validate, ZBudget};
