//! Certain-region deduction (the `CompCRegion` role of \[20\] plus the
//! greedy `GRegion` baseline of Sect. 6, Exp-1(1)).
//!
//! Finding a minimum-`Z` certain region is NP-complete and cannot be
//! approximated within `c·log n` (Theorems 12, 17), so the deduction is
//! heuristic, built on schema-level closure:
//!
//! * [`gregion`] — the paper's greedy baseline: repeatedly add the
//!   attribute that newly covers the most attributes.
//! * [`comp_cregion`] — seed with the attributes no rule can fix, run a
//!   bounded exact search over small completions (falling back to
//!   greedy), then locally minimize. Its `Z` is never larger than the
//!   greedy one.
//!
//! Rules with constant pattern cells only fire on tuples carrying those
//! constants, so region derivation enumerates *modes* — assignments of
//! pattern attributes to pattern constants (e.g. `type = 2` vs
//! `type = 1` in Example 9) — and derives one candidate region per mode.
//! [`RegionCatalog`] ranks all derived regions by a quality metric; the
//! framework seeds interaction with the best one (CRHQ) and the
//! experiments also exercise the median (CRMQ).

use std::fmt;

use certainfix_relation::{
    AttrId, AttrSet, MasterIndex, PatternTuple, PatternValue, Schema, Tableau, Tuple, Value,
};
use certainfix_rules::RuleSet;

use crate::error::AnalysisError;
use crate::region::Region;

/// Maximum number of pattern-constant modes enumerated.
const MAX_MODES: usize = 64;
/// Exact-search limit: number of candidate attributes.
const EXACT_MAX_CANDIDATES: usize = 24;
/// Exact-search limit: subset size.
const EXACT_MAX_K: usize = 4;

/// A mode: pattern attributes pinned to constants. Attributes absent
/// from the map are unconstrained.
type Mode = Vec<(AttrId, Value)>;

/// Closure under the sub-ruleset guaranteed to fire in `mode`.
fn closure_in_mode(rules: &RuleSet, mode: &Mode, z: AttrSet) -> (AttrSet, Vec<usize>) {
    let enabled: Vec<bool> = rules
        .iter()
        .map(|(_, rule)| {
            rule.lhs_p()
                .iter()
                .zip(rule.pattern().cells())
                .all(|(&a, cell)| match mode.iter().find(|(ma, _)| *ma == a) {
                    Some((_, v)) => cell.matches(v),
                    // unpinned pattern attribute: the rule is not
                    // guaranteed to fire for every marked tuple
                    None => cell.is_wildcard(),
                })
        })
        .collect();
    let mut covered = z;
    let mut fired = Vec::new();
    let mut done = vec![false; rules.len()];
    loop {
        let mut changed = false;
        for (i, rule) in rules.iter() {
            if done[i] || !enabled[i] || covered.contains(rule.rhs()) {
                continue;
            }
            if rule.premise().is_subset(&covered) {
                covered.insert(rule.rhs());
                fired.push(i);
                done[i] = true;
                changed = true;
            }
        }
        if !changed {
            return (covered, fired);
        }
    }
}

/// The paper's greedy baseline (Sect. 6, "GRegion"): at each stage
/// "choose an attribute which may fix the largest number of uncovered
/// attributes". The gain is *one-step* — the number of uncovered
/// attributes some rule fixes once `a` is added — without transitive
/// lookahead; that myopia is exactly why `GRegion` overshoots where
/// `CompCRegion` does not (Exp-1(1)).
pub fn gregion(rules: &RuleSet) -> Vec<AttrId> {
    gregion_in_mode(rules, &Vec::new())
}

/// `gregion` restricted to rules guaranteed to fire in `mode`.
pub fn gregion_in_mode(rules: &RuleSet, mode: &Mode) -> Vec<AttrId> {
    let full = AttrSet::full(rules.r_schema().len());
    let mut z: AttrSet = mode.iter().map(|&(a, _)| a).collect();
    let mut covered = closure_in_mode(rules, mode, z).0;
    while covered != full {
        // one-step gain: rules whose premise becomes satisfied by adding
        // `a`, counting their uncovered targets
        let mut best: Option<(AttrId, usize)> = None;
        for a in (full - covered).iter() {
            let with_a = covered | AttrSet::singleton(a);
            let gain: usize = rules
                .iter()
                .filter(|(_, rule)| {
                    !covered.contains(rule.rhs())
                        && rule.rhs() != a
                        && rule.premise().is_subset(&with_a)
                })
                .map(|(_, rule)| rule.rhs())
                .collect::<AttrSet>()
                .len();
            if best.map(|(_, g)| gain > g).unwrap_or(true) {
                best = Some((a, gain));
            }
        }
        let (pick, _) = best.expect("some attribute is uncovered");
        z.insert(pick);
        covered = closure_in_mode(rules, mode, z).0;
    }
    z.to_vec()
}

/// The optimized deduction (playing the role of `CompCRegion` \[20\]):
/// seed with must-have attributes, search small completions exactly,
/// fall back to greedy, then locally minimize. The result always
/// satisfies `closure(Z) = R` and `|Z| ≤ |gregion(Σ)|`.
pub fn comp_cregion(rules: &RuleSet) -> Vec<AttrId> {
    comp_cregion_in_mode(rules, &Vec::new())
}

/// `comp_cregion` restricted to rules guaranteed to fire in `mode`.
pub fn comp_cregion_in_mode(rules: &RuleSet, mode: &Mode) -> Vec<AttrId> {
    let full = AttrSet::full(rules.r_schema().len());
    let mode_attrs: AttrSet = mode.iter().map(|&(a, _)| a).collect();

    // Must-haves: mode attributes plus attributes unfixable in this mode
    // (no enabled rule targets them).
    let coverable = closure_in_mode(rules, mode, full).0; // = full, trivially
    debug_assert_eq!(coverable, full);
    let fixable: AttrSet = rules
        .iter()
        .filter(|(_, rule)| {
            rule.lhs_p()
                .iter()
                .zip(rule.pattern().cells())
                .all(|(&a, cell)| match mode.iter().find(|(ma, _)| *ma == a) {
                    Some((_, v)) => cell.matches(v),
                    None => cell.is_wildcard(),
                })
        })
        .map(|(_, rule)| rule.rhs())
        .collect();
    let seed = mode_attrs | (full - fixable);

    let mut z = if closure_in_mode(rules, mode, seed).0 == full {
        seed
    } else {
        // Candidates: attributes that appear as rule prerequisites.
        let candidates: Vec<AttrId> = rules
            .touched_attrs()
            .difference(&seed)
            .iter()
            .filter(|&a| !closure_in_mode(rules, mode, seed).0.contains(a))
            .collect();
        exact_completion(rules, mode, seed, &candidates, full)
            .unwrap_or_else(|| greedy_completion(rules, mode, seed, full))
    };

    // Local minimization: drop any attribute whose removal keeps
    // closure(Z) = R (mode attributes stay).
    for a in z.to_vec() {
        if mode_attrs.contains(a) {
            continue;
        }
        let without = z - AttrSet::singleton(a);
        if closure_in_mode(rules, mode, without).0 == full {
            z = without;
        }
    }
    z.to_vec()
}

/// Try all completions of `seed` with up to [`EXACT_MAX_K`] candidate
/// attributes, smallest first. Returns the first (hence minimum-size)
/// hit, or `None` if the search space is too large or nothing ≤ K works.
fn exact_completion(
    rules: &RuleSet,
    mode: &Mode,
    seed: AttrSet,
    candidates: &[AttrId],
    full: AttrSet,
) -> Option<AttrSet> {
    if candidates.len() > EXACT_MAX_CANDIDATES {
        return None;
    }
    #[allow(clippy::too_many_arguments)]
    fn search(
        rules: &RuleSet,
        mode: &Mode,
        seed: AttrSet,
        candidates: &[AttrId],
        full: AttrSet,
        k: usize,
        start: usize,
        picked: AttrSet,
    ) -> Option<AttrSet> {
        if k == 0 {
            let z = seed | picked;
            return (closure_in_mode(rules, mode, z).0 == full).then_some(z);
        }
        // not enough candidates left
        if candidates.len() - start < k {
            return None;
        }
        for i in start..candidates.len() {
            let next = picked | AttrSet::singleton(candidates[i]);
            if let Some(z) = search(rules, mode, seed, candidates, full, k - 1, i + 1, next) {
                return Some(z);
            }
        }
        None
    }
    (0..=EXACT_MAX_K.min(candidates.len()))
        .find_map(|k| search(rules, mode, seed, candidates, full, k, 0, AttrSet::EMPTY))
}

fn greedy_completion(rules: &RuleSet, mode: &Mode, seed: AttrSet, full: AttrSet) -> AttrSet {
    let mut z = seed;
    let mut covered = closure_in_mode(rules, mode, z).0;
    while covered != full {
        let mut best: Option<(AttrId, usize)> = None;
        for a in (full - covered).iter() {
            let gain = closure_in_mode(rules, mode, covered | AttrSet::singleton(a))
                .0
                .len();
            if best.map(|(_, g)| gain > g).unwrap_or(true) {
                best = Some((a, gain));
            }
        }
        z.insert(best.expect("uncovered attr").0);
        covered = closure_in_mode(rules, mode, z).0;
    }
    z
}

/// A deduced candidate certain region: `Z`, the mode's pattern
/// constants, the rules it relies on, and a quality score.
#[derive(Clone, Debug)]
pub struct DerivedRegion {
    z: Vec<AttrId>,
    z_set: AttrSet,
    mode: PatternTuple,
    fired: Vec<usize>,
    quality: f64,
}

impl DerivedRegion {
    /// The attribute list `Z`.
    pub fn z(&self) -> &[AttrId] {
        &self.z
    }

    /// `Z` as a set.
    pub fn z_set(&self) -> AttrSet {
        self.z_set
    }

    /// The mode pattern (constants on pattern attributes).
    pub fn mode(&self) -> &PatternTuple {
        &self.mode
    }

    /// Indices of the rules the region's coverage relies on.
    pub fn fired_rules(&self) -> &[usize] {
        &self.fired
    }

    /// Quality score in `[0, 1]`; higher is better (smaller `Z`).
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// Does `t` satisfy the mode's pattern constants? (The full
    /// certainty test for `t` is the runtime chase; this is the cheap
    /// syntactic gate.)
    pub fn mode_matches(&self, t: &Tuple) -> bool {
        self.mode.matches(t)
    }

    /// Materialize an explicit region `(Z, Tc)` with up to `limit`
    /// pattern rows instantiated from master tuples, in the style of
    /// Example 9: key attributes take the master's (λ-mapped) values,
    /// mode attributes take their constants, everything else `_`.
    pub fn to_region(
        &self,
        rules: &RuleSet,
        master: &MasterIndex,
        limit: usize,
    ) -> Result<Region, AnalysisError> {
        let mut rows = Vec::new();
        for tm in master.relation().iter().take(limit) {
            let mut cells: Vec<(AttrId, PatternValue)> = Vec::new();
            for &a in &self.z {
                if let Some(cell) = self.mode.cell(a) {
                    cells.push((a, cell.clone()));
                    continue;
                }
                // first firing rule using `a` as a key gives the master
                // column to draw the constant from
                let mapped = self
                    .fired
                    .iter()
                    .find_map(|&i| rules.rule(i).master_attr_for(a));
                if let Some(ma) = mapped {
                    let v = tm.get(ma);
                    if !v.is_null() {
                        cells.push((a, PatternValue::Const(*v)));
                    }
                }
                // otherwise: implicit wildcard
            }
            rows.push(PatternTuple::new(cells));
        }
        rows.dedup();
        Region::new(self.z.clone(), Tableau::new(rows))
    }

    /// Render against a schema.
    pub fn render(&self, schema: &Schema) -> String {
        format!(
            "Z = {} mode {} (quality {:.3})",
            schema.render_attrs(&self.z),
            self.mode.render(schema),
            self.quality
        )
    }
}

impl fmt::Display for DerivedRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "|Z| = {} (quality {:.3})", self.z.len(), self.quality)
    }
}

/// All regions deduced from `(Σ, Dm)`, ranked by quality (descending).
#[derive(Clone, Debug)]
pub struct RegionCatalog {
    regions: Vec<DerivedRegion>,
}

impl RegionCatalog {
    /// Deduce the catalog: enumerate pattern modes, derive the optimized
    /// and the greedy `Z` per mode, score and rank.
    pub fn build(rules: &RuleSet, _master: &MasterIndex) -> RegionCatalog {
        let r_len = rules.r_schema().len();
        let mut regions: Vec<DerivedRegion> = Vec::new();
        for mode in enumerate_modes(rules) {
            for z in [
                comp_cregion_in_mode(rules, &mode),
                gregion_in_mode(rules, &mode),
            ] {
                let z_set: AttrSet = z.iter().copied().collect();
                let (covered, fired) = closure_in_mode(rules, &mode, z_set);
                if covered != AttrSet::full(r_len) {
                    continue;
                }
                let quality = (r_len - z.len()) as f64 / r_len as f64;
                let mode_pattern = PatternTuple::new(
                    mode.iter()
                        .map(|(a, v)| (*a, PatternValue::Const(*v)))
                        .collect(),
                );
                let candidate = DerivedRegion {
                    z,
                    z_set,
                    mode: mode_pattern,
                    fired,
                    quality,
                };
                if !regions
                    .iter()
                    .any(|r| r.z_set == candidate.z_set && r.mode == candidate.mode)
                {
                    regions.push(candidate);
                }
            }
        }
        regions.sort_by(|a, b| {
            b.quality
                .partial_cmp(&a.quality)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.z.len().cmp(&b.z.len()))
                .then_with(|| a.z_set.bits().cmp(&b.z_set.bits()))
        });
        RegionCatalog { regions }
    }

    /// The highest-quality region (CRHQ), if any.
    pub fn best(&self) -> Option<&DerivedRegion> {
        self.regions.first()
    }

    /// The median-quality region (CRMQ), if any.
    pub fn median(&self) -> Option<&DerivedRegion> {
        if self.regions.is_empty() {
            None
        } else {
            self.regions.get(self.regions.len() / 2)
        }
    }

    /// All regions, best first.
    pub fn iter(&self) -> impl Iterator<Item = &DerivedRegion> {
        self.regions.iter()
    }

    /// Number of deduced regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// `true` iff no region was deduced.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// Enumerate pattern modes: assignments of constants to the attributes
/// constrained by `Const` cells in rule patterns. Each attribute may
/// also stay unpinned. Capped at [`MAX_MODES`] (excess modes dropped,
/// all-unpinned always included).
fn enumerate_modes(rules: &RuleSet) -> Vec<Mode> {
    // attr -> distinct constants from Const cells
    let mut attrs: Vec<(AttrId, Vec<Value>)> = Vec::new();
    for (_, rule) in rules.iter() {
        for (&a, cell) in rule.lhs_p().iter().zip(rule.pattern().cells()) {
            if let PatternValue::Const(v) = cell {
                match attrs.iter_mut().find(|(x, _)| *x == a) {
                    Some((_, vs)) => {
                        if !vs.contains(v) {
                            vs.push(*v);
                        }
                    }
                    None => attrs.push((a, vec![*v])),
                }
            }
        }
    }
    let mut modes: Vec<Mode> = vec![Vec::new()];
    for (a, vs) in attrs {
        let mut next = Vec::new();
        for mode in &modes {
            // unpinned
            next.push(mode.clone());
            for v in &vs {
                let mut m = mode.clone();
                m.push((a, *v));
                next.push(m);
            }
            if next.len() >= MAX_MODES {
                break;
            }
        }
        modes = next;
        modes.truncate(MAX_MODES);
    }
    modes
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{tuple, Relation};
    use certainfix_rules::parse_rules;
    use std::sync::Arc;

    fn fig1() -> (Arc<Schema>, RuleSet, MasterIndex) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        let rules = parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            phi4: match AC ~ AC set city := city when AC = '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = Relation::new(
            rm,
            vec![
                tuple![
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "51 Elm Row",
                    "Edi",
                    "EH7 4AH",
                    "11/11/55",
                    "M"
                ],
                tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "NW1 6XE",
                    "25/12/67",
                    "M"
                ],
            ],
        )
        .unwrap();
        (r.clone(), rules, MasterIndex::new(Arc::new(master)))
    }

    fn names(r: &Schema, ids: &[AttrId]) -> Vec<String> {
        ids.iter().map(|&a| r.attr_name(a).to_string()).collect()
    }

    #[test]
    fn example9_mode_type2_region() {
        // In mode type = 2, the minimal certain Z is
        // {zip, phn, type, item} (Z_zmi of Example 9).
        let (r, rules, _m) = fig1();
        let mode: Mode = vec![(r.attr("type").unwrap(), Value::int(2))];
        let z = comp_cregion_in_mode(&rules, &mode);
        assert_eq!(names(&r, &z), vec!["phn", "type", "zip", "item"]);
    }

    #[test]
    fn example9_mode_type1_region() {
        // In mode type = 1 (with AC unpinned the ϕ3 family is not
        // guaranteed), fn/ln are unfixable: Z_L of Example 9 adds them.
        let (r, rules, _m) = fig1();
        let mode: Mode = vec![(r.attr("type").unwrap(), Value::int(1))];
        let z = comp_cregion_in_mode(&rules, &mode);
        let z_names = names(&r, &z);
        // fn, ln unfixable in this mode (ϕ2 needs type = 2)
        assert!(z_names.contains(&"fn".to_string()));
        assert!(z_names.contains(&"ln".to_string()));
        assert!(z_names.contains(&"item".to_string()));
        assert!(z_names.contains(&"type".to_string()));
    }

    #[test]
    fn comp_cregion_never_larger_than_gregion() {
        let (_r, rules, _m) = fig1();
        for mode in enumerate_modes(&rules) {
            let opt = comp_cregion_in_mode(&rules, &mode);
            let greedy = gregion_in_mode(&rules, &mode);
            assert!(
                opt.len() <= greedy.len(),
                "mode {mode:?}: {opt:?} vs {greedy:?}"
            );
        }
    }

    #[test]
    fn closures_reach_full_for_derived_z() {
        let (r, rules, _m) = fig1();
        for mode in enumerate_modes(&rules) {
            let z: AttrSet = comp_cregion_in_mode(&rules, &mode).into_iter().collect();
            let (covered, _) = closure_in_mode(&rules, &mode, z);
            assert_eq!(covered, AttrSet::full(r.len()));
        }
    }

    #[test]
    fn mode_enumeration_contains_paper_modes() {
        let (r, rules, _m) = fig1();
        let modes = enumerate_modes(&rules);
        let ty = r.attr("type").unwrap();
        assert!(modes.iter().any(Vec::is_empty));
        assert!(modes.iter().any(|m| m.contains(&(ty, Value::int(2)))));
        assert!(modes.iter().any(|m| m.contains(&(ty, Value::int(1)))));
        // AC = 0800 from ϕ4 is a mode constant too
        let ac = r.attr("AC").unwrap();
        assert!(modes.iter().any(|m| m.contains(&(ac, Value::str("0800")))));
    }

    #[test]
    fn catalog_ranks_by_quality() {
        let (r, rules, master) = fig1();
        let catalog = RegionCatalog::build(&rules, &master);
        assert!(!catalog.is_empty());
        let best = catalog.best().unwrap();
        // CRHQ is the smallest-Z region: {phn, type, zip, item}
        assert_eq!(best.z().len(), 4, "best: {}", best.render(&r));
        let median = catalog.median().unwrap();
        assert!(median.quality() <= best.quality());
        // qualities are non-increasing
        let qs: Vec<f64> = catalog.iter().map(|r| r.quality()).collect();
        assert!(qs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn materialized_region_matches_example9() {
        let (r, rules, master) = fig1();
        let ty = r.attr("type").unwrap();
        let catalog = RegionCatalog::build(&rules, &master);
        let best = catalog
            .iter()
            .find(|reg| {
                reg.mode().cell(ty) == Some(&PatternValue::Const(Value::int(2)))
                    && reg.z().len() == 4
            })
            .expect("type=2 region derived");
        let region = best.to_region(&rules, &master, 100).unwrap();
        assert_eq!(region.tableau().len(), 2, "one row per master tuple");
        // t1 corrected (zip EH7 4AH, phn 079172485, type 2) is marked
        let t1 = tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ];
        assert!(region.marks(&t1));
        // a type-1 tuple is not marked
        let t2 = tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            1,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ];
        assert!(!region.marks(&t2));
    }

    #[test]
    fn mode_matching_gate() {
        let (r, rules, master) = fig1();
        let catalog = RegionCatalog::build(&rules, &master);
        let ty = r.attr("type").unwrap();
        let region = catalog
            .iter()
            .find(|reg| reg.mode().cell(ty) == Some(&PatternValue::Const(Value::int(2))))
            .unwrap();
        let mut t = tuple!["a", "b", "c", "d", 2, "e", "f", "g", "h"];
        assert!(region.mode_matches(&t));
        t.set(ty, Value::int(1));
        assert!(!region.mode_matches(&t));
    }

    #[test]
    fn exact_completion_beats_greedy_on_pairwise_dependency() {
        // Greedy picks singletons with gain 1 each; the optimum is the
        // pair {a, b} jointly enabling one rule that covers c..f.
        let r = Schema::new("R", ["a", "b", "c", "d", "e", "f"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules(
            r#"
            r1: match a ~ a, b ~ b set c := c, d := d, e := e, f := f
            r2: match c ~ c set d := d
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let opt = comp_cregion(&rules);
        assert_eq!(names(&r, &opt), vec!["a", "b"]);
        let greedy = gregion(&rules);
        assert!(opt.len() <= greedy.len());
    }
}
