//! The Z-problems of Sect. 4.2: Z-validating, Z-counting, Z-minimum.
//!
//! All three are intractable in general (NP-complete, #P-complete,
//! NP-complete + approximation-hard; Theorems 6, 9, 12, 17) but PTIME
//! for a *fixed* rule set (Props. 8, 11, 15). The algorithms here are
//! the fixed-Σ ones: enumerate candidate pattern tuples over the
//! decision domain of each rule-relevant attribute of `Z` and decide
//! each candidate with the coverage checker. The enumeration size is
//! `O(|dom|^|Z ∩ Z_Σ|)` — polynomial for fixed Σ, exponential otherwise
//! — and is guarded by an explicit budget.
//!
//! Following the observation in the proof of Theorem 6, only pattern
//! tuples made of *constants* need to be enumerated for Z-validating
//! and Z-minimum (a certain region exists iff one with a constant
//! single-row tableau does). Z-counting likewise counts constant
//! patterns over the decision domain, with the single fresh
//! representative playing the role of the canonical variable `v` of
//! Sect. 4.2; negated canonical patterns are not enumerated.

use certainfix_relation::{AttrId, AttrSet, MasterIndex, PatternTuple, PatternValue, Value};
use certainfix_rules::RuleSet;

use crate::closure::closure;
use crate::consistency::decision_domain;
use crate::coverage::check_coverage;
use crate::error::AnalysisError;
use crate::region::Region;

/// Budgets for the Z-problem enumerations.
#[derive(Clone, Copy, Debug)]
pub struct ZBudget {
    /// Max candidate pattern tuples per `Z`.
    pub max_patterns: u64,
    /// Budget forwarded to each coverage check (row instantiations).
    pub max_chases: u64,
}

impl Default for ZBudget {
    fn default() -> Self {
        ZBudget {
            max_patterns: 100_000,
            max_chases: 100_000,
        }
    }
}

/// Candidate enumeration: constants from the decision domain on
/// `Z ∩ Z_Σ`, implicit wildcard elsewhere.
fn candidate_patterns(
    rules: &RuleSet,
    master: &MasterIndex,
    z: &[AttrId],
    budget: &ZBudget,
) -> Result<Vec<PatternTuple>, AnalysisError> {
    let relevant = rules.touched_attrs();
    let mut slots: Vec<(AttrId, Vec<Value>)> = Vec::new();
    let mut total: u128 = 1;
    for &a in z {
        if relevant.contains(a) {
            let dom = decision_domain(rules, master, a);
            total = total.saturating_mul(dom.len().max(1) as u128);
            slots.push((a, dom));
        }
    }
    if total > budget.max_patterns as u128 {
        return Err(AnalysisError::BudgetExceeded {
            what: "candidate pattern tuples",
            needed: total,
            budget: budget.max_patterns,
        });
    }
    let mut out: Vec<PatternTuple> = vec![PatternTuple::empty()];
    for (a, dom) in slots {
        let mut next = Vec::with_capacity(out.len() * dom.len());
        for tc in &out {
            for v in &dom {
                next.push(tc.refined_with(&[(a, PatternValue::Const(*v))]));
            }
        }
        out = next;
    }
    Ok(out)
}

/// Z-validating: does a non-empty `Tc` exist making `(Z, Tc)` a certain
/// region for `(Σ, Dm)`? Returns a witness pattern tuple if so.
pub fn z_validate(
    rules: &RuleSet,
    master: &MasterIndex,
    z: &[AttrId],
    budget: &ZBudget,
) -> Result<Option<PatternTuple>, AnalysisError> {
    // Necessary condition (cheap): optimistic closure must reach R.
    let z_set: AttrSet = z.iter().copied().collect();
    if closure(rules, z_set).covered != AttrSet::full(rules.r_schema().len()) {
        return Ok(None);
    }
    for tc in candidate_patterns(rules, master, z, budget)? {
        let region = Region::new(
            z.to_vec(),
            certainfix_relation::Tableau::new(vec![tc.clone()]),
        )?;
        let report = check_coverage(rules, master, &region, budget.max_chases)?;
        if report.certain {
            return Ok(Some(tc));
        }
    }
    Ok(None)
}

/// Z-counting: how many candidate pattern tuples make `(Z, {tc})` a
/// certain region?
pub fn z_count(
    rules: &RuleSet,
    master: &MasterIndex,
    z: &[AttrId],
    budget: &ZBudget,
) -> Result<u64, AnalysisError> {
    let z_set: AttrSet = z.iter().copied().collect();
    if closure(rules, z_set).covered != AttrSet::full(rules.r_schema().len()) {
        return Ok(0);
    }
    let mut count = 0u64;
    for tc in candidate_patterns(rules, master, z, budget)? {
        let region = Region::new(z.to_vec(), certainfix_relation::Tableau::new(vec![tc]))?;
        if check_coverage(rules, master, &region, budget.max_chases)?.certain {
            count += 1;
        }
    }
    Ok(count)
}

/// Z-minimum: a smallest `Z` with `|Z| ≤ k` admitting a non-empty
/// certain tableau, or `None`.
///
/// Attributes no rule fixes are forced into `Z`; the completion is
/// searched over rule-relevant attributes in ascending subset size,
/// each candidate decided by [`z_validate`].
pub fn z_minimum(
    rules: &RuleSet,
    master: &MasterIndex,
    k: usize,
    budget: &ZBudget,
) -> Result<Option<Vec<AttrId>>, AnalysisError> {
    let full = AttrSet::full(rules.r_schema().len());
    let seed = rules.unfixable_attrs();
    if seed.len() > k {
        return Ok(None);
    }
    let candidates: Vec<AttrId> = (rules.touched_attrs() - seed).to_vec();

    #[allow(clippy::too_many_arguments)]
    fn search(
        rules: &RuleSet,
        master: &MasterIndex,
        budget: &ZBudget,
        candidates: &[AttrId],
        seed: AttrSet,
        full: AttrSet,
        extra: usize,
        start: usize,
        picked: AttrSet,
    ) -> Result<Option<Vec<AttrId>>, AnalysisError> {
        if extra == 0 {
            let z = seed | picked;
            if closure(rules, z).covered != full {
                return Ok(None);
            }
            let z_vec = z.to_vec();
            if z_validate(rules, master, &z_vec, budget)?.is_some() {
                return Ok(Some(z_vec));
            }
            return Ok(None);
        }
        if candidates.len() - start < extra {
            return Ok(None);
        }
        for i in start..candidates.len() {
            let next = picked | AttrSet::singleton(candidates[i]);
            if let Some(z) = search(
                rules,
                master,
                budget,
                candidates,
                seed,
                full,
                extra - 1,
                i + 1,
                next,
            )? {
                return Ok(Some(z));
            }
        }
        Ok(None)
    }

    for extra in 0..=(k - seed.len()).min(candidates.len()) {
        if let Some(z) = search(
            rules,
            master,
            budget,
            &candidates,
            seed,
            full,
            extra,
            0,
            AttrSet::EMPTY,
        )? {
            return Ok(Some(z));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{tuple, Relation, Schema};
    use certainfix_rules::parse_rules;
    use std::sync::Arc;

    /// Small functional master: key a determines b, c; key b determines c.
    fn simple() -> (Arc<Schema>, RuleSet, MasterIndex) {
        let r = Schema::new("R", ["a", "b", "c"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules(
            "r1: match a ~ a set b := b, c := c\nr2: match b ~ b set c := c",
            &r,
            &rm,
        )
        .unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(rm, vec![tuple![1, 10, 100], tuple![2, 20, 200]]).unwrap(),
        ));
        (r, rules, master)
    }

    #[test]
    fn z_validate_finds_witness() {
        let (r, rules, master) = simple();
        let z = vec![r.attr("a").unwrap()];
        let witness = z_validate(&rules, &master, &z, &ZBudget::default())
            .unwrap()
            .expect("Z = {a} admits a certain tableau");
        // the witness pins a to a master key (1 or 2)
        let cell = witness.cell(r.attr("a").unwrap()).unwrap();
        assert!(
            matches!(cell, PatternValue::Const(v) if v == &Value::int(1) || v == &Value::int(2))
        );
    }

    #[test]
    fn z_validate_rejects_insufficient_z() {
        let (r, rules, master) = simple();
        // Z = {b}: rule r2 covers c but nothing covers a.
        let z = vec![r.attr("b").unwrap()];
        assert!(z_validate(&rules, &master, &z, &ZBudget::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn z_count_counts_master_keys() {
        let (r, rules, master) = simple();
        let z = vec![r.attr("a").unwrap()];
        // dom(a) = {1, 2, fresh}; 1 and 2 yield certain regions, fresh
        // matches no master tuple.
        assert_eq!(
            z_count(&rules, &master, &z, &ZBudget::default()).unwrap(),
            2
        );
    }

    #[test]
    fn z_count_zero_when_closure_insufficient() {
        let (r, rules, master) = simple();
        let z = vec![r.attr("c").unwrap()];
        assert_eq!(
            z_count(&rules, &master, &z, &ZBudget::default()).unwrap(),
            0
        );
    }

    #[test]
    fn z_minimum_finds_singleton() {
        let (r, rules, master) = simple();
        let z = z_minimum(&rules, &master, 3, &ZBudget::default())
            .unwrap()
            .expect("minimum exists");
        assert_eq!(z, vec![r.attr("a").unwrap()]);
        // too-small k
        assert!(z_minimum(&rules, &master, 0, &ZBudget::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn budget_guards_enumeration() {
        let (r, rules, master) = simple();
        let z = vec![r.attr("a").unwrap(), r.attr("b").unwrap()];
        let tight = ZBudget {
            max_patterns: 2,
            max_chases: 100,
        };
        // dom(a) × dom(b) = 3 × 3 > 2
        assert!(matches!(
            z_validate(&rules, &master, &z, &tight),
            Err(AnalysisError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn inconsistent_master_blocks_validation() {
        // Same key, conflicting prescriptions: no tableau can help the
        // conflicting key, but the OTHER key still validates.
        let r = Schema::new("R", ["a", "b"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules("r1: match a ~ a set b := b", &r, &rm).unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(rm, vec![tuple![1, 10], tuple![1, 11], tuple![2, 20]]).unwrap(),
        ));
        let z = vec![r.attr("a").unwrap()];
        let witness = z_validate(&rules, &master, &z, &ZBudget::default())
            .unwrap()
            .expect("key 2 is clean");
        assert_eq!(
            witness.cell(r.attr("a").unwrap()),
            Some(&PatternValue::Const(Value::int(2)))
        );
        // counting sees exactly one valid pattern
        assert_eq!(
            z_count(&rules, &master, &z, &ZBudget::default()).unwrap(),
            1
        );
    }
}
