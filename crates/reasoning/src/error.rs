//! Errors for the analysis layer.

use std::fmt;

/// Errors raised by the static analyses.
///
/// The general consistency/coverage/Z problems are coNP-/NP-/#P-hard
/// (Theorems 1, 2, 6, 9, 12); the exact algorithms here enumerate
/// bounded active-domain instantiations and refuse to run past an
/// explicit budget rather than silently taking exponential time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// An enumeration would exceed the configured budget.
    BudgetExceeded {
        /// What was being enumerated.
        what: &'static str,
        /// Instantiations needed (may be a lower bound).
        needed: u128,
        /// The configured cap.
        budget: u64,
    },
    /// A region row constrains a rule-relevant attribute with a
    /// non-constant cell and expansion was disabled.
    NotConcrete {
        /// The attribute's name.
        attr: String,
    },
    /// `Z` contains an attribute id outside the schema.
    BadRegion {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::BudgetExceeded {
                what,
                needed,
                budget,
            } => write!(
                f,
                "analysis budget exceeded while enumerating {what}: needs {needed} instantiations, budget is {budget}"
            ),
            AnalysisError::NotConcrete { attr } => write!(
                f,
                "pattern cell on rule-relevant attribute `{attr}` is not a constant; enable expansion or make the tableau concrete"
            ),
            AnalysisError::BadRegion { detail } => write!(f, "malformed region: {detail}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = AnalysisError::BudgetExceeded {
            what: "pattern instantiations",
            needed: 1_000_000,
            budget: 1000,
        };
        assert!(e.to_string().contains("1000000"));
        let e = AnalysisError::NotConcrete { attr: "AC".into() };
        assert!(e.to_string().contains("`AC`"));
        let e = AnalysisError::BadRegion {
            detail: "dup".into(),
        };
        assert!(e.to_string().contains("dup"));
    }
}
