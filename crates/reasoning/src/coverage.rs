//! The coverage problem (Sect. 4.1): is `(Z, Tc)` a *certain region*?
//!
//! `(Z, Tc)` is a certain region for `(Σ, Dm)` iff every marked tuple
//! has a certain fix — a unique fix whose covered attribute set is all
//! of `R`. Shares the active-domain expansion machinery (and budget)
//! with [`crate::consistency`].

use certainfix_relation::{AttrSet, MasterIndex, Tuple};
use certainfix_rules::RuleSet;

use crate::chase::{Chase, ChaseResult, Conflict};
use crate::closure::closure;
use crate::consistency::RowEnumerator;
use crate::error::AnalysisError;
use crate::region::Region;

/// Why a marked tuple failed to receive a certain fix.
#[derive(Clone, Debug)]
pub enum CoverageFailure {
    /// No unique fix (consistency violation).
    Conflict(Tuple, Conflict),
    /// A unique fix exists but leaves attributes uncovered.
    Uncovered(Tuple, AttrSet),
}

/// Result of a coverage check.
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// `true` iff the region is a certain region for `(Σ, Dm)`.
    pub certain: bool,
    /// First failure found, if any.
    pub failure: Option<CoverageFailure>,
    /// Number of instantiations chased.
    pub checked: u64,
}

/// Decide whether `region` is a certain region for `(Σ, Dm)`.
///
/// Fast path: if `closure(Z) ≠ R` at the schema level, no instantiation
/// can cover `R` (the closure over-approximates coverage), so the
/// region is rejected without enumeration — unless the tableau is
/// empty, in which case the region is vacuously certain.
pub fn check_coverage(
    rules: &RuleSet,
    master: &MasterIndex,
    region: &Region,
    budget: u64,
) -> Result<CoverageReport, AnalysisError> {
    let full = AttrSet::full(rules.r_schema().len());
    if region.tableau().is_empty() {
        return Ok(CoverageReport {
            certain: true,
            failure: None,
            checked: 0,
        });
    }
    let reachable = closure(rules, region.z_set()).covered;
    if reachable != full {
        return Ok(CoverageReport {
            certain: false,
            failure: Some(CoverageFailure::Uncovered(
                Tuple::nulls(rules.r_schema().len()),
                full - reachable,
            )),
            checked: 0,
        });
    }
    let chase = Chase::new(rules, master);
    let mut checked = 0u64;
    let mut enumerator = RowEnumerator::new(rules, master, region, budget)?;
    while let Some(tuple) = enumerator.next_instance() {
        checked += 1;
        match chase.run(&tuple, region.z_set()) {
            ChaseResult::Conflict(c) => {
                return Ok(CoverageReport {
                    certain: false,
                    failure: Some(CoverageFailure::Conflict(tuple, c)),
                    checked,
                });
            }
            ChaseResult::Fixed(fix) => {
                if fix.validated != full {
                    return Ok(CoverageReport {
                        certain: false,
                        failure: Some(CoverageFailure::Uncovered(tuple, full - fix.validated)),
                        checked,
                    });
                }
            }
        }
    }
    Ok(CoverageReport {
        certain: true,
        failure: None,
        checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::DEFAULT_BUDGET;
    use certainfix_relation::{
        tuple, AttrId, PatternTuple, PatternValue, Relation, Schema, Tableau, Value,
    };
    use certainfix_rules::parse_rules;
    use std::sync::Arc;

    fn fig1() -> (Arc<Schema>, RuleSet, MasterIndex) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        let rules = parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            phi4: match AC ~ AC set city := city when AC = '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = Relation::new(
            rm,
            vec![
                tuple![
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "51 Elm Row",
                    "Edi",
                    "EH7 4AH",
                    "11/11/55",
                    "M"
                ],
                tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "NW1 6XE",
                    "25/12/67",
                    "M"
                ],
            ],
        )
        .unwrap();
        (r.clone(), rules, MasterIndex::new(Arc::new(master)))
    }

    fn z(r: &Schema, names: &[&str]) -> Vec<AttrId> {
        names.iter().map(|n| r.attr(n).unwrap()).collect()
    }

    #[test]
    fn example9_zzmi_is_a_certain_region() {
        // (Z_zmi, T_zmi): Z = (zip, phn, type, item), rows (z, p, 2, _)
        // for (z, p) over s[zip, Mphn] of each master tuple.
        let (r, rules, master) = fig1();
        let zips = master
            .relation()
            .active_domain(master.relation().schema().attr("zip").unwrap());
        let mphns = master
            .relation()
            .active_domain(master.relation().schema().attr("Mphn").unwrap());
        let mut rows = Vec::new();
        for (zv, pv) in zips.iter().zip(&mphns) {
            rows.push(PatternTuple::new(vec![
                (r.attr("zip").unwrap(), PatternValue::Const(*zv)),
                (r.attr("phn").unwrap(), PatternValue::Const(*pv)),
                (r.attr("type").unwrap(), PatternValue::Const(Value::int(2))),
            ]));
        }
        let region =
            Region::new(z(&r, &["zip", "phn", "type", "item"]), Tableau::new(rows)).unwrap();
        let report = check_coverage(&rules, &master, &region, DEFAULT_BUDGET).unwrap();
        assert!(report.certain, "failure: {:?}", report.failure);
    }

    #[test]
    fn example8_missing_item_fails_coverage() {
        // Without item in Z, Dm has no item info: not a certain region.
        let (r, rules, master) = fig1();
        let region = Region::universal(z(&r, &["zip", "phn", "type"])).unwrap();
        let report = check_coverage(&rules, &master, &region, DEFAULT_BUDGET).unwrap();
        assert!(!report.certain);
        match report.failure {
            Some(CoverageFailure::Uncovered(_, missing)) => {
                assert!(missing.contains(r.attr("item").unwrap()));
            }
            other => panic!("expected Uncovered, got {other:?}"),
        }
        // rejected by the closure fast path, before any enumeration
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn wildcard_key_fails_coverage_on_unmatched_values() {
        // Z = all attributes' worth of closure, but a wildcard zip row
        // admits zips matching no master tuple.
        let (r, rules, master) = fig1();
        let region = Region::universal(z(&r, &["zip", "phn", "type", "item"])).unwrap();
        let report = check_coverage(&rules, &master, &region, DEFAULT_BUDGET).unwrap();
        assert!(!report.certain);
        assert!(matches!(
            report.failure,
            Some(CoverageFailure::Uncovered(..)) | Some(CoverageFailure::Conflict(..))
        ));
    }

    #[test]
    fn inconsistency_fails_coverage() {
        // Conflicting master data: same zip, two cities.
        let r = Schema::new("R", ["zip", "city"]).unwrap();
        let rm = Schema::new("Rm", ["zip", "city"]).unwrap();
        let rules = parse_rules("p: match zip ~ zip set city := city", &r, &rm).unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(rm, vec![tuple!["Z1", "Edi"], tuple!["Z1", "Lnd"]]).unwrap(),
        ));
        let row = PatternTuple::new(vec![(
            r.attr("zip").unwrap(),
            PatternValue::Const(Value::str("Z1")),
        )]);
        let region = Region::new(vec![r.attr("zip").unwrap()], Tableau::new(vec![row])).unwrap();
        let report = check_coverage(&rules, &master, &region, DEFAULT_BUDGET).unwrap();
        assert!(!report.certain);
        assert!(matches!(
            report.failure,
            Some(CoverageFailure::Conflict(..))
        ));
    }

    #[test]
    fn empty_tableau_vacuously_certain() {
        let (r, rules, master) = fig1();
        let region = Region::new(z(&r, &["zip"]), Tableau::empty()).unwrap();
        let report = check_coverage(&rules, &master, &region, DEFAULT_BUDGET).unwrap();
        assert!(report.certain);
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn full_z_is_always_certain() {
        // Z = R: everything is user-validated; any row is certain.
        let (r, rules, master) = fig1();
        let all: Vec<AttrId> = r.attr_ids().collect();
        let row = PatternTuple::new(vec![(
            r.attr("type").unwrap(),
            PatternValue::Const(Value::int(7)),
        )]);
        let region = Region::new(all, Tableau::new(vec![row])).unwrap();
        let report = check_coverage(&rules, &master, &region, DEFAULT_BUDGET).unwrap();
        assert!(report.certain);
    }
}
