//! The unique-fix engine ("the chase").
//!
//! Implements the fixing semantics of Sect. 3 and the PTIME decision
//! procedure from the proof of Theorem 4. Starting from a tuple `t`
//! whose attributes `Zb` are validated, rounds proceed as:
//!
//! 1. collect the frontier `S = {(ϕ, tm)}` of rule/master pairs with
//!    `lhs(ϕ) ∪ lhsp(ϕ) ⊆ Z`, `rhs(ϕ) ∉ Z`, `t ≈ tp`, `t[X] = tm[Xm]`
//!    (step (c));
//! 2. if `S` is empty, `t` is a fixpoint (step (d));
//! 3. if two pairs in `S` prescribe *different* values for one
//!    attribute, report a [`ConflictKind::SameRound`] conflict
//!    (step (e)) — this covers both two different rules and one rule
//!    with two disagreeing master tuples;
//! 4. apply every pair, extending `Z` per `ext(Z, Tc, ϕ)` (step (f));
//! 5. if any rule whose premise is now validated disagrees with a
//!    *derived* attribute (`rhs ∈ Z \ Zb`), report a
//!    [`ConflictKind::Overwrite`] conflict (step (g)): applying that
//!    rule in a different order would have produced a different fix.
//!
//! Step 5 omits the `dep(·)` cycle guard of the paper's step (g) and
//! reports every disagreement with a derived value. This is
//! *conservative*: it never accepts an inconsistent instance, but may
//! reject rule/master combinations the paper's refined check would
//! admit; for data where master tuples are key-consistent (the MDM
//! assumption of Sect. 1) the two coincide.
//!
//! During static analysis the tuple's unknown cells are `Null` and only
//! validated cells are ever consulted (rule premises are required to be
//! validated), so no three-valued logic is needed. During monitoring
//! the same engine runs on real (possibly dirty) values; non-validated
//! cells are likewise never consulted, only overwritten.

use std::fmt;

use certainfix_relation::{AttrId, AttrSet, MasterIndex, Tuple, Value};
use certainfix_rules::{ProbeScratch, RulePlan, RuleSet};

/// Why two prescriptions clashed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// Two frontier pairs disagreed on the same attribute in one round
    /// (step (e)).
    SameRound,
    /// A rule became applicable after its target was already derived
    /// with a different value (step (g)).
    Overwrite,
}

/// Evidence that no unique fix exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conflict {
    /// The disputed attribute.
    pub attr: AttrId,
    /// The two disagreeing values.
    pub values: (Value, Value),
    /// Indices (into the rule set) of the two rules involved.
    pub rules: (usize, usize),
    /// Which step detected it.
    pub kind: ConflictKind,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conflict on {:?}: rules #{} / #{} prescribe {} vs {} ({:?})",
            self.attr, self.rules.0, self.rules.1, self.values.0, self.values.1, self.kind
        )
    }
}

/// One applied step: `(rule index, master row id)`.
pub type Step = (usize, u32);

/// A successful chase: the unique fix of `t` by `(Σ, Dm)` w.r.t. the
/// initial validated set.
#[derive(Clone, Debug)]
pub struct Fix {
    /// The fixed tuple. Attributes outside [`Fix::validated`] keep the
    /// input's values and are *not* asserted correct.
    pub tuple: Tuple,
    /// All validated attributes `Zk` — the set *covered* by
    /// `(Z, Tc, Σ, Dm)` in the paper's terms.
    pub validated: AttrSet,
    /// The initially validated attributes `Zb = Z`.
    pub initial: AttrSet,
    /// The applied `(ϕ, tm)` pairs, in application order.
    pub steps: Vec<Step>,
    /// Number of frontier rounds executed.
    pub rounds: usize,
}

impl Fix {
    /// Attributes fixed by rules (as opposed to initially validated).
    pub fn derived(&self) -> AttrSet {
        self.validated - self.initial
    }

    /// Is this a *certain* fix for a schema of `r_len` attributes —
    /// i.e. does the covered set include all of `R`?
    pub fn is_certain(&self, r_len: usize) -> bool {
        self.validated == AttrSet::full(r_len)
    }
}

/// Outcome of a chase run.
#[derive(Clone, Debug)]
pub enum ChaseResult {
    /// A unique fix exists (it may or may not be certain).
    Fixed(Fix),
    /// Two derivations disagree: no unique fix.
    Conflict(Conflict),
}

impl ChaseResult {
    /// The fix, if unique.
    pub fn fix(&self) -> Option<&Fix> {
        match self {
            ChaseResult::Fixed(f) => Some(f),
            ChaseResult::Conflict(_) => None,
        }
    }

    /// The conflict, if any.
    pub fn conflict(&self) -> Option<&Conflict> {
        match self {
            ChaseResult::Fixed(_) => None,
            ChaseResult::Conflict(c) => Some(c),
        }
    }

    /// `true` iff a unique fix exists.
    pub fn is_unique(&self) -> bool {
        matches!(self, ChaseResult::Fixed(_))
    }
}

/// The chase engine: borrows `(Σ, Dm)` and runs on many tuples.
///
/// With [`with_plan`](Chase::with_plan) the frontier's key probes go
/// through a compiled [`RulePlan`] (pinned indexes, reusable probe
/// buffer) instead of the `MasterIndex` convenience path; the probed
/// maps are the same, so results are bit-identical either way.
#[derive(Clone, Copy)]
pub struct Chase<'a> {
    rules: &'a RuleSet,
    master: &'a MasterIndex,
    plan: Option<&'a RulePlan>,
}

impl<'a> Chase<'a> {
    /// Bind the engine to a rule set and indexed master data.
    pub fn new(rules: &'a RuleSet, master: &'a MasterIndex) -> Chase<'a> {
        Chase {
            rules,
            master,
            plan: None,
        }
    }

    /// Route key probes through a compiled plan (must have been
    /// compiled from the same `(rules, master)` pair).
    pub fn with_plan(mut self, plan: Option<&'a RulePlan>) -> Chase<'a> {
        debug_assert!(plan.map_or(true, |p| p.len() == self.rules.len()));
        self.plan = plan;
        self
    }

    /// The rule set.
    pub fn rules(&self) -> &RuleSet {
        self.rules
    }

    /// The master index.
    pub fn master(&self) -> &MasterIndex {
        self.master
    }

    /// The frontier of step (c): all `(rule, master row)` pairs
    /// applicable to `t` given the validated set. Pairs whose rule
    /// targets a validated attribute are excluded (the target is
    /// *protected*).
    pub fn frontier(&self, t: &Tuple, validated: AttrSet) -> Vec<Step> {
        self.frontier_with(t, validated, &mut ProbeScratch::new())
    }

    /// [`frontier`](Self::frontier) with a caller-owned probe scratch
    /// (meaningful when a plan is bound: probes then reuse the buffer).
    pub fn frontier_with(
        &self,
        t: &Tuple,
        validated: AttrSet,
        scratch: &mut ProbeScratch,
    ) -> Vec<Step> {
        let mut out = Vec::new();
        for (i, rule) in self.rules.iter() {
            if validated.contains(rule.rhs()) || !rule.premise().is_subset(&validated) {
                continue;
            }
            if !rule.pattern().matches(t) {
                continue;
            }
            match self.plan {
                Some(plan) => {
                    // pattern already checked; the raw key probe suffices
                    for &id in plan.probe(i, t, scratch) {
                        out.push((i, id));
                    }
                }
                None => {
                    for id in self.master.matches_projection(t, rule.lhs(), rule.lhs_m()) {
                        out.push((i, id));
                    }
                }
            }
        }
        out
    }

    /// Run the chase from `t` with `initial` validated.
    pub fn run(&self, t: &Tuple, initial: AttrSet) -> ChaseResult {
        self.run_with(t, initial, &mut ProbeScratch::new())
    }

    /// [`run`](Self::run) with a caller-owned probe scratch, so a
    /// worker draining many tuples reuses one probe buffer across all
    /// of them.
    pub fn run_with(&self, t: &Tuple, initial: AttrSet, scratch: &mut ProbeScratch) -> ChaseResult {
        let mut tuple = t.clone();
        let mut validated = initial;
        let mut steps: Vec<Step> = Vec::new();
        let mut rounds = 0usize;

        loop {
            let frontier = self.frontier_with(&tuple, validated, scratch);
            if frontier.is_empty() {
                return ChaseResult::Fixed(Fix {
                    tuple,
                    validated,
                    initial,
                    steps,
                    rounds,
                });
            }
            rounds += 1;

            // Step (e): detect same-round disagreement per target attr.
            // `claims[b]` remembers the first (rule, value) for b.
            let mut claims: Vec<Option<(usize, u32, Value)>> =
                vec![None; self.rules.r_schema().len()];
            for &(i, id) in &frontier {
                let rule = self.rules.rule(i);
                let v = *self.master.tuple(id).get(rule.rhs_m());
                let slot = &mut claims[rule.rhs().index()];
                match slot {
                    None => *slot = Some((i, id, v)),
                    Some((j, _, w)) => {
                        if *w != v {
                            return ChaseResult::Conflict(Conflict {
                                attr: rule.rhs(),
                                values: (*w, v),
                                rules: (*j, i),
                                kind: ConflictKind::SameRound,
                            });
                        }
                    }
                }
            }

            // Step (f): apply one pair per target, extend Z.
            for (b, slot) in claims.iter().enumerate() {
                if let Some((i, id, v)) = slot {
                    tuple.set(AttrId(b as u16), *v);
                    validated.insert(AttrId(b as u16));
                    steps.push((*i, *id));
                }
            }

            // Step (g): any now-applicable rule disagreeing with a
            // *derived* attribute value is an order-dependence witness.
            if let Some(c) = self.overwrite_conflict(&tuple, validated, initial, &steps, scratch) {
                return ChaseResult::Conflict(c);
            }
        }
    }

    fn overwrite_conflict(
        &self,
        tuple: &Tuple,
        validated: AttrSet,
        initial: AttrSet,
        steps: &[Step],
        scratch: &mut ProbeScratch,
    ) -> Option<Conflict> {
        let derived = validated - initial;
        for (i, rule) in self.rules.iter() {
            let b = rule.rhs();
            if !derived.contains(b) || !rule.premise().is_subset(&validated) {
                continue;
            }
            if !rule.pattern().matches(tuple) {
                continue;
            }
            let hit = |v: &Value, this: &Self| {
                if v.agrees_with(tuple.get(b)) {
                    return None;
                }
                // find which step derived b, for diagnostics
                let deriver = steps
                    .iter()
                    .find(|&&(j, _)| this.rules.rule(j).rhs() == b)
                    .map(|&(j, _)| j)
                    .unwrap_or(i);
                Some(Conflict {
                    attr: b,
                    values: (*tuple.get(b), *v),
                    rules: (deriver, i),
                    kind: ConflictKind::Overwrite,
                })
            };
            match self.plan {
                Some(plan) => {
                    for &id in plan.probe(i, tuple, scratch) {
                        if let Some(c) = hit(self.master.tuple(id).get(rule.rhs_m()), self) {
                            return Some(c);
                        }
                    }
                }
                None => {
                    for id in self
                        .master
                        .matches_projection(tuple, rule.lhs(), rule.lhs_m())
                    {
                        if let Some(c) = hit(self.master.tuple(id).get(rule.rhs_m()), self) {
                            return Some(c);
                        }
                    }
                }
            }
        }
        None
    }

    /// Apply frontier pairs one at a time in an arbitrary caller-chosen
    /// order (used by confluence tests): repeatedly pick
    /// `choose(frontier)` and apply it until the frontier empties.
    /// Returns the final tuple and validated set; performs *no*
    /// conflict detection.
    pub fn run_sequential<F>(&self, t: &Tuple, initial: AttrSet, mut choose: F) -> (Tuple, AttrSet)
    where
        F: FnMut(&[Step]) -> usize,
    {
        let mut tuple = t.clone();
        let mut validated = initial;
        loop {
            let frontier = self.frontier(&tuple, validated);
            if frontier.is_empty() {
                return (tuple, validated);
            }
            let pick = choose(&frontier).min(frontier.len() - 1);
            let (i, id) = frontier[pick];
            let rule = self.rules.rule(i);
            tuple.set(rule.rhs(), *self.master.tuple(id).get(rule.rhs_m()));
            validated.insert(rule.rhs());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{tuple, Relation, Schema, Value};
    use certainfix_rules::parse_rules;
    use std::sync::Arc;

    /// Fig. 1 of the paper: supplier schema R, master schema Rm, master
    /// tuples s1/s2, and Σ0 = {ϕ1..ϕ9} of Example 11.
    fn fig1() -> (Arc<Schema>, RuleSet, MasterIndex) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        let rules = parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            phi4: match AC ~ AC set city := city when AC = '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = Relation::new(
            rm,
            vec![
                // s1: Robert Brady, Edinburgh
                tuple![
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "51 Elm Row",
                    "Edi",
                    "EH7 4AH",
                    "11/11/55",
                    "M"
                ],
                // s2: Mark Smith, London
                tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "NW1 6XE",
                    "25/12/67",
                    "M"
                ],
            ],
        )
        .unwrap();
        (r.clone(), rules, MasterIndex::new(Arc::new(master)))
    }

    fn attrs(r: &Schema, names: &[&str]) -> AttrSet {
        names.iter().map(|n| r.attr(n).unwrap()).collect()
    }

    /// t1 of Fig. 1.
    fn t1() -> Tuple {
        tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ]
    }

    /// t3 of Fig. 1: AC and zip are mutually inconsistent.
    fn t3() -> Tuple {
        tuple![
            "Mark",
            "Smith",
            "020",
            "6884563",
            1,
            "20 Baker St.",
            "Lnd",
            "EH7 4AH",
            "DVD"
        ]
    }

    #[test]
    fn example12_transfix_trace_via_zip() {
        // Z = {zip}: ϕ1 fixes AC/str/city from s1 (Example 12's trace).
        let (r, rules, master) = fig1();
        let chase = Chase::new(&rules, &master);
        let result = chase.run(&t1(), attrs(&r, &["zip"]));
        let fix = result.fix().expect("unique fix expected");
        assert_eq!(fix.tuple.get(r.attr("AC").unwrap()), &Value::str("131"));
        assert_eq!(
            fix.tuple.get(r.attr("str").unwrap()),
            &Value::str("51 Elm Row")
        );
        assert_eq!(fix.tuple.get(r.attr("city").unwrap()), &Value::str("Edi"));
        assert_eq!(fix.validated, attrs(&r, &["zip", "AC", "str", "city"]));
        assert_eq!(fix.derived(), attrs(&r, &["AC", "str", "city"]));
        assert!(!fix.is_certain(r.len()));
        // fn/ln untouched: phn/type not validated, so ϕ2 can't fire
        assert_eq!(fix.tuple.get(r.attr("fn").unwrap()), &Value::str("Bob"));
    }

    #[test]
    fn example8_unique_fix_with_zip_phn_type() {
        // (Z_zm) = (zip, phn, type): ϕ1 and ϕ2 both fire; t1 gets
        // AC/str/city from zip and fn/ln from the mobile number.
        let (r, rules, master) = fig1();
        let chase = Chase::new(&rules, &master);
        let fix = chase
            .run(&t1(), attrs(&r, &["zip", "phn", "type"]))
            .fix()
            .cloned()
            .expect("unique");
        assert_eq!(fix.tuple.get(r.attr("fn").unwrap()), &Value::str("Robert"));
        assert_eq!(fix.tuple.get(r.attr("ln").unwrap()), &Value::str("Brady"));
        // item is never covered: Dm has no item information (Example 8)
        assert!(!fix.validated.contains(r.attr("item").unwrap()));
        assert!(!fix.is_certain(r.len()));
        // adding item to Z makes the fix certain
        let fix2 = chase
            .run(&t1(), attrs(&r, &["zip", "phn", "type", "item"]))
            .fix()
            .cloned()
            .unwrap();
        assert!(fix2.is_certain(r.len()));
    }

    #[test]
    fn example5_conflict_when_ac_and_zip_both_validated() {
        // t3 with Z ⊇ {AC, phn, type, zip}: (ϕ3, s2) says city = Lnd,
        // (ϕ1, s1) says city = Edi → no unique fix (Example 5 / 10).
        let (r, rules, master) = fig1();
        let chase = Chase::new(&rules, &master);
        let result = chase.run(&t3(), attrs(&r, &["AC", "phn", "type", "zip"]));
        let conflict = result.conflict().expect("conflict expected");
        // ϕ1 (via s1's zip) and ϕ3 (via s2's home phone) disagree on
        // both str and city; the engine reports the first one.
        let str_a = r.attr("str").unwrap();
        let city_a = r.attr("city").unwrap();
        assert!(conflict.attr == str_a || conflict.attr == city_a);
        if conflict.attr == city_a {
            let vals = [conflict.values.0, conflict.values.1];
            assert!(vals.contains(&Value::str("Edi")));
            assert!(vals.contains(&Value::str("Lnd")));
        }
        assert_eq!(conflict.kind, ConflictKind::SameRound);
        assert!(!result.is_unique());
    }

    #[test]
    fn example6_t3_unique_fix_without_zip() {
        // With Z = (AC, phn, type) only, ϕ3/s2 fixes str/city/zip and
        // then ϕ1 agrees (everything from s2), so the fix is unique.
        let (r, rules, master) = fig1();
        let chase = Chase::new(&rules, &master);
        let result = chase.run(&t3(), attrs(&r, &["AC", "phn", "type"]));
        let fix = result.fix().expect("unique fix (Example 6)");
        assert_eq!(
            fix.tuple.get(r.attr("zip").unwrap()),
            &Value::str("NW1 6XE")
        );
        assert_eq!(fix.tuple.get(r.attr("city").unwrap()), &Value::str("Lnd"));
    }

    #[test]
    fn t4_no_rule_applies() {
        // t4 of Fig. 1 matches no master tuple: the chase fixes nothing.
        let (r, rules, master) = fig1();
        let chase = Chase::new(&rules, &master);
        let t4 = tuple![
            "Tim",
            "Poth",
            "020",
            "9978543",
            1,
            "Baker St.",
            "Lnd",
            "NW1 6XE",
            "BOOK"
        ];
        let z = attrs(&r, &["AC", "phn", "type"]);
        let fix = chase.run(&t4, z).fix().cloned().unwrap();
        assert_eq!(fix.validated, z, "nothing derivable");
        assert!(fix.steps.is_empty());
        assert_eq!(fix.rounds, 0);
    }

    #[test]
    fn protected_attributes_never_overwritten() {
        // city ∈ Zb: even though ϕ1 would set it to Edi, it's protected.
        let (r, rules, master) = fig1();
        let chase = Chase::new(&rules, &master);
        let mut t = t1();
        t.set(r.attr("city").unwrap(), Value::str("WRONGTOWN"));
        let z = attrs(&r, &["zip", "city"]);
        let fix = chase.run(&t, z).fix().cloned().unwrap();
        assert_eq!(
            fix.tuple.get(r.attr("city").unwrap()),
            &Value::str("WRONGTOWN"),
            "user-validated cells are protected even against master data"
        );
        // AC/str still fixed
        assert_eq!(fix.tuple.get(r.attr("AC").unwrap()), &Value::str("131"));
    }

    #[test]
    fn chase_ignores_unvalidated_dirty_cells() {
        // t1's phn cell is garbage, but phn ∉ Z and no fired rule needs
        // it: the result is as if the cell were empty.
        let (r, rules, master) = fig1();
        let chase = Chase::new(&rules, &master);
        let mut t = t1();
        t.set(r.attr("phn").unwrap(), Value::str("###"));
        let fix = chase.run(&t, attrs(&r, &["zip"])).fix().cloned().unwrap();
        assert_eq!(fix.validated, attrs(&r, &["zip", "AC", "str", "city"]));
    }

    #[test]
    fn same_round_conflict_from_inconsistent_master() {
        // Two master tuples with the same zip but different cities: one
        // rule, two masters, step (e) fires.
        let r = Schema::new("R", ["zip", "city"]).unwrap();
        let rm = Schema::new("Rm", ["zip", "city"]).unwrap();
        let rules = parse_rules("p: match zip ~ zip set city := city", &r, &rm).unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(rm, vec![tuple!["Z1", "Edi"], tuple!["Z1", "Lnd"]]).unwrap(),
        ));
        let chase = Chase::new(&rules, &master);
        let result = chase.run(&tuple!["Z1", Value::Null], AttrSet::singleton(AttrId(0)));
        let c = result.conflict().unwrap();
        assert_eq!(c.kind, ConflictKind::SameRound);
        assert_eq!(c.rules.0, c.rules.1, "same rule, two masters");
    }

    #[test]
    fn overwrite_conflict_detected_across_rounds() {
        // a → b (b := 1), then b's own rule keyed on... build: rule1:
        // a→b, rule2: c→b with different master values, where c only
        // becomes validated after round 1 via rule3: a→c.
        let r = Schema::new("R", ["a", "b", "c"]).unwrap();
        let rm = Schema::new("Rm", ["a", "b", "c"]).unwrap();
        let rules = parse_rules(
            r#"
            r1: match a ~ a set b := b
            r3: match a ~ a set c := c
            r2: match c ~ c set b := b
            "#,
            &r,
            &rm,
        )
        .unwrap();
        // master: key a=1 gives b=10, c=5; key c=5 gives b=99 (via a
        // second master tuple with c=5 but b=99).
        let master = MasterIndex::new(Arc::new(
            Relation::new(rm, vec![tuple![1, 10, 5], tuple![2, 99, 5]]).unwrap(),
        ));
        let chase = Chase::new(&rules, &master);
        // Round 1: r1 and r3 fire from a=1 → b=10, c=5. Then r2 with
        // c=5 matches BOTH master rows (b=10 and b=99): step (e) or (g)
        // must object. Here both rows have c=5 so r2's frontier has two
        // masters — but b is already validated, so it's step (g).
        let result = chase.run(
            &tuple![1, Value::Null, Value::Null],
            AttrSet::singleton(AttrId(0)),
        );
        let c = result.conflict().expect("conflict");
        assert_eq!(c.kind, ConflictKind::Overwrite);
        assert_eq!(c.attr, AttrId(1));
    }

    #[test]
    fn agreeing_overwrite_is_not_a_conflict() {
        // Same shape, but the second path derives the SAME value: fine.
        let r = Schema::new("R", ["a", "b", "c"]).unwrap();
        let rm = Schema::new("Rm", ["a", "b", "c"]).unwrap();
        let rules = parse_rules(
            r#"
            r1: match a ~ a set b := b
            r3: match a ~ a set c := c
            r2: match c ~ c set b := b
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(rm, vec![tuple![1, 10, 5], tuple![2, 10, 5]]).unwrap(),
        ));
        let chase = Chase::new(&rules, &master);
        let result = chase.run(
            &tuple![1, Value::Null, Value::Null],
            AttrSet::singleton(AttrId(0)),
        );
        let fix = result.fix().expect("no conflict: values agree");
        assert_eq!(fix.tuple.get(AttrId(1)), &Value::int(10));
        assert!(fix.is_certain(3));
    }

    #[test]
    fn sequential_order_matches_round_based_when_unique() {
        let (r, rules, master) = fig1();
        let chase = Chase::new(&rules, &master);
        let z = attrs(&r, &["zip", "phn", "type"]);
        let reference = chase.run(&t1(), z).fix().cloned().unwrap();
        // a few deterministic pick strategies
        for seed in 0u64..6 {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let (tuple, validated) = chase.run_sequential(&t1(), z, |frontier| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as usize % frontier.len()
            });
            assert_eq!(tuple, reference.tuple, "confluence (seed {seed})");
            assert_eq!(validated, reference.validated);
        }
    }

    #[test]
    fn rounds_are_bounded_by_schema_width() {
        let (r, rules, master) = fig1();
        let chase = Chase::new(&rules, &master);
        let fix = chase
            .run(&t1(), attrs(&r, &["zip", "phn", "type", "item"]))
            .fix()
            .cloned()
            .unwrap();
        assert!(fix.rounds <= r.len());
    }

    /// The plan-backed chase is bit-identical to the legacy probes on
    /// every Fig. 1 scenario — fixes, validated sets, steps, rounds,
    /// and conflicts alike.
    #[test]
    fn plan_backed_chase_matches_legacy() {
        use certainfix_rules::{ProbeScratch, RulePlan};
        let (r, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let legacy = Chase::new(&rules, &master);
        let planned = Chase::new(&rules, &master).with_plan(Some(&plan));
        let mut scratch = ProbeScratch::new();
        for t in [t1(), t3()] {
            for z in [
                attrs(&r, &["zip"]),
                attrs(&r, &["zip", "phn", "type"]),
                attrs(&r, &["AC", "phn", "type", "zip"]),
                attrs(&r, &["item"]),
                AttrSet::EMPTY,
            ] {
                let a = legacy.run(&t, z);
                let b = planned.run_with(&t, z, &mut scratch);
                match (&a, &b) {
                    (ChaseResult::Fixed(fa), ChaseResult::Fixed(fb)) => {
                        assert_eq!(fa.tuple, fb.tuple, "Z = {z:?}");
                        assert_eq!(fa.validated, fb.validated);
                        assert_eq!(fa.steps, fb.steps);
                        assert_eq!(fa.rounds, fb.rounds);
                    }
                    (ChaseResult::Conflict(ca), ChaseResult::Conflict(cb)) => {
                        assert_eq!(ca, cb, "Z = {z:?}");
                    }
                    _ => panic!("outcome kind diverged for Z = {z:?}"),
                }
            }
        }
    }

    #[test]
    fn conflict_display() {
        let c = Conflict {
            attr: AttrId(6),
            values: (Value::str("Edi"), Value::str("Lnd")),
            rules: (0, 5),
            kind: ConflictKind::SameRound,
        };
        let s = c.to_string();
        assert!(s.contains("Edi"));
        assert!(s.contains("#0"));
    }
}
