//! Schema-level attribute closure under a rule set.
//!
//! `closure(Z)` is the least superset of `Z` closed under: if
//! `lhs(ϕ) ∪ lhsp(ϕ) ⊆ closure` then `rhs(ϕ) ∈ closure`. It
//! over-approximates the covered attribute set of Sect. 3 (it assumes a
//! matching master tuple always exists) and is the shared core of
//! certain-region derivation ([`crate::derive`]) and suggestion
//! generation ([`crate::suggest`](mod@crate::suggest)): a region can only be certain if
//! `closure(Z) = R`, and the master data then decides which pattern
//! rows actually deliver.

use certainfix_relation::AttrSet;
use certainfix_rules::RuleSet;

/// The closure plus a trace of which rules fired, in firing order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosureTrace {
    /// `closure(Z)`.
    pub covered: AttrSet,
    /// Rule indices that fired, in the round order they first became
    /// applicable.
    pub fired: Vec<usize>,
}

/// Compute `closure(z)` under `rules`, with the firing trace.
pub fn closure(rules: &RuleSet, z: AttrSet) -> ClosureTrace {
    let mut covered = z;
    let mut fired = Vec::new();
    let mut done = vec![false; rules.len()];
    loop {
        let mut changed = false;
        for (i, rule) in rules.iter() {
            if done[i] || covered.contains(rule.rhs()) {
                continue;
            }
            if rule.premise().is_subset(&covered) {
                covered.insert(rule.rhs());
                fired.push(i);
                done[i] = true;
                changed = true;
            }
        }
        if !changed {
            return ClosureTrace { covered, fired };
        }
    }
}

/// The rules that fire during the closure computation from `z` — the
/// rule subset a region `(Z, ·)` can ever use.
pub fn firing_rules(rules: &RuleSet, z: AttrSet) -> Vec<usize> {
    closure(rules, z).fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{AttrId, Schema};
    use certainfix_rules::parse_rules;

    fn rules() -> RuleSet {
        let r = Schema::new("R", ["a", "b", "c", "d", "e"]).unwrap();
        let rm = r.clone();
        parse_rules(
            r#"
            r1: match a ~ a set b := b
            r2: match b ~ b set c := c when e = 1
            r3: match a ~ a, c ~ c set d := d
            "#,
            &r,
            &rm,
        )
        .unwrap()
    }

    fn set(ids: &[u16]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn chains_through_rules() {
        // a → b; (b, pattern e) → c; (a, c) → d
        let rs = rules();
        let tr = closure(&rs, set(&[0, 4])); // {a, e}
        assert_eq!(tr.covered, set(&[0, 1, 2, 3, 4]));
        assert_eq!(tr.fired.len(), 3);
        // r1 fires before r2 before r3
        assert_eq!(tr.fired, vec![0, 1, 2]);
    }

    #[test]
    fn pattern_attrs_are_prerequisites() {
        // without e, r2 cannot fire and c/d stay uncovered
        let rs = rules();
        let tr = closure(&rs, set(&[0]));
        assert_eq!(tr.covered, set(&[0, 1]));
        assert_eq!(tr.fired, vec![0]);
    }

    #[test]
    fn already_covered_rhs_does_not_fire() {
        let rs = rules();
        let tr = closure(&rs, set(&[0, 1, 2, 3, 4]));
        assert!(tr.fired.is_empty());
        assert_eq!(tr.covered, set(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn monotone_and_idempotent() {
        let rs = rules();
        let small = closure(&rs, set(&[0])).covered;
        let large = closure(&rs, set(&[0, 4])).covered;
        assert!(small.is_subset(&large));
        assert_eq!(closure(&rs, small).covered, small, "idempotent");
        assert_eq!(closure(&rs, large).covered, large);
    }

    #[test]
    fn firing_rules_matches_trace() {
        let rs = rules();
        assert_eq!(firing_rules(&rs, set(&[0, 4])), vec![0, 1, 2]);
    }
}
