//! Suggestions (Sect. 5.2): what else should the user assert?
//!
//! Once `t[Z]` is validated, a *suggestion* is a set `S` of attributes
//! such that `(Z ∪ S, {tc})` is a certain region for some pattern `tc`
//! that `t[Z]` satisfies. The S-minimum problem is NP-complete and
//! approximation-hard (it contains Z-minimum), so this module provides
//! the heuristic the framework actually runs:
//!
//! 1. derive the *applicable rules* `Σ_t[Z]` — rules refined with the
//!    concrete values of `t[Z]` (Prop. 20 shows `Σ_t[Z]` suffices);
//! 2. greedily pick attributes that maximize schema-level closure
//!    growth under `Σ_t[Z]` until `closure(Z ∪ S) = R`;
//! 3. locally minimize `S` by dropping redundant attributes.
//!
//! The fallback is always available: `S` can include attributes no rule
//! fixes, which the user then validates directly (that is how `item`
//! enters the certain region of Example 9).
//!
//! Probes here ride the same compiled [`RulePlan`] as the repair hot
//! path (`validated_candidates` resolves each rule's validated-key
//! split through the plan's sub-key slots). Suggestion derivation is
//! per-tuple by nature — it runs after a specific `t[Z]` is validated
//! — so it consumes the plan's single-tuple entry points; the
//! *vectorized block layer* (`RulePlan::plan_probe_block`, see the
//! `certainfix_rules::plan` module docs) amortizes the upstream
//! `TransFix` seed probes that funnel tuples into this module, and
//! both layers return bit-identical hit lists by the block-size
//! independence contract.

use certainfix_relation::{AttrId, AttrSet, MasterIndex, PatternValue, Tuple};
use certainfix_rules::{EditingRule, ProbeScratch, RulePlan, RuleSet};

use crate::closure::closure;

/// A recommended set of attributes for the user to assert.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suggestion {
    /// The attributes `S`, ascending.
    pub attrs: Vec<AttrId>,
    /// Schema-level prediction of what `Z ∪ S` will cover.
    pub covers: AttrSet,
}

impl Suggestion {
    /// `S` as a set.
    pub fn attr_set(&self) -> AttrSet {
        self.attrs.iter().copied().collect()
    }
}

/// Derive the applicable-rule set `Σ_t[Z]` (Sect. 5.2).
///
/// For each `ϕ ∈ Σ` with pattern `tp[Xp]`, `ϕ+` is included iff:
///
/// * (a) `ϕ` does not *change* validated attributes: either
///   `rhs(ϕ) ∉ Z`, or every master candidate agrees with the already
///   validated `t[B]` (Example 14 lists such agreeing rules);
/// * (b) `tp[Xp ∩ Z] ≈ t[Xp ∩ Z]` — the validated part of the pattern
///   matches;
/// * (c) some master tuple `tm` satisfies `tm[λϕ(Xp ∩ X)] ≈ tp[Xp ∩ X]`
///   and `tm[λϕ(X ∩ Z)] = t[X ∩ Z]`.
///
/// `ϕ+` extends the pattern attributes with `X ∩ Z` and pins every
/// pattern cell on a validated attribute to `t`'s concrete value.
pub fn applicable_rules(
    rules: &RuleSet,
    master: &MasterIndex,
    t: &Tuple,
    validated: AttrSet,
) -> Vec<EditingRule> {
    applicable_rules_impl(rules, master, t, validated, None, &mut ProbeScratch::new())
}

/// [`applicable_rules`] through a compiled [`RulePlan`].
///
/// Each rule's *validated-key split* — which key positions of `X` lie
/// in `Z`, and the master columns they align with — is resolved
/// through the plan's precomputed layout and per-subset index slots
/// instead of rebuilding `from`/`to` vectors and re-hashing a key list
/// per rule per call; the `λϕ` lookups of the master-side pattern
/// check use the plan's precomputed alignment. The derived rule set is
/// identical to the plain [`applicable_rules`] reference path, which
/// tests keep as the parity oracle.
pub fn applicable_rules_with(
    rules: &RuleSet,
    master: &MasterIndex,
    t: &Tuple,
    validated: AttrSet,
    plan: &RulePlan,
    scratch: &mut ProbeScratch,
) -> Vec<EditingRule> {
    applicable_rules_impl(rules, master, t, validated, Some(plan), scratch)
}

/// Shared derivation behind [`applicable_rules`] (legacy probes) and
/// [`applicable_rules_with`] (plan-routed probes).
fn applicable_rules_impl(
    rules: &RuleSet,
    master: &MasterIndex,
    t: &Tuple,
    validated: AttrSet,
    plan: Option<&RulePlan>,
    scratch: &mut ProbeScratch,
) -> Vec<EditingRule> {
    debug_assert!(plan.map_or(true, |p| p.len() == rules.len()));
    let mut out = Vec::new();
    'rules: for (i, rule) in rules.iter() {
        // (b) validated pattern cells must match t.
        for (&a, cell) in rule.lhs_p().iter().zip(rule.pattern().cells()) {
            if validated.contains(a) && !cell.matches(t.get(a)) {
                continue 'rules;
            }
        }
        // (c) master support. The λϕ alignment of pattern attrs with
        // master columns comes precomputed from the plan when bound.
        let compiled = plan.map(|p| p.rule(i));
        let pattern_master = |j: usize, a: AttrId| -> Option<AttrId> {
            match compiled {
                Some(c) => c.pattern_master()[j],
                None => rule.master_attr_for(a),
            }
        };
        let rhs_validated = validated.contains(rule.rhs());
        let pattern_on_keys = match compiled {
            Some(c) => c.pattern_on_keys(),
            None => rule
                .lhs_p()
                .iter()
                .any(|a| rule.master_attr_for(*a).is_some()),
        };
        let no_validated_keys = match compiled {
            Some(c) => c.validated_mask(validated) == 0,
            None => !rule.lhs().iter().any(|a| validated.contains(*a)),
        };
        if no_validated_keys {
            // No validated key pins a master tuple yet.
            if master.is_empty() {
                continue;
            }
            if rhs_validated {
                // Keeping the rule would require proving every candidate
                // master agrees with the validated t[B] — a full scan for
                // a rule the closure gains nothing from. Drop it.
                continue;
            }
            if pattern_on_keys {
                // Existence scan with early exit.
                let supported = master.relation().iter().any(|tm| {
                    rule.lhs_p()
                        .iter()
                        .zip(rule.pattern().cells())
                        .enumerate()
                        .all(|(j, (&a, cell))| match pattern_master(j, a) {
                            Some(ma) => cell.matches(tm.get(ma)),
                            None => true,
                        })
                });
                if !supported {
                    continue;
                }
            }
        } else {
            let mut supported = false;
            let mut rhs_agrees = true;
            let mut check = |id: u32| -> bool {
                // returns `true` to stop the scan
                let tm = master.tuple(id);
                // pattern cells on key attributes, checked master-side
                let pattern_ok = rule
                    .lhs_p()
                    .iter()
                    .zip(rule.pattern().cells())
                    .enumerate()
                    .all(|(j, (&a, cell))| match pattern_master(j, a) {
                        Some(ma) => cell.matches(tm.get(ma)),
                        None => true,
                    });
                if pattern_ok {
                    supported = true;
                    if !rhs_validated {
                        // existence is all that matters: a weakly
                        // selective validated key (e.g. only `type` of a
                        // composite) can match most of Dm — don't scan it
                        return true;
                    }
                    if !tm.get(rule.rhs_m()).agrees_with(t.get(rule.rhs())) {
                        rhs_agrees = false;
                        return true;
                    }
                }
                false
            };
            match plan {
                Some(p) => {
                    let hits = p
                        .validated_candidates(i, t, validated, scratch)
                        .expect("mask is non-zero on this branch");
                    for &id in hits.iter() {
                        if check(id) {
                            break;
                        }
                    }
                }
                None => {
                    let validated_keys: Vec<(usize, AttrId)> = rule
                        .lhs()
                        .iter()
                        .enumerate()
                        .filter(|&(_, a)| validated.contains(*a))
                        .map(|(i, &a)| (i, a))
                        .collect();
                    let from: Vec<AttrId> = validated_keys.iter().map(|&(_, a)| a).collect();
                    let to: Vec<AttrId> = validated_keys
                        .iter()
                        .map(|&(i, _)| rule.lhs_m()[i])
                        .collect();
                    for id in master.matches_projection(t, &from, &to) {
                        if check(id) {
                            break;
                        }
                    }
                }
            }
            if !supported {
                continue;
            }
            // (a) a rule targeting a validated attribute is kept only if
            // it cannot change it.
            if rhs_validated && !rhs_agrees {
                continue;
            }
        }
        // Refine: extend Xp with X ∩ Z, pin validated cells to t.
        let extra: Vec<(AttrId, PatternValue)> = rule
            .lhs()
            .iter()
            .chain(rule.lhs_p())
            .filter(|&&a| validated.contains(a))
            .map(|&a| (a, PatternValue::Const(*t.get(a))))
            .collect();
        out.push(rule.with_pattern(rule.pattern().refined_with(&extra)));
    }
    out
}

/// Is `attrs` (still) a suggestion for `t` given the validated set?
///
/// This is the cheap re-*check* the BDD cache of Sect. 5.2 performs
/// instead of re-*deriving* a suggestion: one `Σ_t[Z]` derivation and
/// one closure, rather than a closure per candidate attribute per
/// greedy step. The paper's optimization rests on exactly this
/// asymmetry ("it is far less costly to check whether a region is
/// certain than computing new certain regions").
pub fn is_suggestion(
    rules: &RuleSet,
    master: &MasterIndex,
    t: &Tuple,
    validated: AttrSet,
    attrs: &[AttrId],
) -> bool {
    is_suggestion_impl(
        rules,
        master,
        t,
        validated,
        attrs,
        None,
        &mut ProbeScratch::new(),
    )
}

/// [`is_suggestion`] with a compiled [`RulePlan`] routing the
/// underlying `Σ_t[Z]` derivation's probes.
pub fn is_suggestion_with(
    rules: &RuleSet,
    master: &MasterIndex,
    t: &Tuple,
    validated: AttrSet,
    attrs: &[AttrId],
    plan: &RulePlan,
    scratch: &mut ProbeScratch,
) -> bool {
    is_suggestion_impl(rules, master, t, validated, attrs, Some(plan), scratch)
}

fn is_suggestion_impl(
    rules: &RuleSet,
    master: &MasterIndex,
    t: &Tuple,
    validated: AttrSet,
    attrs: &[AttrId],
    plan: Option<&RulePlan>,
    scratch: &mut ProbeScratch,
) -> bool {
    let s: AttrSet = attrs.iter().copied().collect();
    if !s.is_disjoint(&validated) || s.is_empty() {
        return false;
    }
    let refined = applicable_rules_impl(rules, master, t, validated, plan, scratch);
    let sigma_tz = RuleSet::from_rules(rules.r_schema().clone(), rules.m_schema().clone(), refined)
        .expect("refined rules share the original schemas");
    let full = AttrSet::full(rules.r_schema().len());
    closure(&sigma_tz, validated | s).covered == full
}

/// Compute a suggestion for `t` given the validated set, or `None` if
/// every attribute is already validated.
pub fn suggest(
    rules: &RuleSet,
    master: &MasterIndex,
    t: &Tuple,
    validated: AttrSet,
) -> Option<Suggestion> {
    suggest_impl(rules, master, t, validated, None, &mut ProbeScratch::new())
}

/// [`suggest`] with a compiled [`RulePlan`] routing the `Σ_t[Z]`
/// derivation's probes (the closure computations are
/// plan-independent). Suggestions are identical to the plain
/// [`suggest`] reference path.
pub fn suggest_with(
    rules: &RuleSet,
    master: &MasterIndex,
    t: &Tuple,
    validated: AttrSet,
    plan: &RulePlan,
    scratch: &mut ProbeScratch,
) -> Option<Suggestion> {
    suggest_impl(rules, master, t, validated, Some(plan), scratch)
}

fn suggest_impl(
    rules: &RuleSet,
    master: &MasterIndex,
    t: &Tuple,
    validated: AttrSet,
    plan: Option<&RulePlan>,
    scratch: &mut ProbeScratch,
) -> Option<Suggestion> {
    let full = AttrSet::full(rules.r_schema().len());
    if validated == full {
        return None;
    }
    let refined = applicable_rules_impl(rules, master, t, validated, plan, scratch);
    let sigma_tz = RuleSet::from_rules(rules.r_schema().clone(), rules.m_schema().clone(), refined)
        .expect("refined rules share the original schemas");

    // Greedy: grow S until closure(Z ∪ S) = R.
    let mut s = AttrSet::EMPTY;
    let mut covered = closure(&sigma_tz, validated).covered;
    while covered != full {
        let mut best: Option<(AttrId, usize)> = None;
        for a in (full - covered).iter() {
            let gain = closure(&sigma_tz, covered | AttrSet::singleton(a))
                .covered
                .len();
            if best.map(|(_, g)| gain > g).unwrap_or(true) {
                best = Some((a, gain));
            }
        }
        let (pick, _) = best.expect("uncovered attribute exists");
        s.insert(pick);
        covered = closure(&sigma_tz, validated | s).covered;
    }

    // Local minimization: drop redundant members of S.
    for a in s.to_vec() {
        let without = s - AttrSet::singleton(a);
        if closure(&sigma_tz, validated | without).covered == full {
            s = without;
        }
    }
    let covers = closure(&sigma_tz, validated | s).covered;
    Some(Suggestion {
        attrs: s.to_vec(),
        covers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{tuple, Relation, Schema, Value};
    use certainfix_rules::parse_rules;
    use std::sync::Arc;

    fn fig1() -> (Arc<Schema>, RuleSet, MasterIndex) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        let rules = parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            phi4: match AC ~ AC set city := city when AC = '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = Relation::new(
            rm,
            vec![
                tuple![
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "51 Elm Row",
                    "Edi",
                    "EH7 4AH",
                    "11/11/55",
                    "M"
                ],
                tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "NW1 6XE",
                    "25/12/67",
                    "M"
                ],
            ],
        )
        .unwrap();
        (r.clone(), rules, MasterIndex::new(Arc::new(master)))
    }

    fn attrs(r: &Schema, names: &[&str]) -> AttrSet {
        names.iter().map(|n| r.attr(n).unwrap()).collect()
    }

    /// t1 after Example 12's TransFix run: zip/AC/str/city fixed from s1.
    fn t1_fixed() -> Tuple {
        tuple![
            "Bob",
            "Brady",
            "131",
            "079172485",
            2,
            "51 Elm Row",
            "Edi",
            "EH7 4AH",
            "CD"
        ]
    }

    #[test]
    fn example14_applicable_rules() {
        let (r, rules, master) = fig1();
        let z = attrs(&r, &["zip", "AC", "str", "city"]);
        let refined = applicable_rules(&rules, &master, &t1_fixed(), z);
        let names: Vec<&str> = refined.iter().map(|r| r.name()).collect();
        // ϕ4/ϕ5 of the paper = phi2.fn / phi2.ln here
        assert!(names.contains(&"phi2.fn"), "names: {names:?}");
        assert!(names.contains(&"phi2.ln"));
        // ϕ+6..8 = the phi3 family with refined AC pattern
        assert!(names.contains(&"phi3.str"));
        assert!(names.contains(&"phi3.city"));
        assert!(names.contains(&"phi3.zip"));
        let phi3_str = refined.iter().find(|r| r.name() == "phi3.str").unwrap();
        // the refined pattern pins AC to 131 (replacing ≠0800)
        assert_eq!(
            phi3_str.pattern().cell(r.attr("AC").unwrap()),
            Some(&PatternValue::Const(Value::str("131")))
        );
        // and keeps type = 1
        assert_eq!(
            phi3_str.pattern().cell(r.attr("type").unwrap()),
            Some(&PatternValue::Const(Value::int(1)))
        );
        // ϕ4 (toll-free city rule) requires AC = 0800, but AC = 131 is
        // validated: excluded by (b).
        assert!(!names.contains(&"phi4"));
    }

    #[test]
    fn example13_suggestion_after_transfix() {
        // After fixing t1[zip, AC, str, city], the suggestion should be
        // {phn, type, item} (Example 13).
        let (r, rules, master) = fig1();
        let z = attrs(&r, &["zip", "AC", "str", "city"]);
        let sug = suggest(&rules, &master, &t1_fixed(), z).unwrap();
        assert_eq!(
            sug.attr_set(),
            attrs(&r, &["phn", "type", "item"]),
            "suggested: {:?}",
            sug.attrs
        );
        assert_eq!(sug.covers, AttrSet::full(r.len()));
    }

    #[test]
    fn disagreeing_rule_on_validated_attr_is_dropped() {
        // t's validated city disagrees with what ϕ1 would derive: the
        // refined set must not contain phi1.city.
        let (r, rules, master) = fig1();
        let mut t = t1_fixed();
        t.set(r.attr("city").unwrap(), Value::str("Gla"));
        let z = attrs(&r, &["zip", "city"]);
        let refined = applicable_rules(&rules, &master, &t, z);
        let names: Vec<&str> = refined.iter().map(|r| r.name()).collect();
        assert!(!names.contains(&"phi1.city"));
        // the agreeing siblings survive
        assert!(names.contains(&"phi1.AC"));
    }

    #[test]
    fn no_master_support_drops_rule() {
        let (r, rules, master) = fig1();
        let mut t = t1_fixed();
        t.set(r.attr("zip").unwrap(), Value::str("XX9 9XX"));
        let z = attrs(&r, &["zip"]);
        let refined = applicable_rules(&rules, &master, &t, z);
        assert!(
            refined.iter().all(|r| !r.name().starts_with("phi1")),
            "no master tuple has zip XX9 9XX"
        );
    }

    #[test]
    fn suggestion_covers_unfixable_attrs_directly() {
        // From Z = ∅-ish (only item validated), the suggestion must pull
        // in enough keys; item is already there.
        let (r, rules, master) = fig1();
        let t = t1_fixed();
        let z = attrs(&r, &["item"]);
        let sug = suggest(&rules, &master, &t, z).unwrap();
        assert_eq!(sug.covers, AttrSet::full(r.len()));
        // S never includes already-validated attrs
        assert!(!sug.attr_set().contains(r.attr("item").unwrap()));
    }

    /// Plan-routed derivation is bit-identical to the legacy path:
    /// same refined rules (names, patterns), same suggestions, same
    /// `is_suggestion` verdicts — across validated-set shapes including
    /// no-validated-key and rhs-validated branches.
    #[test]
    fn plan_backed_derivation_matches_legacy() {
        use certainfix_rules::RulePlan;
        let (r, rules, master) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        let zs = [
            attrs(&r, &["zip", "AC", "str", "city"]),
            attrs(&r, &["zip"]),
            attrs(&r, &["item"]),
            attrs(&r, &["type"]),
            attrs(&r, &["phn", "type"]),
            AttrSet::EMPTY,
        ];
        for z in zs {
            let legacy = applicable_rules(&rules, &master, &t1_fixed(), z);
            let planned =
                applicable_rules_with(&rules, &master, &t1_fixed(), z, &plan, &mut scratch);
            assert_eq!(legacy, planned, "Z = {z:?}");
            let s1 = suggest(&rules, &master, &t1_fixed(), z);
            let s2 = suggest_with(&rules, &master, &t1_fixed(), z, &plan, &mut scratch);
            assert_eq!(s1, s2, "Z = {z:?}");
            if let Some(s) = s1 {
                assert!(is_suggestion_with(
                    &rules,
                    &master,
                    &t1_fixed(),
                    z,
                    &s.attrs,
                    &plan,
                    &mut scratch,
                ));
            }
        }
    }

    #[test]
    fn fully_validated_tuple_needs_no_suggestion() {
        let (r, rules, master) = fig1();
        assert!(suggest(&rules, &master, &t1_fixed(), AttrSet::full(r.len())).is_none());
    }

    #[test]
    fn suggestion_is_minimal_wrt_dropping() {
        let (r, rules, master) = fig1();
        let z = attrs(&r, &["zip", "AC", "str", "city"]);
        let sug = suggest(&rules, &master, &t1_fixed(), z).unwrap();
        let refined = applicable_rules(&rules, &master, &t1_fixed(), z);
        let sigma =
            RuleSet::from_rules(rules.r_schema().clone(), rules.m_schema().clone(), refined)
                .unwrap();
        let full = AttrSet::full(r.len());
        for a in sug.attr_set().iter() {
            let without = sug.attr_set() - AttrSet::singleton(a);
            assert_ne!(
                closure(&sigma, z | without).covered,
                full,
                "dropping {:?} should break coverage",
                r.attr_name(a)
            );
        }
    }
}
