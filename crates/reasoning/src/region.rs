//! Regions `(Z, Tc)` (Sect. 3 of the paper).

use std::fmt;

use certainfix_relation::{AttrId, AttrSet, PatternTuple, Schema, Tableau, Tuple};
use certainfix_rules::EditingRule;

use crate::error::AnalysisError;

/// A region `(Z, Tc)`: a list of distinct attributes of `R` and a
/// pattern tableau over (a subset of) `Z`.
///
/// Pattern rows are sparse ([`PatternTuple`]); an attribute of `Z` not
/// constrained by a row is implicitly a wildcard, exactly like the `_`
/// cells the paper writes out. A tuple is *marked* by the region iff it
/// matches some row.
#[derive(Clone, Debug, PartialEq)]
pub struct Region {
    z: Vec<AttrId>,
    z_set: AttrSet,
    tableau: Tableau,
}

impl Region {
    /// Build a region, validating that `Z` is duplicate-free and every
    /// row only constrains attributes of `Z`.
    pub fn new(z: Vec<AttrId>, tableau: Tableau) -> Result<Region, AnalysisError> {
        let mut z_set = AttrSet::EMPTY;
        for &a in &z {
            if !z_set.insert(a) {
                return Err(AnalysisError::BadRegion {
                    detail: format!("attribute {a:?} repeats in Z"),
                });
            }
        }
        for row in tableau.rows() {
            if !row.attr_set().is_subset(&z_set) {
                return Err(AnalysisError::BadRegion {
                    detail: "a tableau row constrains an attribute outside Z".to_string(),
                });
            }
        }
        Ok(Region { z, z_set, tableau })
    }

    /// A region whose tableau is the single empty pattern — it marks
    /// *every* tuple and asserts exactly `t[Z]` correct.
    pub fn universal(z: Vec<AttrId>) -> Result<Region, AnalysisError> {
        Region::new(z, Tableau::new(vec![PatternTuple::empty()]))
    }

    /// The attribute list `Z`.
    pub fn z(&self) -> &[AttrId] {
        &self.z
    }

    /// `Z` as a set.
    pub fn z_set(&self) -> AttrSet {
        self.z_set
    }

    /// The tableau `Tc`.
    pub fn tableau(&self) -> &Tableau {
        &self.tableau
    }

    /// Is `t` marked by this region?
    pub fn marks(&self, t: &Tuple) -> bool {
        self.tableau.marks(t)
    }

    /// `ext(Z, Tc, ϕ)` (Sect. 3): extend `Z` with `rhs(ϕ)` and each row
    /// with an (implicit) wildcard on it. If `rhs(ϕ) ∈ Z` already, the
    /// region is returned unchanged.
    pub fn ext(&self, rule: &EditingRule) -> Region {
        let b = rule.rhs();
        if self.z_set.contains(b) {
            return self.clone();
        }
        let mut z = self.z.clone();
        z.push(b);
        let mut z_set = self.z_set;
        z_set.insert(b);
        Region {
            z,
            z_set,
            tableau: self.tableau.clone(),
        }
    }

    /// Render as `(Z = [..], |Tc| = n)` against a schema.
    pub fn render(&self, schema: &Schema) -> String {
        format!(
            "(Z = {}, |Tc| = {})",
            schema.render_attrs(&self.z),
            self.tableau.len()
        )
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(|Z| = {}, |Tc| = {})", self.z.len(), self.tableau.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::Schema;
    use certainfix_relation::{tuple, PatternValue, Value};
    use certainfix_rules::EditingRule;

    fn supplier_schema() -> std::sync::Arc<Schema> {
        Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap()
    }

    #[test]
    fn example6_region_marks_t3() {
        // (Z_AH, T_AH) = ((AC, phn, type), {(0800, _, 1)})
        let r = supplier_schema();
        let ac = r.attr("AC").unwrap();
        let phn = r.attr("phn").unwrap();
        let ty = r.attr("type").unwrap();
        let row = PatternTuple::new(vec![
            (ac, PatternValue::Const(Value::str("0800"))),
            (ty, PatternValue::Const(Value::int(1))),
        ]);
        let region = Region::new(vec![ac, phn, ty], Tableau::new(vec![row])).unwrap();
        // t3 of Fig. 1: AC = 0800, type = 1
        let t3 = tuple![
            "Mark",
            "Smith",
            "0800",
            "6884563",
            1,
            "20 Baker St.",
            "Edi",
            "EH7 4AH",
            "BOOK"
        ];
        assert!(region.marks(&t3));
        // t1 has AC = 020: not marked
        let t1 = tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ];
        assert!(!region.marks(&t1));
        assert_eq!(region.z().len(), 3);
        assert!(region.render(&r).contains("[AC, phn, type]"));
    }

    #[test]
    fn example7_ext_adds_rhs() {
        // ext(Z_AH, T_AH, ϕ3) adds str/city/zip one at a time.
        let r = supplier_schema();
        let rm = r.clone();
        let ac = r.attr("AC").unwrap();
        let phn = r.attr("phn").unwrap();
        let ty = r.attr("type").unwrap();
        let region = Region::universal(vec![ac, phn, ty]).unwrap();
        let phi3_str = EditingRule::build(&r, &rm)
            .name("phi3.str")
            .key("AC", "AC")
            .key("phn", "phn")
            .fix("str", "str")
            .when_eq("type", 1)
            .finish()
            .unwrap();
        let ext = region.ext(&phi3_str);
        assert_eq!(ext.z().len(), 4);
        assert!(ext.z_set().contains(r.attr("str").unwrap()));
        // extending again with the same rule is a no-op
        let ext2 = ext.ext(&phi3_str);
        assert_eq!(ext2, ext);
        // the tableau is unchanged (implicit wildcard on the new attr)
        assert_eq!(ext.tableau().len(), region.tableau().len());
    }

    #[test]
    fn duplicate_z_rejected() {
        let r = supplier_schema();
        let ac = r.attr("AC").unwrap();
        let err = Region::universal(vec![ac, ac]).unwrap_err();
        assert!(matches!(err, AnalysisError::BadRegion { .. }));
    }

    #[test]
    fn row_outside_z_rejected() {
        let r = supplier_schema();
        let ac = r.attr("AC").unwrap();
        let zip = r.attr("zip").unwrap();
        let row = PatternTuple::new(vec![(zip, PatternValue::Const(Value::str("x")))]);
        let err = Region::new(vec![ac], Tableau::new(vec![row])).unwrap_err();
        assert!(matches!(err, AnalysisError::BadRegion { .. }));
    }

    #[test]
    fn universal_region_marks_everything() {
        let r = supplier_schema();
        let region = Region::universal(vec![r.attr("zip").unwrap()]).unwrap();
        let t = tuple!["a", "b", "c", "d", 9, "e", "f", "g", "h"];
        assert!(region.marks(&t));
        assert_eq!(region.to_string(), "(|Z| = 1, |Tc| = 1)");
    }
}
