//! The consistency problem (Sect. 4.1).
//!
//! `(Σ, Dm)` is *consistent relative to* `(Z, Tc)` iff every tuple
//! marked by the region has a unique fix. For concrete tableaux this is
//! PTIME (Theorem 4) and decided directly by the chase. For tableaux
//! with wildcards or negations on rule-relevant attributes, the checker
//! performs the active-domain expansion from the proof of Theorem 4(I):
//! each non-constant cell is instantiated over the attribute's decision
//! domain (master values reachable through rule key mappings, pattern
//! constants, plus one fresh value standing for "any other constant").
//! The expansion is exact but exponential in the number of expanded
//! cells — Theorem 1 says this cannot be avoided in general — so it
//! runs under an explicit instantiation budget.

use certainfix_relation::{AttrId, FxHashSet, MasterIndex, PatternValue, Tuple, Value};
use certainfix_rules::RuleSet;

use crate::chase::{Chase, ChaseResult, Conflict};
use crate::error::AnalysisError;
use crate::region::Region;

/// Default instantiation budget for expansion-based analyses.
pub const DEFAULT_BUDGET: u64 = 200_000;

/// Result of a consistency check.
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    /// `true` iff every checked instantiation has a unique fix.
    pub consistent: bool,
    /// A marked tuple without a unique fix, with its conflict.
    pub witness: Option<(Tuple, Conflict)>,
    /// Number of instantiations chased.
    pub checked: u64,
}

/// Decide whether `(Σ, Dm)` is consistent relative to `region`.
pub fn check_consistency(
    rules: &RuleSet,
    master: &MasterIndex,
    region: &Region,
    budget: u64,
) -> Result<ConsistencyReport, AnalysisError> {
    let chase = Chase::new(rules, master);
    let mut checked = 0u64;
    let mut enumerator = RowEnumerator::new(rules, master, region, budget)?;
    while let Some(tuple) = enumerator.next_instance() {
        checked += 1;
        if let ChaseResult::Conflict(c) = chase.run(&tuple, region.z_set()) {
            return Ok(ConsistencyReport {
                consistent: false,
                witness: Some((tuple, c)),
                checked,
            });
        }
    }
    Ok(ConsistencyReport {
        consistent: true,
        witness: None,
        checked,
    })
}

/// The decision domain of attribute `a` of `R`: every constant whose
/// identity the chase can distinguish on `a`, plus one fresh value.
///
/// Values are distinguishable only by (1) equality with a master value
/// reachable through some rule's key mapping `λϕ(a)` and (2) equality
/// with a pattern constant on `a`. All other constants behave alike, so
/// one fresh representative suffices (the `dom` construction in the
/// proofs of Theorems 1 and 4).
pub fn decision_domain(rules: &RuleSet, master: &MasterIndex, a: AttrId) -> Vec<Value> {
    let mut seen: FxHashSet<Value> = FxHashSet::default();
    let mut out = Vec::new();
    for (_, rule) in rules.iter() {
        if let Some(ma) = rule.master_attr_for(a) {
            for v in master.relation().active_domain(ma) {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        if let Some(cell) = rule.pattern().cell(a) {
            let v = match cell {
                PatternValue::Const(v) | PatternValue::Neq(v) => *v,
                PatternValue::Wildcard => continue,
            };
            if seen.insert(v) {
                out.push(v);
            }
        }
    }
    out.push(fresh_value(&seen));
    out
}

/// A value distinct from everything in `taken`.
fn fresh_value(taken: &FxHashSet<Value>) -> Value {
    let mut name = String::from("__fresh__");
    loop {
        let v = Value::str(&name);
        if !taken.contains(&v) {
            return v;
        }
        name.push('_');
    }
}

/// Streams the instantiations of a region's rows.
///
/// For each row, each `Z`-attribute gets a candidate list:
/// * rule-irrelevant attribute → `[Null]` (validated, never consulted);
/// * `Const(v)` → `[v]`;
/// * `Wildcard` → the decision domain;
/// * `Neq(v)` → the decision domain minus `v`.
pub(crate) struct RowEnumerator {
    z: Vec<AttrId>,
    arity: usize,
    /// Per row: candidate lists aligned with `z`.
    rows: Vec<Vec<Vec<Value>>>,
    row: usize,
    counters: Vec<usize>,
    exhausted_row: bool,
}

impl RowEnumerator {
    pub(crate) fn new(
        rules: &RuleSet,
        master: &MasterIndex,
        region: &Region,
        budget: u64,
    ) -> Result<RowEnumerator, AnalysisError> {
        let relevant = rules.touched_attrs();
        let mut rows = Vec::with_capacity(region.tableau().len());
        let mut total: u128 = 0;
        for row in region.tableau().rows() {
            let mut candidates: Vec<Vec<Value>> = Vec::with_capacity(region.z().len());
            let mut count: u128 = 1;
            for &a in region.z() {
                let cell = row.cell(a).cloned().unwrap_or(PatternValue::Wildcard);
                let cands: Vec<Value> = if !relevant.contains(a) {
                    vec![Value::Null]
                } else {
                    match cell {
                        PatternValue::Const(v) => vec![v],
                        PatternValue::Wildcard => decision_domain(rules, master, a),
                        PatternValue::Neq(v) => decision_domain(rules, master, a)
                            .into_iter()
                            .filter(|c| c != &v)
                            .collect(),
                    }
                };
                count = count.saturating_mul(cands.len().max(1) as u128);
                candidates.push(cands);
            }
            total = total.saturating_add(count);
            rows.push(candidates);
        }
        if total > budget as u128 {
            return Err(AnalysisError::BudgetExceeded {
                what: "region row instantiations",
                needed: total,
                budget,
            });
        }
        Ok(RowEnumerator {
            z: region.z().to_vec(),
            arity: rules.r_schema().len(),
            counters: vec![0; region.z().len()],
            exhausted_row: rows
                .first()
                .map(|r| r.iter().any(Vec::is_empty))
                .unwrap_or(true),
            rows,
            row: 0,
        })
    }

    /// Next instantiated tuple (nulls outside `Z`), or `None`.
    pub(crate) fn next_instance(&mut self) -> Option<Tuple> {
        loop {
            if self.row >= self.rows.len() {
                return None;
            }
            if self.exhausted_row {
                self.advance_row();
                continue;
            }
            let cands = &self.rows[self.row];
            let mut t = Tuple::nulls(self.arity);
            for (i, &a) in self.z.iter().enumerate() {
                t.set(a, cands[i][self.counters[i]]);
            }
            // odometer increment
            let mut i = 0;
            loop {
                if i == self.counters.len() {
                    self.exhausted_row = true;
                    break;
                }
                self.counters[i] += 1;
                if self.counters[i] < cands[i].len() {
                    break;
                }
                self.counters[i] = 0;
                i += 1;
            }
            if self.counters.is_empty() {
                self.exhausted_row = true;
            }
            return Some(t);
        }
    }

    fn advance_row(&mut self) {
        self.row += 1;
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.exhausted_row = self
            .rows
            .get(self.row)
            .map(|r| r.iter().any(Vec::is_empty))
            .unwrap_or(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{tuple, PatternTuple, Relation, Schema, Tableau};
    use certainfix_rules::parse_rules;
    use std::sync::Arc;

    fn fig1() -> (Arc<Schema>, RuleSet, MasterIndex) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        let rules = parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            phi4: match AC ~ AC set city := city when AC = '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = Relation::new(
            rm,
            vec![
                tuple![
                    "Robert",
                    "Brady",
                    "131",
                    "6884563",
                    "079172485",
                    "51 Elm Row",
                    "Edi",
                    "EH7 4AH",
                    "11/11/55",
                    "M"
                ],
                tuple![
                    "Mark",
                    "Smith",
                    "020",
                    "6884563",
                    "075568485",
                    "20 Baker St.",
                    "Lnd",
                    "NW1 6XE",
                    "25/12/67",
                    "M"
                ],
            ],
        )
        .unwrap();
        (r.clone(), rules, MasterIndex::new(Arc::new(master)))
    }

    fn region_universal(r: &Schema, names: &[&str]) -> Region {
        Region::universal(names.iter().map(|n| r.attr(n).unwrap()).collect()).unwrap()
    }

    #[test]
    fn example10_inconsistent_region() {
        // (Z_AHZ) = (AC, phn, type, zip) with unconstrained cells: t3's
        // combination (AC from s2's key, zip from s1) has two fixes.
        let (r, rules, master) = fig1();
        let region = region_universal(&r, &["AC", "phn", "type", "zip"]);
        let report = check_consistency(&rules, &master, &region, DEFAULT_BUDGET).unwrap();
        assert!(!report.consistent);
        let (witness, conflict) = report.witness.unwrap();
        // str and city both conflict between ϕ1 (zip key) and ϕ3
        // (AC/phn key); either may be reported first.
        assert!(
            conflict.attr == r.attr("city").unwrap() || conflict.attr == r.attr("str").unwrap()
        );
        // the witness is genuinely marked by the region
        assert!(region.marks(&witness));
    }

    #[test]
    fn consistent_region_with_type_pattern() {
        // (Z_zm, T_zm) = ((zip, phn, type), {(_, _, 2)}) of Example 8:
        // with type = 2 only ϕ1 and ϕ2 fire; s1/s2 are key-consistent,
        // so every marked tuple has a unique fix.
        let (r, rules, master) = fig1();
        let z = ["zip", "phn", "type"]
            .iter()
            .map(|n| r.attr(n).unwrap())
            .collect::<Vec<_>>();
        let row = PatternTuple::new(vec![(
            r.attr("type").unwrap(),
            PatternValue::Const(Value::int(2)),
        )]);
        let region = Region::new(z, Tableau::new(vec![row])).unwrap();
        let report = check_consistency(&rules, &master, &region, DEFAULT_BUDGET).unwrap();
        assert!(report.consistent, "witness: {:?}", report.witness);
        assert!(report.checked > 0);
    }

    #[test]
    fn concrete_tableau_checks_single_instance() {
        let (r, rules, master) = fig1();
        let z: Vec<AttrId> = ["zip", "phn", "type"]
            .iter()
            .map(|n| r.attr(n).unwrap())
            .collect();
        let row = PatternTuple::new(vec![
            (
                r.attr("zip").unwrap(),
                PatternValue::Const(Value::str("EH7 4AH")),
            ),
            (
                r.attr("phn").unwrap(),
                PatternValue::Const(Value::str("079172485")),
            ),
            (r.attr("type").unwrap(), PatternValue::Const(Value::int(2))),
        ]);
        let region = Region::new(z, Tableau::new(vec![row])).unwrap();
        let report = check_consistency(&rules, &master, &region, DEFAULT_BUDGET).unwrap();
        assert!(report.consistent);
        assert_eq!(report.checked, 1);
    }

    #[test]
    fn budget_is_enforced() {
        let (r, rules, master) = fig1();
        let region = region_universal(&r, &["AC", "phn", "type", "zip"]);
        let err = check_consistency(&rules, &master, &region, 2).unwrap_err();
        assert!(matches!(err, AnalysisError::BudgetExceeded { .. }));
    }

    #[test]
    fn empty_tableau_is_vacuously_consistent() {
        let (r, rules, master) = fig1();
        let region = Region::new(vec![r.attr("zip").unwrap()], Tableau::empty()).unwrap();
        let report = check_consistency(&rules, &master, &region, DEFAULT_BUDGET).unwrap();
        assert!(report.consistent);
        assert_eq!(report.checked, 0);
    }

    #[test]
    fn decision_domain_collects_master_and_pattern_values() {
        let (r, rules, master) = fig1();
        let dom_ac = decision_domain(&rules, &master, r.attr("AC").unwrap());
        // master ACs 131/020 (via ϕ3/ϕ4 key mapping) + pattern constant
        // 0800 + fresh
        assert!(dom_ac.contains(&Value::str("131")));
        assert!(dom_ac.contains(&Value::str("020")));
        assert!(dom_ac.contains(&Value::str("0800")));
        assert!(dom_ac
            .iter()
            .any(|v| v.as_str().is_some_and(|s| s.starts_with("__fresh__"))));
        // an attribute never used as a key and never in a pattern has
        // only the fresh value
        let dom_item = decision_domain(&rules, &master, r.attr("item").unwrap());
        assert_eq!(dom_item.len(), 1);
    }

    #[test]
    fn fresh_value_avoids_collisions() {
        let mut taken = FxHashSet::default();
        taken.insert(Value::str("__fresh__"));
        let v = fresh_value(&taken);
        assert_ne!(v, Value::str("__fresh__"));
    }
}
