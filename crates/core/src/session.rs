//! The unified repair-session API: streaming ingest behind a
//! [`TupleSource`] abstraction.
//!
//! The paper's framework is a *data monitor* — it repairs tuples at the
//! point of entry, i.e. it is fundamentally a streaming system. This
//! module makes that the primary entry-point surface: a pull-based
//! [`TupleSource`] abstracts over where dirty tuples come from (an
//! in-memory slice, the dirty-data generator's batch iterator, or a
//! bounded channel fed by a live producer), and a [`RepairSession`]
//! drains any source through the work-stealing
//! [`BatchRepairEngine`] and its engine-lifetime
//! [`SharedSuggestionCache`](crate::SharedSuggestionCache), emitting
//! one unified [`SessionReport`]. The session is also where the two
//! *live* axes of the deployment surface meet:
//!
//! * **live master data** —
//!   [`apply_master_delta`](RepairSession::apply_master_delta) applies
//!   a [`MasterDelta`] between batches; the next batch repairs against
//!   the new [generation](RepairSession::generation), each
//!   [`BatchReport::generation`] records the epoch it pinned, and the
//!   merged report counts the hand-offs in
//!   [`MonitorStats::plan_rebuilds`];
//! * **workloads** — the
//!   [builder](RepairSessionBuilder::workload) selects what runs per
//!   tuple: the paper's editing-rule repair (default) or the
//!   `IncRep`-style CFD baseline
//!   ([`Workload::Cfd`](crate::Workload)), both drained through the
//!   same sources, engine, and reports.
//!
//! A session is the surface for **one** logical stream; the engine
//! behind it was never limited to one session. Borrowed sessions
//! ([`BatchRepairEngine::session_opts`]) may take turns over one warm
//! engine, and for N streams that must run *concurrently* — many
//! tenants feeding one deployment — the
//! [`service`](crate::service) layer multiplexes N sessions fairly
//! over a single engine and hands back one [`SessionReport`] per
//! stream, shaped exactly as if each had run alone here.
//!
//! ```
//! use certainfix_core::session::{RepairSessionBuilder, SliceSource};
//! use certainfix_core::SimulatedUser;
//! use certainfix_datagen::{Dataset, DirtyConfig, Hosp, Workload};
//!
//! let hosp = Hosp::generate(100);
//! let ds = Dataset::generate(&hosp, &DirtyConfig { input_size: 40, ..Default::default() });
//! let dirty: Vec<_> = ds.inputs.iter().map(|dt| dt.dirty.clone()).collect();
//!
//! let mut session = RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
//!     .threads(2)
//!     .build();
//! session.drain(SliceSource::with_batch(&dirty, 16), |i| {
//!     SimulatedUser::new(ds.inputs[i].clean.clone())
//! });
//! let report = session.finish();
//! assert_eq!(report.tuples, 40);
//! ```
//!
//! # Determinism
//!
//! A session inherits the engine's guarantee and extends it across
//! batching: for plain `CertainFix` (`bdd(false)`) with the shared
//! cache off, the concatenated outcomes and the merged count fields of
//! a drained stream are **bit-identical to a single sequential
//! [`repair_opts`](crate::BatchRepairEngine::repair_opts) call over the
//! same tuples in the same order** — regardless of how the source cuts
//! the stream into batches, the channel depth, the schedule, or the
//! worker count. See [`TupleSource`] for the contract that makes this
//! hold.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use certainfix_datagen::{Batches, Workload as GenWorkload};
use certainfix_relation::{MasterDelta, Relation, RelationError, Tuple};
use certainfix_rules::RuleSet;

use crate::bdd::BddStats;
use crate::certainfix::{CertainFixConfig, FixOutcome};
use crate::engine::{
    BatchRepairEngine, BatchReport, RepairContext, RepairOptions, Schedule, Workload,
};
use crate::monitor::{InitialRegion, MonitorStats};
use crate::oracle::UserOracle;
use crate::sharedcache::SharedCacheStats;

/// A pull-based source of dirty-tuple batches — the ingest side of a
/// [`RepairSession`].
///
/// # Ordering and determinism contract
///
/// A source yields the tuples of one logical stream, **in stream
/// order**: concatenating the yielded batches must always produce the
/// same tuple sequence, no matter how the stream is cut into batches.
/// The session assigns each tuple its *global stream index* (the
/// number of tuples drained before it) and hands that index to the
/// oracle factory, so a tuple meets the same oracle whether it arrives
/// in one batch of 10 000 or 10 000 batches of one. Under that
/// contract, draining a source through a session is — for plain
/// `CertainFix` with the caches off — bit-identical in outcomes and
/// merged metric counts to repairing the concatenated stream as one
/// sequential batch. Sources must *not* reorder, drop, or duplicate
/// tuples; a source that did would silently misalign tuples and
/// oracles.
///
/// The same contract is what the multi-session
/// [`RepairService`](crate::service::RepairService) builds on: each of
/// its streams owns one source and one stream-index space, its ingest
/// lane pulls `next_batch` exactly like a session drain does, and the
/// per-stream indexes never mix — so a stream meets the same oracles
/// (and, caches off, produces the same outcomes) whether it is drained
/// alone or multiplexed with any number of other streams.
pub trait TupleSource {
    /// Pull the next batch of dirty tuples; `None` ends the stream.
    /// An empty batch is permitted (the session skips it) but a source
    /// should avoid yielding them indefinitely.
    fn next_batch(&mut self) -> Option<Vec<Tuple>>;

    /// Bounds on the number of **tuples** (not batches) still to come,
    /// `(lower, Some(upper))` when known. Sessions use it to
    /// preallocate outcome buffers; like [`Iterator::size_hint`] it is
    /// advisory and must never be trusted for correctness.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// Today's batch entry point as a source: a borrowed `&[Tuple]`,
/// yielded in stream order in batches of a configurable size.
#[derive(Clone, Debug)]
pub struct SliceSource<'a> {
    tuples: &'a [Tuple],
    batch: usize,
}

impl<'a> SliceSource<'a> {
    /// The whole slice as a single batch (the exact shape of a
    /// [`repair_opts`](crate::BatchRepairEngine::repair_opts) call).
    pub fn new(tuples: &'a [Tuple]) -> SliceSource<'a> {
        Self::with_batch(tuples, tuples.len().max(1))
    }

    /// The slice cut into batches of (up to) `batch` tuples.
    pub fn with_batch(tuples: &'a [Tuple], batch: usize) -> SliceSource<'a> {
        assert!(batch > 0, "batch size must be positive");
        SliceSource { tuples, batch }
    }
}

impl TupleSource for SliceSource<'_> {
    fn next_batch(&mut self) -> Option<Vec<Tuple>> {
        if self.tuples.is_empty() {
            return None;
        }
        let (head, rest) = self.tuples.split_at(self.batch.min(self.tuples.len()));
        self.tuples = rest;
        Some(head.to_vec())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.tuples.len(), Some(self.tuples.len()))
    }
}

/// Adapter over the dirty-data generator's batch iterator
/// ([`Dataset::batches`](certainfix_datagen::Dataset::batches)): each
/// generated batch's dirty tuples, in stream order.
///
/// The generator keeps every dirty tuple paired with its ground truth;
/// this adapter yields only the dirty side (a [`TupleSource`] is what
/// arrives at the entry point — the truth is the oracle's business).
/// Batch generation is deterministic and independently regenerable, so
/// an oracle factory that needs the ground truth can materialize the
/// same stream up front by iterating `Dataset::batches` with the same
/// config and collecting `inputs`.
pub struct BatchesSource<'a, W: GenWorkload + ?Sized> {
    batches: Batches<'a, W>,
}

impl<'a, W: GenWorkload + ?Sized> BatchesSource<'a, W> {
    /// Wrap a generator batch iterator.
    pub fn new(batches: Batches<'a, W>) -> BatchesSource<'a, W> {
        BatchesSource { batches }
    }
}

impl<W: GenWorkload + ?Sized> TupleSource for BatchesSource<'_, W> {
    fn next_batch(&mut self) -> Option<Vec<Tuple>> {
        self.batches
            .next()
            .map(|ds| ds.inputs.into_iter().map(|dt| dt.dirty).collect())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.batches.remaining_tuples();
        (n, Some(n))
    }
}

/// Real backpressured streaming ingest: a [`TupleSource`] over the
/// receiving half of a bounded [`std::sync::mpsc`] channel.
///
/// [`ChannelSource::bounded`] returns the producer handle and the
/// source; `depth` bounds how many batches may be in flight, so a
/// producer that outruns the repair workers blocks on
/// [`SyncSender::send`] instead of buffering the stream unboundedly.
/// The stream ends when every sender is dropped. Channel delivery is
/// FIFO, so the ordering contract of [`TupleSource`] reduces to the
/// producer sending the stream in order.
///
/// A producer that goes away *mid-stream* (its thread panics, its
/// socket drops — anything that drops the sender with batches still
/// buffered) ends the stream gracefully: every batch sent before the
/// disconnect is still yielded, in order, and only then does
/// [`next_batch`](TupleSource::next_batch) report end-of-stream. No
/// tuple the consumer was promised is lost, and nothing panics — the
/// property the network ingest lane (`crates/net`) leans on to tear
/// down a dead connection's session cleanly.
pub struct ChannelSource {
    rx: Receiver<Vec<Tuple>>,
    hint: (usize, Option<usize>),
}

impl ChannelSource {
    /// A bounded channel of `depth` in-flight batches (clamped to at
    /// least 1) and the source draining it.
    pub fn bounded(depth: usize) -> (SyncSender<Vec<Tuple>>, ChannelSource) {
        let (tx, rx) = sync_channel(depth.max(1));
        (
            tx,
            ChannelSource {
                rx,
                hint: (0, None),
            },
        )
    }

    /// Attach a tuple-count hint (the producer often knows the stream
    /// length even though the channel cannot).
    pub fn with_size_hint(mut self, lower: usize, upper: Option<usize>) -> ChannelSource {
        self.hint = (lower, upper);
        self
    }
}

impl TupleSource for ChannelSource {
    fn next_batch(&mut self) -> Option<Vec<Tuple>> {
        loop {
            match self.rx.recv() {
                Ok(batch) if batch.is_empty() => continue,
                Ok(batch) => {
                    self.hint.0 = self.hint.0.saturating_sub(batch.len());
                    self.hint.1 = self.hint.1.map(|u| u.saturating_sub(batch.len()));
                    return Some(batch);
                }
                Err(_) => return None,
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.hint
    }
}

/// Configures and builds an owned [`RepairSession`]: precomputation
/// knobs (BDD, initial region, `CertainFix` config) plus the engine
/// knobs of [`RepairOptions`] (threads / [`Schedule`] / shared cache /
/// chunk size).
#[derive(Clone)]
pub struct RepairSessionBuilder {
    rules: RuleSet,
    master: Arc<Relation>,
    use_bdd: bool,
    initial: InitialRegion,
    config: CertainFixConfig,
    workload: Workload,
    opts: RepairOptions,
    cache_hygiene: bool,
}

impl RepairSessionBuilder {
    /// A session over `(Σ, Dm)` with the defaults: plain `CertainFix`,
    /// best initial region, one worker, [`Schedule::Steal`], shared
    /// cache on.
    pub fn new(rules: RuleSet, master: Arc<Relation>) -> RepairSessionBuilder {
        RepairSessionBuilder {
            rules,
            master,
            use_bdd: false,
            initial: InitialRegion::default(),
            config: CertainFixConfig::default(),
            workload: Workload::default(),
            opts: RepairOptions::default(),
            cache_hygiene: true,
        }
    }

    /// Serve suggestions from per-worker BDD caches (`CertainFix+`).
    pub fn bdd(mut self, on: bool) -> Self {
        self.use_bdd = on;
        self
    }

    /// What runs per tuple: the paper's editing-rule repair
    /// ([`Workload::EditRules`], the default) or the `IncRep`-style
    /// cost-based CFD baseline ([`Workload::Cfd`]).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Which precomputed region seeds the first suggestion.
    pub fn initial_region(mut self, region: InitialRegion) -> Self {
        self.initial = region;
        self
    }

    /// The `CertainFix` interaction-loop configuration.
    pub fn config(mut self, config: CertainFixConfig) -> Self {
        self.config = config;
        self
    }

    /// Worker threads per batch (`0` = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// The scheduling policy.
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.opts.schedule = schedule;
        self
    }

    /// Pool computed suggestions in the engine-lifetime shared cache.
    pub fn shared_cache(mut self, on: bool) -> Self {
        self.opts.shared_cache = on;
        self
    }

    /// Shared-cache lifecycle hygiene (delta invalidation, clock
    /// eviction at the caps; on by default). Off keeps the historical
    /// insert-only pool — see the
    /// [`sharedcache`](crate::sharedcache) module docs.
    pub fn cache_hygiene(mut self, on: bool) -> Self {
        self.cache_hygiene = on;
        self
    }

    /// Chunk granularity for [`Schedule::Steal`] (`0` = auto).
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.opts.chunk = chunk;
        self
    }

    /// Replace all engine knobs at once.
    pub fn options(mut self, opts: RepairOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Build the precomputation and the session (owning its engine).
    pub fn build(self) -> RepairSession<'static> {
        let engine = BatchRepairEngine::with_cache_hygiene(
            RepairContext::with_workload(
                self.rules,
                self.master,
                self.use_bdd,
                self.initial,
                self.config,
                self.workload,
            ),
            self.cache_hygiene,
        );
        RepairSession::from_engine(engine, self.opts)
    }
}

/// Owned or borrowed engine behind a session: the builder produces an
/// owning session, while [`BatchRepairEngine::session_opts`] (and the
/// one-batch [`repair_opts`](BatchRepairEngine::repair_opts) shim)
/// wrap a borrowed engine so the engine-lifetime shared cache keeps
/// its owner.
enum EngineRef<'e> {
    Owned(Box<BatchRepairEngine>),
    Borrowed(&'e BatchRepairEngine),
}

impl EngineRef<'_> {
    fn get(&self) -> &BatchRepairEngine {
        match self {
            EngineRef::Owned(engine) => engine,
            EngineRef::Borrowed(engine) => engine,
        }
    }
}

/// A repair session: drains [`TupleSource`]s (or explicit batches)
/// through the work-stealing engine under one fixed set of
/// [`RepairOptions`], accumulating per-batch [`BatchReport`]s and the
/// global stream offset. [`finish`](Self::finish) (or
/// [`report`](Self::report)) folds them into a [`SessionReport`].
pub struct RepairSession<'e> {
    engine: EngineRef<'e>,
    opts: RepairOptions,
    batches: Vec<BatchReport>,
    tuples: usize,
    wall: Duration,
    /// Master deltas applied through this session (charged to the
    /// merged report's `plan_rebuilds`).
    rebuilds: u64,
}

impl<'e> RepairSession<'e> {
    /// Wrap an engine the session will own (the shared suggestion
    /// cache then lives exactly as long as the session).
    pub fn from_engine(engine: BatchRepairEngine, opts: RepairOptions) -> RepairSession<'static> {
        RepairSession {
            engine: EngineRef::Owned(Box::new(engine)),
            opts,
            batches: Vec::new(),
            tuples: 0,
            wall: Duration::ZERO,
            rebuilds: 0,
        }
    }

    /// Wrap a borrowed engine (see
    /// [`BatchRepairEngine::session_opts`]); pooled suggestions persist
    /// in the engine after the session ends.
    pub fn borrowed(engine: &'e BatchRepairEngine, opts: RepairOptions) -> RepairSession<'e> {
        RepairSession {
            engine: EngineRef::Borrowed(engine),
            opts,
            batches: Vec::new(),
            tuples: 0,
            wall: Duration::ZERO,
            rebuilds: 0,
        }
    }

    /// Apply a batch of master mutations to the live master: the
    /// engine builds the next epoch (delta-maintained index, recompiled
    /// plan, re-ranked catalog) and swaps it in; batches pushed after
    /// this call repair against the new generation, while any batch
    /// already fanned out finishes on the epoch it pinned. Returns the
    /// new generation. The merged [`SessionReport`] counts these
    /// hand-offs in [`MonitorStats::plan_rebuilds`].
    pub fn apply_master_delta(&mut self, delta: &MasterDelta) -> Result<u64, RelationError> {
        let generation = self.engine.get().apply_master_delta(delta)?;
        self.rebuilds += 1;
        Ok(generation)
    }

    /// The master generation the next pushed batch will repair against.
    pub fn generation(&self) -> u64 {
        self.engine.get().context().generation()
    }

    /// The engine behind this session.
    pub fn engine(&self) -> &BatchRepairEngine {
        self.engine.get()
    }

    /// The engine knobs every batch of this session runs under.
    pub fn options(&self) -> &RepairOptions {
        &self.opts
    }

    /// Tuples ingested so far (the global stream offset the next batch
    /// starts at).
    pub fn tuples_ingested(&self) -> usize {
        self.tuples
    }

    /// The per-batch reports accumulated so far, in stream order.
    pub fn batches(&self) -> &[BatchReport] {
        &self.batches
    }

    /// Repair one batch. `oracle_for` receives the **global stream
    /// index** (tuples ingested before this batch + offset within it),
    /// so a stream meets the same oracles however it is batched; like
    /// the engine's, it is called from worker threads and must depend
    /// only on the index. Returns the appended report.
    pub fn push_batch<F, O>(&mut self, dirty: &[Tuple], oracle_for: F) -> &BatchReport
    where
        F: Fn(usize) -> O + Sync,
        O: UserOracle,
    {
        let base = self.tuples;
        let report = self
            .engine
            .get()
            .fan_out(dirty, &self.opts, |i| oracle_for(base + i));
        self.tuples += dirty.len();
        self.wall += report.wall;
        self.batches.push(report);
        self.batches.last().expect("batch just pushed")
    }

    /// Stream a slice through a bounded channel drained by this
    /// session: a producer thread sends `batch`-sized chunks with
    /// `depth` in-flight batches ([`ChannelSource::bounded`]) while
    /// the session's workers repair them — generation/transport
    /// overlaps repair, with real backpressure. Equivalent in outcomes
    /// and merged counts to draining
    /// [`SliceSource::with_batch`]`(tuples, batch)` (and, for plain
    /// `CertainFix` with the caches off, to one sequential batch).
    /// Returns the number of tuples drained.
    pub fn stream_slice<F, O>(
        &mut self,
        tuples: &[Tuple],
        batch: usize,
        depth: usize,
        oracle_for: F,
    ) -> usize
    where
        F: Fn(usize) -> O + Sync,
        O: UserOracle,
    {
        assert!(batch > 0, "batch size must be positive");
        let (tx, source) = ChannelSource::bounded(depth);
        let source = source.with_size_hint(tuples.len(), Some(tuples.len()));
        std::thread::scope(|s| {
            s.spawn(move || {
                for chunk in tuples.chunks(batch) {
                    if tx.send(chunk.to_vec()).is_err() {
                        break; // the session stopped draining
                    }
                }
            });
            self.drain(source, oracle_for)
        })
    }

    /// Drain a source to exhaustion, one [`push_batch`](Self::push_batch)
    /// per yielded batch (empty batches are skipped). Returns the
    /// number of tuples drained.
    pub fn drain<S, F, O>(&mut self, mut source: S, oracle_for: F) -> usize
    where
        S: TupleSource,
        F: Fn(usize) -> O + Sync,
        O: UserOracle,
    {
        let (_, upper) = source.size_hint();
        let mut drained = 0usize;
        while let Some(batch) = source.next_batch() {
            if batch.is_empty() {
                continue;
            }
            if drained == 0 {
                if let Some(hi) = upper {
                    // preallocate the per-batch report list, assuming
                    // the first batch's size is typical of the stream
                    self.batches.reserve(hi.div_ceil(batch.len()));
                }
            }
            self.push_batch(&batch, &oracle_for);
            drained += batch.len();
        }
        drained
    }

    fn merged(&self) -> SessionReport {
        let mut report = SessionReport::from_batches(&self.batches, self.wall, self.tuples);
        // deltas are a session-level event: the per-batch worker stats
        // never see them, so the fold charges them here
        report.stats.plan_rebuilds += self.rebuilds;
        report
    }

    /// Snapshot the unified report so far without ending the session
    /// (per-batch reports are cloned).
    pub fn report(&self) -> SessionReport {
        let mut report = self.merged();
        report.batches = self.batches.clone();
        report
    }

    /// End the session and emit the unified report. An owned engine
    /// (and its shared cache) is dropped with the session; a borrowed
    /// engine keeps its pool.
    pub fn finish(self) -> SessionReport {
        let mut report = self.merged();
        report.batches = self.batches;
        report
    }
}

/// The unified result of one session: every per-batch [`BatchReport`]
/// plus the cumulative merged statistics.
#[derive(Clone, Debug)]
pub struct SessionReport {
    /// Per-batch reports, in stream order; each batch's outcomes and
    /// worker ranges are indexed from the *batch's* start (see
    /// [`batches_with_offsets`](Self::batches_with_offsets) for global
    /// positions).
    pub batches: Vec<BatchReport>,
    /// Merged monitor statistics ([`MonitorStats::merge`] over all
    /// batches — counts sum, the interner watermark maxes).
    pub stats: MonitorStats,
    /// Merged per-worker BDD cache statistics.
    pub bdd: BddStats,
    /// Shared-cache statistics *attributed to this session*: `hits` /
    /// `misses` sum the per-batch attributed counters (so per-session
    /// numbers across any set of sessions over one engine sum to the
    /// engine-global counters), while `entries` / `per_shard` snapshot
    /// the engine-lifetime pool after the session's last cache-enabled
    /// batch. `None` when the shared cache was off.
    pub shared: Option<SharedCacheStats>,
    /// Summed repair wall-clock over all batches. Time the session
    /// spent *waiting on the source* (e.g. a backpressured channel) is
    /// not included.
    pub wall: Duration,
    /// Total tuples repaired.
    pub tuples: usize,
}

impl SessionReport {
    /// Fold per-batch reports into a session report: statistics merge
    /// ([`MonitorStats::merge`] / [`BddStats::merge`] — counts sum, the
    /// interner watermark maxes), attributed shared-cache counters sum
    /// (`entries` / `per_shard` keep the last batch's pool snapshot),
    /// and the returned report's `batches` list is left empty — attach
    /// the folded reports afterwards if the caller wants them carried.
    /// Both [`RepairSession`] and the [`service`](crate::service)
    /// multiplexer stitch their reports through this one fold, so a
    /// session's merged numbers are the same whether it ran alone or
    /// multiplexed.
    pub fn from_batches(folded: &[BatchReport], wall: Duration, tuples: usize) -> SessionReport {
        let mut stats = MonitorStats::default();
        let mut bdd = BddStats::default();
        let mut shared: Option<SharedCacheStats> = None;
        for batch in folded {
            stats.merge(&batch.stats);
            bdd.merge(&batch.bdd);
            if let Some(s) = &batch.shared {
                let acc = shared.get_or_insert_with(SharedCacheStats::default);
                // per-batch counters are attributed, so they sum ...
                acc.hits += s.hits;
                acc.misses += s.misses;
                // ... while occupancy and the engine-lifetime lifecycle
                // counters are snapshots: keep the latest
                acc.entries = s.entries;
                acc.keys = s.keys;
                acc.evicted_delta = s.evicted_delta;
                acc.evicted_lru = s.evicted_lru;
                acc.revalidated = s.revalidated;
                acc.saturated = s.saturated;
                acc.keys_high_water = s.keys_high_water;
                acc.entries_high_water = s.entries_high_water;
                acc.per_shard.clone_from(&s.per_shard);
            }
        }
        SessionReport {
            batches: Vec::new(),
            stats,
            bdd,
            shared,
            wall,
            tuples,
        }
    }

    /// Per-tuple outcomes across all batches, in global stream order.
    pub fn outcomes(&self) -> impl Iterator<Item = &FixOutcome> {
        self.batches.iter().flat_map(|b| b.outcomes.iter())
    }

    /// The batches paired with their global stream offsets.
    pub fn batches_with_offsets(&self) -> impl Iterator<Item = (usize, &BatchReport)> {
        let mut offset = 0usize;
        self.batches.iter().map(move |b| {
            let at = offset;
            offset += b.outcomes.len();
            (at, b)
        })
    }

    /// Flatten into the outcome vector of the equivalent single-batch
    /// run (preallocated from the session's tuple count).
    pub fn into_outcomes(self) -> Vec<FixOutcome> {
        let mut outcomes = Vec::with_capacity(self.tuples);
        for batch in self.batches {
            outcomes.extend(batch.outcomes);
        }
        outcomes
    }

    /// Session throughput in tuples per second (repair wall clock).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.tuples as f64 / secs
        }
    }
}

/// A session can also be built straight from a prepared
/// [`RepairContext`].
impl From<RepairContext> for RepairSession<'static> {
    fn from(ctx: RepairContext) -> RepairSession<'static> {
        RepairSession::from_engine(BatchRepairEngine::new(ctx), RepairOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate_rounds, merge_round_series, RoundMetrics, TupleEval};
    use crate::oracle::SimulatedUser;
    use certainfix_cfd::{repair_tuple, rules_to_cfds, IncRepConfig};
    use certainfix_datagen::{Dataset, DirtyConfig, DirtyTuple, Hosp};
    use certainfix_relation::{AttrSet, MasterIndex};

    fn hosp_stream(dm: usize, inputs: usize, skew: f64) -> (Hosp, Dataset) {
        let hosp = Hosp::generate(dm);
        let cfg = DirtyConfig {
            duplicate_rate: 0.3,
            noise_rate: 0.2,
            input_size: inputs,
            seed: 0x5EED_F00D,
            skew,
            ..DirtyConfig::default()
        };
        let ds = Dataset::generate(&hosp, &cfg);
        (hosp, ds)
    }

    fn dirty_of(ds: &Dataset) -> Vec<Tuple> {
        ds.inputs.iter().map(|dt| dt.dirty.clone()).collect()
    }

    fn plain_session(hosp: &Hosp, threads: usize) -> RepairSession<'static> {
        RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
            .threads(threads)
            .shared_cache(false)
            .build()
    }

    /// Merge per-(batch, worker) metric rows — any partition of the
    /// stream merges to the same rows, since the merge sums raw counts.
    fn eval_merged(
        report: &SessionReport,
        inputs: &[DirtyTuple],
        rounds: usize,
    ) -> Vec<RoundMetrics> {
        let mut merged: Option<Vec<RoundMetrics>> = None;
        for (offset, batch) in report.batches_with_offsets() {
            for worker in &batch.workers {
                let evals: Vec<TupleEval> = worker
                    .indexes()
                    .map(|i| TupleEval {
                        outcome: &batch.outcomes[i],
                        dirty: &inputs[offset + i].dirty,
                        clean: &inputs[offset + i].clean,
                    })
                    .collect();
                let m = evaluate_rounds(&evals, rounds);
                match &mut merged {
                    None => merged = Some(m),
                    Some(acc) => merge_round_series(acc, &m),
                }
            }
        }
        merged.expect("at least one batch")
    }

    fn assert_stream_equals_batch(streamed: &SessionReport, batch: &BatchReport, what: &str) {
        assert_eq!(streamed.tuples, batch.outcomes.len(), "{what}");
        for (i, (a, b)) in streamed.outcomes().zip(&batch.outcomes).enumerate() {
            assert_eq!(a.tuple, b.tuple, "tuple {i} ({what})");
            assert_eq!(a.certain, b.certain, "tuple {i} ({what})");
            assert_eq!(a.validated, b.validated, "tuple {i} ({what})");
            assert_eq!(a.rounds.len(), b.rounds.len(), "tuple {i} ({what})");
        }
        assert_eq!(streamed.stats.tuples, batch.stats.tuples, "{what}");
        assert_eq!(streamed.stats.certain, batch.stats.certain, "{what}");
        assert_eq!(streamed.stats.rounds, batch.stats.rounds, "{what}");
    }

    /// The satellite determinism test: a skewed 10k HOSP stream
    /// drained through a bounded [`ChannelSource`] at 1, 2, and 4
    /// workers yields outcomes and merged metrics bit-identical to one
    /// [`repair_opts`](BatchRepairEngine::repair_opts) call over the
    /// whole stream.
    #[test]
    fn channel_stream_is_bit_identical_to_one_batch_1_2_4() {
        let (hosp, ds) = hosp_stream(500, 10_000, 1.0);
        let dirty = dirty_of(&ds);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());
        let opts = RepairOptions {
            threads: 1,
            shared_cache: false,
            ..RepairOptions::default()
        };
        let batch = engine.repair_opts(&dirty, &opts, oracle_for);
        let batch_metrics = {
            let mut rows: Option<Vec<RoundMetrics>> = None;
            for worker in &batch.workers {
                let evals: Vec<TupleEval> = worker
                    .indexes()
                    .map(|i| TupleEval {
                        outcome: &batch.outcomes[i],
                        dirty: &ds.inputs[i].dirty,
                        clean: &ds.inputs[i].clean,
                    })
                    .collect();
                let m = evaluate_rounds(&evals, 4);
                match &mut rows {
                    None => rows = Some(m),
                    Some(acc) => merge_round_series(acc, &m),
                }
            }
            rows.unwrap()
        };

        for workers in [1usize, 2, 4] {
            let mut session = plain_session(&hosp, workers);
            let (tx, source) = ChannelSource::bounded(2);
            let source = source.with_size_hint(dirty.len(), Some(dirty.len()));
            let report = std::thread::scope(|s| {
                let producer_dirty = &dirty;
                s.spawn(move || {
                    for chunk in producer_dirty.chunks(512) {
                        if tx.send(chunk.to_vec()).is_err() {
                            break;
                        }
                    }
                });
                session.drain(source, oracle_for);
                session.finish()
            });
            assert!(report.batches.len() > 1, "the stream really was batched");
            assert_stream_equals_batch(&report, &batch, &format!("{workers} workers"));
            assert_eq!(
                eval_merged(&report, &ds.inputs, 4),
                batch_metrics,
                "merged metric rows ({workers} workers)"
            );
        }
    }

    /// Batching shape is immaterial: the same stream drained from a
    /// [`SliceSource`] at several batch sizes merges to the same
    /// outcomes and counts.
    #[test]
    fn slice_source_batch_size_is_immaterial() {
        let (hosp, ds) = hosp_stream(200, 600, 0.0);
        let dirty = dirty_of(&ds);
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());

        let mut whole = plain_session(&hosp, 2);
        whole.drain(SliceSource::new(&dirty), oracle_for);
        let whole = whole.finish();
        assert_eq!(whole.batches.len(), 1);

        for batch in [1usize, 7, 100, 600] {
            let mut session = plain_session(&hosp, 2);
            let drained = session.drain(SliceSource::with_batch(&dirty, batch), oracle_for);
            assert_eq!(drained, 600);
            assert_eq!(session.tuples_ingested(), 600);
            let report = session.finish();
            assert_eq!(report.batches.len(), 600usize.div_ceil(batch));
            for (i, (a, b)) in report.outcomes().zip(whole.outcomes()).enumerate() {
                assert_eq!(a.tuple, b.tuple, "tuple {i} at batch {batch}");
            }
            assert_eq!(report.stats.certain, whole.stats.certain);
            assert_eq!(report.stats.rounds, whole.stats.rounds);
            assert_eq!(report.tuples, whole.tuples);
        }
    }

    /// The channel convenience is equivalent to the slice source cut
    /// the same way (and so, transitively, to one sequential batch).
    #[test]
    fn stream_slice_matches_slice_source() {
        let (hosp, ds) = hosp_stream(150, 300, 0.0);
        let dirty = dirty_of(&ds);
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());
        let mut sliced = plain_session(&hosp, 2);
        sliced.drain(SliceSource::with_batch(&dirty, 64), oracle_for);
        let sliced = sliced.finish();
        let mut streamed = plain_session(&hosp, 2);
        assert_eq!(streamed.stream_slice(&dirty, 64, 2, oracle_for), 300);
        let streamed = streamed.finish();
        assert_eq!(sliced.batches.len(), streamed.batches.len());
        for (i, (a, b)) in sliced.outcomes().zip(streamed.outcomes()).enumerate() {
            assert_eq!(a.tuple, b.tuple, "tuple {i}");
        }
        assert_eq!(sliced.stats.certain, streamed.stats.certain);
        assert_eq!(sliced.stats.rounds, streamed.stats.rounds);
    }

    /// The generator adapter streams exactly the batches the iterator
    /// generates, and its size hint counts the remaining tuples.
    #[test]
    fn batches_source_matches_the_generator() {
        let hosp = Hosp::generate(80);
        let cfg = DirtyConfig {
            input_size: 103,
            ..Default::default()
        };
        let expected: Vec<Vec<Tuple>> = Dataset::batches(&hosp, &cfg, 40)
            .map(|ds| ds.inputs.into_iter().map(|dt| dt.dirty).collect())
            .collect();

        let mut source = BatchesSource::new(Dataset::batches(&hosp, &cfg, 40));
        assert_eq!(source.size_hint(), (103, Some(103)));
        let mut seen = Vec::new();
        let mut remaining = 103usize;
        while let Some(batch) = source.next_batch() {
            remaining -= batch.len();
            assert_eq!(source.size_hint(), (remaining, Some(remaining)));
            seen.push(batch);
        }
        assert_eq!(seen, expected);
    }

    /// An owned session's engine-lifetime shared cache stays warm
    /// across the batches of one stream.
    #[test]
    fn session_shared_cache_warms_across_batches() {
        let (hosp, ds) = hosp_stream(150, 400, 0.0);
        let dirty = dirty_of(&ds);
        let mut session = RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
            .bdd(true)
            .threads(2)
            .shared_cache(true)
            .build();
        session.drain(SliceSource::with_batch(&dirty, 100), |i| {
            SimulatedUser::new(ds.inputs[i].clean.clone())
        });
        assert!(!session.engine().shared_cache().is_empty());
        let global = session.engine().shared_cache().stats();
        let report = session.finish();
        assert_eq!(report.batches.len(), 4);
        let shared = report.shared.as_ref().expect("shared cache was on");
        assert_eq!(
            (shared.hits, shared.misses),
            (report.stats.shared_hits, report.stats.shared_misses),
            "per-batch attributed counters sum to the session's own probes"
        );
        assert_eq!(
            (shared.hits, shared.misses),
            (global.hits, global.misses),
            "one session over a fresh engine accounts for every global probe"
        );
        assert!(
            report.stats.shared_hits > 0,
            "later batches reused pooled suggestions: {shared:?}"
        );
        // offsets tile the stream
        let offsets: Vec<usize> = report.batches_with_offsets().map(|(o, _)| o).collect();
        assert_eq!(offsets, vec![0, 100, 200, 300]);
        assert_eq!(report.tuples, 400);
        let outcomes = report.into_outcomes();
        assert_eq!(outcomes.len(), 400);
    }

    /// A borrowed session leaves its pooled suggestions in the engine.
    #[test]
    fn borrowed_session_persists_the_engine_pool() {
        let (hosp, ds) = hosp_stream(100, 120, 0.0);
        let dirty = dirty_of(&ds);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            true,
        ));
        let mut session = engine.session();
        session.drain(SliceSource::with_batch(&dirty, 60), |i| {
            SimulatedUser::new(ds.inputs[i].clean.clone())
        });
        let first = session.finish();
        assert_eq!(first.tuples, 120);
        assert!(
            !engine.shared_cache().is_empty(),
            "pool outlives the session"
        );

        // a later session over the same engine starts warm
        let mut warm = engine.session();
        warm.push_batch(&dirty[..60], |i| {
            SimulatedUser::new(ds.inputs[i].clean.clone())
        });
        let warm = warm.finish();
        assert!(warm.stats.shared_hits > 0, "warm pool served suggestions");
    }

    #[test]
    fn empty_sources_finish_empty() {
        let hosp = Hosp::generate(30);
        let mut session = plain_session(&hosp, 2);
        assert_eq!(
            session.drain(SliceSource::new(&[]), |_| SimulatedUser::new(
                hosp.master().tuple(0).clone()
            )),
            0
        );
        let (tx, source) = ChannelSource::bounded(1);
        drop(tx);
        assert_eq!(
            session.drain(source, |_| SimulatedUser::new(
                hosp.master().tuple(0).clone()
            )),
            0
        );
        let report = session.finish();
        assert!(report.batches.is_empty());
        assert_eq!(report.tuples, 0);
        assert_eq!(report.stats.tuples, 0);
        assert_eq!(report.throughput(), 0.0);
        assert!(report.shared.is_none());
    }

    #[test]
    fn channel_source_skips_empty_batches_and_tracks_its_hint() {
        let hosp = Hosp::generate(30);
        let t = hosp.master().tuple(0).clone();
        let (tx, mut source) = ChannelSource::bounded(4);
        let source_hint = {
            tx.send(Vec::new()).unwrap();
            tx.send(vec![t.clone(), t.clone()]).unwrap();
            tx.send(vec![t.clone()]).unwrap();
            drop(tx);
            source = source.with_size_hint(3, Some(3));
            assert_eq!(source.next_batch().map(|b| b.len()), Some(2));
            assert_eq!(source.size_hint(), (1, Some(1)));
            assert_eq!(source.next_batch().map(|b| b.len()), Some(1));
            assert!(source.next_batch().is_none());
            source.size_hint()
        };
        assert_eq!(source_hint, (0, Some(0)));
    }

    /// Producer-side disconnect mid-stream: a producer that dies (here:
    /// panics) with batches still buffered in the bounded channel must
    /// not lose them — the source drains every batch sent before the
    /// disconnect, in order, then reports end-of-stream, and a session
    /// drain over the truncated stream completes without panicking.
    #[test]
    fn channel_source_drains_buffered_batches_after_producer_disconnect() {
        let (hosp, ds) = hosp_stream(60, 24, 0.5);
        let dirty = dirty_of(&ds);

        // raw source level: 3 batches buffered, producer gone
        let (tx, mut source) = ChannelSource::bounded(4);
        let producer = {
            let chunks: Vec<Vec<Tuple>> = dirty.chunks(8).map(|c| c.to_vec()).collect();
            std::thread::spawn(move || {
                for c in chunks {
                    tx.send(c).unwrap();
                }
                panic!("producer dies mid-stream with its buffer full");
            })
        };
        assert!(producer.join().is_err(), "the producer did panic");
        let mut drained = Vec::new();
        while let Some(batch) = source.next_batch() {
            drained.extend(batch);
        }
        assert_eq!(drained, dirty, "every buffered batch survives, in order");
        assert!(source.next_batch().is_none(), "end-of-stream is sticky");

        // session level: the truncated stream repairs cleanly and the
        // report covers exactly the tuples that made it through
        let (tx, source) = ChannelSource::bounded(2);
        let mut session = plain_session(&hosp, 2);
        let drained = std::thread::scope(|s| {
            let producer_dirty = &dirty;
            s.spawn(move || {
                // send half the stream, then vanish without a goodbye
                for c in producer_dirty[..16].chunks(4) {
                    if tx.send(c.to_vec()).is_err() {
                        break;
                    }
                }
            });
            session.drain(source, |i| SimulatedUser::new(ds.inputs[i].clean.clone()))
        });
        assert_eq!(drained, 16);
        let report = session.finish();
        assert_eq!(report.tuples, 16);
        assert_eq!(report.stats.tuples, 16);
        // the truncated stream is bit-identical to intentionally
        // draining only those 16 tuples
        let mut solo = plain_session(&hosp, 1);
        solo.drain(SliceSource::with_batch(&dirty[..16], 4), |i| {
            SimulatedUser::new(ds.inputs[i].clean.clone())
        });
        let solo = solo.finish();
        for (i, (a, b)) in report.outcomes().zip(solo.outcomes()).enumerate() {
            assert_eq!(a, b, "tuple {i}");
        }
    }

    /// The D10 contract at the session level: a session whose master
    /// grows through `MasterDelta`s between batches is bit-identical —
    /// outcomes and logical plan probes — to fresh engines built from
    /// scratch over each corresponding master state, at 1, 2, and 4
    /// workers. Each batch repairs wholly against the generation
    /// current when it was pushed, the generations recorded on the
    /// batch reports strictly increase across the hand-offs, and the
    /// merged report counts the rebuilds.
    #[test]
    fn deltas_between_batches_match_rebuilt_masters_1_2_4() {
        let (hosp, ds) = hosp_stream(250, 1_200, 0.6);
        let dirty = dirty_of(&ds);
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());
        let full = hosp.master().clone();
        let n = full.len();
        // three master states: 40 rows short, 20 rows short, complete
        let state = |upto: usize| {
            Arc::new(
                Relation::new(full.schema().clone(), full.tuples()[..upto].to_vec())
                    .expect("prefix master"),
            )
        };
        let states = [state(n - 40), state(n - 20), full.clone()];
        let cuts = [0usize, 400, 800, 1_200];
        for workers in [1usize, 2, 4] {
            let mut session = RepairSessionBuilder::new(hosp.rules().clone(), states[0].clone())
                .threads(workers)
                .shared_cache(false)
                .build();
            for k in 0..3 {
                session.push_batch(&dirty[cuts[k]..cuts[k + 1]], oracle_for);
                if k < 2 {
                    let mut delta = MasterDelta::new();
                    for t in &full.tuples()[n - 40 + 20 * k..n - 20 + 20 * k] {
                        delta = delta.insert(t.clone());
                    }
                    let generation = session.apply_master_delta(&delta).expect("delta applies");
                    assert_eq!(generation, session.generation());
                }
            }
            let report = session.finish();
            assert_eq!(report.stats.plan_rebuilds, 2, "both hand-offs counted");
            assert!(report.batches[0].generation < report.batches[1].generation);
            assert!(report.batches[1].generation < report.batches[2].generation);
            for k in 0..3 {
                let fresh = BatchRepairEngine::new(RepairContext::new(
                    hosp.rules().clone(),
                    states[k].clone(),
                    false,
                ));
                let opts = RepairOptions {
                    threads: 1,
                    shared_cache: false,
                    ..RepairOptions::default()
                };
                let (lo, hi) = (cuts[k], cuts[k + 1]);
                let want = fresh.repair_opts(&dirty[lo..hi], &opts, |i| oracle_for(lo + i));
                let got = &report.batches[k];
                assert_eq!(got.outcomes.len(), want.outcomes.len());
                for (i, (a, b)) in got.outcomes.iter().zip(&want.outcomes).enumerate() {
                    assert_eq!(a.tuple, b.tuple, "batch {k} tuple {i} ({workers} workers)");
                    assert_eq!(a.certain, b.certain, "batch {k} tuple {i}");
                    assert_eq!(a.validated, b.validated, "batch {k} tuple {i}");
                }
                assert_eq!(
                    got.stats.plan_probes, want.stats.plan_probes,
                    "batch {k} probes ({workers} workers)"
                );
            }
        }
    }

    /// CFD repair folded into the session is tuple-for-tuple identical
    /// to the retired standalone IncRep loop (one `repair_tuple` call
    /// per row against the indexed master), across worker counts —
    /// the legacy entry point's output now flows through the unified
    /// session surface.
    #[test]
    fn cfd_session_matches_the_standalone_increp_loop() {
        let (hosp, ds) = hosp_stream(200, 500, 0.0);
        let dirty = dirty_of(&ds);
        let cfg = IncRepConfig::default();
        // the retired whole-relation increp() loop, inlined
        let (cfds, _skipped) = rules_to_cfds(hosp.rules());
        assert!(!cfds.is_empty(), "HOSP rules convert to CFDs");
        let reference = MasterIndex::new(hosp.master().clone());
        let legacy: Vec<_> = dirty
            .iter()
            .map(|t| repair_tuple(&cfds, t, &reference, &cfg))
            .collect();

        for workers in [1usize, 3] {
            let mut session =
                RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
                    .workload(Workload::Cfd(cfg.clone()))
                    .threads(workers)
                    .shared_cache(false)
                    .build();
            session.drain(SliceSource::with_batch(&dirty, 128), |i| {
                SimulatedUser::new(ds.inputs[i].clean.clone())
            });
            let report = session.finish();
            assert_eq!(report.tuples, 500);
            assert_eq!(report.stats.rounds, 0, "cost-based repair has no rounds");
            for (i, (out, want)) in report.outcomes().zip(&legacy).enumerate() {
                assert_eq!(out.tuple, want.tuple, "tuple {i} ({workers} workers)");
                assert_eq!(out.certain, want.unresolved == 0, "tuple {i}");
                assert!(out.rounds.is_empty(), "tuple {i}");
                let mut changed = AttrSet::EMPTY;
                for c in &want.changes {
                    changed.insert(c.attr);
                }
                assert_eq!(out.rule_fixed, changed, "tuple {i}");
            }
        }
    }
}
