//! The parallel batch-repair engine: work-stealing (or contiguous
//! shard) scheduling over a shared repair context with epoch-stamped
//! live master data.
//!
//! The paper's repair model is embarrassingly parallel across tuples:
//! [`CertainFix`] and [`transfix`](crate::transfix::transfix) read a
//! shared immutable `(Σ, Dm)` precomputation and mutate only the tuple
//! they are repairing. [`BatchRepairEngine`] exploits that: the batch
//! is cut into fixed-size *chunks* of consecutive tuples, the chunks
//! are dealt to per-worker queues, and scoped worker threads drain
//! them — their own queue first, then (under [`Schedule::Steal`])
//! anything left in other workers' queues. Claiming is lock-free: each
//! queue is a half-open chunk range with an atomic cursor, and both the
//! owner and thieves claim via `fetch_add`, so a chunk is handed out
//! exactly once and an uneven batch (one region full of hard
//! multi-round tuples) keeps every core busy instead of stalling the
//! worker that happened to be dealt the hard region.
//!
//! # Live master data: epochs and generations
//!
//! The `(Dm, plan, catalog)` precomputation is no longer a field of
//! the context but a [`MasterEpoch`] — one immutable snapshot of the
//! master at a given [`generation`](MasterEpoch::generation), bundling
//! the indexed master, the compiled [`RulePlan`], the region catalog,
//! and the initial suggestion, all built against the *same* master
//! rows. [`RepairContext::apply_master_delta`] builds the next epoch
//! from a [`MasterDelta`] (batch inserts / updates / deletes) and
//! swaps it in atomically:
//!
//! * in-flight work is never blocked — every batch *pins* its epoch
//!   (one `Arc` clone) at fan-out and finishes on it;
//! * new batches pick up the new epoch at their next fan-out, so a
//!   delta becomes visible at the next *epoch boundary*, not mid-batch;
//! * concurrent deltas serialize on an internal gate, so no delta is
//!   lost; the epoch write-lock is held only for the pointer swap.
//!
//! Each [`BatchReport`] records the [`generation`](BatchReport::generation)
//! it repaired against, making the hand-off observable all the way up
//! through sessions and the service stream.
//!
//! # Workloads
//!
//! The engine fans out two per-tuple [`Workload`]s behind one API:
//! the interactive editing-rule repair of the paper
//! ([`Workload::EditRules`], the default), and the `IncRep`-style
//! cost-based CFD repair ([`Workload::Cfd`]) it is benchmarked
//! against — each dirty tuple runs
//! [`certainfix_cfd::repair_tuple`] against the pinned epoch's master.
//! CFD repair is oracle-free and single-round; its outcomes flow
//! through the same [`FixOutcome`] / [`BatchReport`] plumbing.
//!
//! Each worker owns its own [`SuggestionBdd`] cache and
//! [`MonitorStats`] accumulator; behind the per-worker caches an
//! optional [`SharedSuggestionCache`] pools computed suggestions
//! across workers (and across batches repaired by the same engine).
//!
//! Multi-batch (and streaming) ingest lives one layer up, in
//! [`session`](crate::session): a
//! [`RepairSession`](crate::session::RepairSession) drains any
//! [`TupleSource`](crate::session::TupleSource) through this engine
//! batch by batch. One layer above *that*, the
//! [`service`](crate::service) multiplexer schedules N independent
//! sessions fairly over a single engine — the engine itself is
//! session-count-agnostic: nothing here assumes the batches it fans
//! out belong to one stream.
//!
//! # Determinism
//!
//! Every tuple's repair depends only on the tuple itself, its oracle,
//! and the pinned epoch — never on other tuples in the batch or on
//! which worker claims it. Repairs always probe through the epoch's
//! compiled [`RulePlan`]; the plain probe functions survive only as
//! the test-suite's parity oracle. Outcomes are stitched back in input
//! order, and the merged statistics are integer sums, so for plain
//! `CertainFix` (`use_bdd = false`, shared cache off) the repaired
//! tuples, the merged count fields of [`MonitorStats`], and
//! any [`RoundMetrics`](crate::RoundMetrics) evaluated per worker and
//! [`merged`](crate::metrics::merge_round_series) are **bit-identical
//! to a sequential run regardless of schedule, worker count, or
//! interleaving**. A delta-maintained epoch is bit-identical to an
//! engine rebuilt from scratch over the same master rows (D10 in
//! DETERMINISM.md). With the BDD cache and/or the shared cache
//! enabled, served suggestions are *checked* rather than recomputed,
//! which can yield a different (but equally valid) suggestion order;
//! final repaired tuples still agree, but round traces may not. The
//! wall-clock observables ([`MonitorStats::elapsed`], the interner
//! watermark, and the shared-cache hit/miss counters) are exempt from
//! the guarantee by nature.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use certainfix_cfd::{repair_tuple, rules_to_cfds, Cfd, IncRepConfig};
use certainfix_reasoning::{suggest_with, RegionCatalog};
use certainfix_relation::{
    AttrId, AttrSet, Interner, MasterDelta, MasterIndex, Relation, RelationError, Tuple,
};
use certainfix_rules::{DependencyGraph, ProbeScratch, RulePlan, RuleSet};
use std::sync::{Arc, Mutex, RwLock};

use crate::bdd::{BddStats, Cursor, SuggestionBdd};
use crate::certainfix::{CertainFix, CertainFixConfig, FixOutcome};
use crate::monitor::{InitialRegion, MonitorStats};
use crate::oracle::UserOracle;
use crate::sharedcache::{SharedCacheStats, SharedSuggestionCache};

/// One immutable snapshot of the master data and everything compiled
/// from it: the indexed master rows, the compiled [`RulePlan`], the
/// ranked certain-region catalog, and the initial suggestion — all
/// built against the same [`generation`](Self::generation). Workers
/// pin an epoch (one `Arc` clone) for the duration of a batch; a
/// [`MasterDelta`] produces the *next* epoch without touching this
/// one, so in-flight repairs are never invalidated mid-batch.
pub struct MasterEpoch {
    master: MasterIndex,
    plan: RulePlan,
    catalog: RegionCatalog,
    initial: Vec<AttrId>,
}

impl MasterEpoch {
    /// Compile an epoch over an already-indexed master.
    fn build(rules: &RuleSet, master: MasterIndex, initial_region: InitialRegion) -> MasterEpoch {
        let plan = RulePlan::compile(rules, &master);
        let catalog = RegionCatalog::build(rules, &master);
        let region = match initial_region {
            InitialRegion::Best => catalog.best(),
            InitialRegion::Median => catalog.median(),
        };
        let initial = region
            .map(|r| r.z().to_vec())
            .unwrap_or_else(|| rules.r_schema().attr_ids().collect());
        debug_assert_eq!(plan.generation(), master.generation());
        MasterEpoch {
            master,
            plan,
            catalog,
            initial,
        }
    }

    /// The indexed master data of this epoch.
    pub fn master(&self) -> &MasterIndex {
        &self.master
    }

    /// The compiled rule plan (always probed by repairs; compiled
    /// against this epoch's master generation).
    pub fn plan(&self) -> &RulePlan {
        &self.plan
    }

    /// The region catalog.
    pub fn catalog(&self) -> &RegionCatalog {
        &self.catalog
    }

    /// The initial suggestion (the seeded region's `Z`).
    pub fn initial_suggestion(&self) -> &[AttrId] {
        &self.initial
    }

    /// The master generation this epoch was compiled against.
    pub fn generation(&self) -> u64 {
        self.master.generation()
    }
}

/// What the engine runs per tuple.
#[derive(Clone, Debug, Default)]
pub enum Workload {
    /// The paper's interactive editing-rule repair (`CertainFix` /
    /// `CertainFix+`): suggestion rounds against a user oracle,
    /// certain fixes through `TransFix`.
    #[default]
    EditRules,
    /// `IncRep`-style cost-based CFD repair (Cong et al., VLDB 2007):
    /// each tuple is repaired by the cheapest attribute modifications
    /// that resolve its CFD violations against the epoch's master.
    /// Oracle-free; the oracle passed to the engine is ignored.
    Cfd(IncRepConfig),
}

/// Everything repair workers share by reference: the rule set, the
/// dependency graph (Fig. 4), the configuration — plus the *current*
/// [`MasterEpoch`] behind an `RwLock`ed `Arc`, which
/// [`apply_master_delta`](Self::apply_master_delta) swaps. Pinning an
/// epoch is one read-lock + `Arc` clone; everything inside an epoch is
/// immutable after construction (the [`MasterIndex`] cache and the
/// plan's sub-index slots grow internally behind their own
/// synchronization), hence `Sync`.
pub struct RepairContext {
    rules: Arc<RuleSet>,
    graph: DependencyGraph,
    config: CertainFixConfig,
    use_bdd: bool,
    initial_region: InitialRegion,
    workload: Workload,
    /// CFDs derived from the rule set; empty under
    /// [`Workload::EditRules`].
    cfds: Vec<Cfd>,
    epoch: RwLock<Arc<MasterEpoch>>,
    /// Serializes concurrent deltas so none is lost; the epoch write
    /// lock above is held only for the pointer swap.
    delta_gate: Mutex<()>,
    rebuilds: AtomicU64,
}

impl RepairContext {
    /// Build a context over `(Σ, Dm)`. `use_bdd` selects `CertainFix+`
    /// (per-worker BDD suggestion caches) over plain `CertainFix`.
    pub fn new(rules: RuleSet, master: Arc<Relation>, use_bdd: bool) -> RepairContext {
        Self::with_config(
            rules,
            master,
            use_bdd,
            InitialRegion::Best,
            CertainFixConfig::default(),
        )
    }

    /// Full-control constructor for the editing-rule workload; repairs
    /// run through the epoch's compiled rule plan.
    pub fn with_config(
        rules: RuleSet,
        master: Arc<Relation>,
        use_bdd: bool,
        initial_region: InitialRegion,
        config: CertainFixConfig,
    ) -> RepairContext {
        Self::with_workload(
            rules,
            master,
            use_bdd,
            initial_region,
            config,
            Workload::default(),
        )
    }

    /// [`with_config`](Self::with_config) plus the per-tuple
    /// [`Workload`]. Under [`Workload::Cfd`] the rule set is converted
    /// to CFDs ([`certainfix_cfd::rules_to_cfds`]; inexpressible rules
    /// are skipped) and repairs run the cost-based baseline instead of
    /// the interaction loop.
    pub fn with_workload(
        rules: RuleSet,
        master: Arc<Relation>,
        use_bdd: bool,
        initial_region: InitialRegion,
        config: CertainFixConfig,
        workload: Workload,
    ) -> RepairContext {
        let cfds = match &workload {
            Workload::EditRules => Vec::new(),
            Workload::Cfd(_) => rules_to_cfds(&rules).0,
        };
        let master = MasterIndex::new(master);
        let graph = DependencyGraph::new(&rules);
        let epoch = Arc::new(MasterEpoch::build(&rules, master, initial_region));
        RepairContext {
            rules: Arc::new(rules),
            graph,
            config,
            use_bdd,
            initial_region,
            workload,
            cfds,
            epoch: RwLock::new(epoch),
            delta_gate: Mutex::new(()),
            rebuilds: AtomicU64::new(0),
        }
    }

    /// The rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Pin the current epoch: one read-lock + `Arc` clone. The pinned
    /// snapshot stays valid (and immutable) across any number of
    /// subsequent [`apply_master_delta`](Self::apply_master_delta)
    /// calls.
    pub fn epoch(&self) -> Arc<MasterEpoch> {
        self.epoch.read().expect("epoch lock poisoned").clone()
    }

    /// The current master generation (the one the *next* fan-out will
    /// pin).
    pub fn generation(&self) -> u64 {
        self.epoch().generation()
    }

    /// How many epochs were rebuilt by deltas since construction.
    pub fn plan_rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// The per-tuple workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// `true` iff suggestions are served from a BDD cache.
    pub fn uses_bdd(&self) -> bool {
        self.use_bdd
    }

    /// Apply a batch of master mutations: build the next
    /// [`MasterEpoch`] (delta-maintained index, recompiled plan,
    /// re-ranked catalog) and swap it in atomically. Returns the new
    /// generation.
    ///
    /// In-flight batches keep their pinned epoch and finish undisturbed;
    /// batches fanned out after this call repair against the new
    /// generation. Concurrent deltas serialize (none is lost); the
    /// epoch write lock is held only for the pointer swap, so pinning
    /// stalls at most microseconds.
    pub fn apply_master_delta(&self, delta: &MasterDelta) -> Result<u64, RelationError> {
        self.apply_master_delta_maintaining(delta, |_, _| ())
    }

    /// [`apply_master_delta`](Self::apply_master_delta) that
    /// additionally runs `maintain(old_master, new_generation)` —
    /// `old_master` being the index the delta was applied *to* —
    /// before the delta gate is released. The shared cache's targeted
    /// invalidation diffs the delta's named rows against exactly those
    /// pre-delta master values, and running it under the gate keeps
    /// concurrent deltas (the net server applies them from multiple
    /// connection handlers) from interleaving cache maintenance out of
    /// epoch order: a later preserving delta's restamp must never run
    /// before an earlier non-preserving delta's taint eviction, or the
    /// window would briefly make tainted entries servable.
    pub(crate) fn apply_master_delta_maintaining(
        &self,
        delta: &MasterDelta,
        maintain: impl FnOnce(&MasterIndex, u64),
    ) -> Result<u64, RelationError> {
        let _gate = self.delta_gate.lock().expect("delta gate poisoned");
        let current = self.epoch();
        let next_master = current.master().apply_delta(delta)?;
        let next = Arc::new(MasterEpoch::build(
            &self.rules,
            next_master,
            self.initial_region,
        ));
        let generation = next.generation();
        *self.epoch.write().expect("epoch lock poisoned") = next;
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        maintain(current.master(), generation);
        Ok(generation)
    }

    /// Run the per-tuple pipeline for one tuple against the *current*
    /// epoch, charging the given per-worker cache and statistics
    /// accumulator. This is the single per-tuple pipeline shared by
    /// the sequential [`DataMonitor`](crate::DataMonitor) and the
    /// parallel engine's workers — both produce outcomes through this
    /// exact code path, which is what makes the determinism guarantee
    /// hold by construction rather than by parallel maintenance of two
    /// loops.
    pub fn process_with<O: UserOracle + ?Sized>(
        &self,
        bdd: &mut SuggestionBdd,
        stats: &mut MonitorStats,
        dirty: &Tuple,
        oracle: &mut O,
    ) -> FixOutcome {
        self.process_with_shared(bdd, stats, None, dirty, oracle)
    }

    /// [`process_with`](Self::process_with) with an optional
    /// [`SharedSuggestionCache`] behind the per-worker cache. Probes of
    /// the shared cache are charged to `stats` (`shared_hits` /
    /// `shared_misses`) whichever suggestion path — BDD or plain — is
    /// in effect.
    pub fn process_with_shared<O: UserOracle + ?Sized>(
        &self,
        bdd: &mut SuggestionBdd,
        stats: &mut MonitorStats,
        shared: Option<&SharedSuggestionCache>,
        dirty: &Tuple,
        oracle: &mut O,
    ) -> FixOutcome {
        let epoch = self.epoch();
        self.process_with_full(
            &epoch,
            bdd,
            stats,
            shared,
            &mut ProbeScratch::new(),
            dirty,
            oracle,
        )
    }

    /// The full per-tuple pipeline against a caller-pinned epoch:
    /// [`process_with_shared`](Self::process_with_shared) plus a
    /// caller-owned [`ProbeScratch`]. Workers (and the sequential
    /// [`DataMonitor`](crate::DataMonitor)) pin one epoch per batch and
    /// hold one scratch per thread, so the compiled plan's probe layer
    /// reuses one warm buffer across every tuple the thread repairs;
    /// the scratch's probe/allocation counters are drained into
    /// `stats` after each tuple.
    #[allow(clippy::too_many_arguments)]
    pub fn process_with_full<O: UserOracle + ?Sized>(
        &self,
        epoch: &MasterEpoch,
        bdd: &mut SuggestionBdd,
        stats: &mut MonitorStats,
        shared: Option<&SharedSuggestionCache>,
        scratch: &mut ProbeScratch,
        dirty: &Tuple,
        oracle: &mut O,
    ) -> FixOutcome {
        if let Workload::Cfd(cfg) = &self.workload {
            return self.process_cfd(epoch, cfg, stats, dirty);
        }
        let started = Instant::now();
        let master = epoch.master();
        let plan = epoch.plan();
        let engine = CertainFix::new(&self.rules, master, &self.graph, plan, self.config.clone());
        let outcome = if self.use_bdd {
            let before = bdd.stats();
            let mut cursor = Cursor::start();
            let outcome = engine.run_scratch(
                dirty,
                epoch.initial_suggestion(),
                oracle,
                |t, validated, sc| {
                    bdd.suggest_plus_with(
                        &self.rules,
                        master,
                        t,
                        validated,
                        &mut cursor,
                        shared,
                        Some(plan),
                        sc,
                    )
                },
                scratch,
            );
            let after = bdd.stats();
            stats.shared_hits += after.shared_hits - before.shared_hits;
            stats.shared_misses += after.shared_misses - before.shared_misses;
            outcome
        } else if let Some(cache) = shared {
            let (mut hits, mut misses) = (0u64, 0u64);
            let outcome = engine.run_scratch(
                dirty,
                epoch.initial_suggestion(),
                oracle,
                |t, validated, sc| {
                    let mut hit = false;
                    let s = cache.suggest_through_with(
                        &self.rules,
                        master,
                        t,
                        validated,
                        &mut hit,
                        Some(plan),
                        sc,
                    );
                    if hit {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                    s
                },
                scratch,
            );
            stats.shared_hits += hits;
            stats.shared_misses += misses;
            outcome
        } else {
            engine.run_scratch(
                dirty,
                epoch.initial_suggestion(),
                oracle,
                |t, validated, sc| {
                    suggest_with(&self.rules, master, t, validated, plan, sc).map(|s| s.attrs)
                },
                scratch,
            )
        };
        stats.tuples += 1;
        stats.rounds += outcome.rounds.len() as u64;
        if outcome.certain {
            stats.certain += 1;
        }
        let (probes, allocs, fallbacks) = scratch.take_counters();
        stats.plan_probes += probes;
        stats.probe_allocs += allocs;
        stats.plan_fallbacks += fallbacks;
        stats.elapsed += started.elapsed();
        stats.interner_syms = stats.interner_syms.max(Interner::global().len() as u64);
        outcome
    }

    /// The CFD workload's per-tuple pipeline: one oracle-free
    /// [`certainfix_cfd::repair_tuple`] run against the pinned epoch's
    /// master, shaped into the engine's common [`FixOutcome`]. The
    /// changed attributes land in `rule_fixed`; `certain` means every
    /// CFD violation was resolved within the pass budget (`validated`
    /// is then the full schema, else the changed set); `rounds` stays
    /// empty — cost-based repair has no interaction rounds.
    fn process_cfd(
        &self,
        epoch: &MasterEpoch,
        cfg: &IncRepConfig,
        stats: &mut MonitorStats,
        dirty: &Tuple,
    ) -> FixOutcome {
        let started = Instant::now();
        let repair = repair_tuple(&self.cfds, dirty, epoch.master(), cfg);
        let mut changed = AttrSet::EMPTY;
        for change in &repair.changes {
            changed.insert(change.attr);
        }
        let certain = repair.unresolved == 0;
        let full = AttrSet::full(self.rules.r_schema().len());
        let outcome = FixOutcome {
            tuple: repair.tuple,
            validated: if certain { full } else { changed },
            rule_fixed: changed,
            user_changed: AttrSet::EMPTY,
            certain,
            certain_at_round: certain.then_some(0),
            rule_backed: certain,
            gave_up: !certain,
            rounds: Vec::new(),
        };
        stats.tuples += 1;
        if certain {
            stats.certain += 1;
        }
        stats.elapsed += started.elapsed();
        stats.interner_syms = stats.interner_syms.max(Interner::global().len() as u64);
        outcome
    }

    /// The block pipeline: repair a contiguous run of `dirty` tuples
    /// against a caller-pinned epoch as one probe block through
    /// [`CertainFix::run_block_scratch`] — each round's `TransFix`
    /// probes are vectorized across the block (grouped by shared probe
    /// key, sort-grouped by key value, pattern checks hoisted to a
    /// bitmask). `oracle_for(base + k)` supplies the user for
    /// `dirty[k]`.
    ///
    /// Editing-rule plain mode only (no CFD workload, no BDD
    /// suggestion cache, no shared cache — those paths thread
    /// per-worker caches whose canonical query order is part of their
    /// own determinism story). Outcomes are bit-identical to calling
    /// [`process_with_full`](Self::process_with_full) per tuple, at
    /// every block size.
    pub fn process_block_full<O, F>(
        &self,
        epoch: &MasterEpoch,
        stats: &mut MonitorStats,
        scratch: &mut ProbeScratch,
        dirty: &[Tuple],
        base: usize,
        oracle_for: &F,
    ) -> Vec<FixOutcome>
    where
        O: UserOracle,
        F: Fn(usize) -> O + ?Sized,
    {
        debug_assert!(!self.use_bdd, "block repairs are plain-mode only");
        debug_assert!(
            matches!(self.workload, Workload::EditRules),
            "block repairs are editing-rule only"
        );
        let started = Instant::now();
        let master = epoch.master();
        let plan = epoch.plan();
        let engine = CertainFix::new(&self.rules, master, &self.graph, plan, self.config.clone());
        let mut oracles: Vec<O> = (0..dirty.len()).map(|k| oracle_for(base + k)).collect();
        let outcomes = engine.run_block_scratch(
            dirty,
            epoch.initial_suggestion(),
            &mut oracles,
            |t, validated, sc| {
                suggest_with(&self.rules, master, t, validated, plan, sc).map(|s| s.attrs)
            },
            scratch,
        );
        for outcome in &outcomes {
            stats.tuples += 1;
            stats.rounds += outcome.rounds.len() as u64;
            if outcome.certain {
                stats.certain += 1;
            }
        }
        let (probes, allocs, fallbacks) = scratch.take_counters();
        stats.plan_probes += probes;
        stats.probe_allocs += allocs;
        stats.plan_fallbacks += fallbacks;
        stats.elapsed += started.elapsed();
        stats.interner_syms = stats.interner_syms.max(Interner::global().len() as u64);
        outcomes
    }
}

/// How a batch is dealt to (and kept on) the workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Schedule {
    /// One contiguous shard per worker, no rebalancing — the PR 2
    /// partitioner. Minimal coordination, but a skewed batch stalls on
    /// the worker dealt the hard region.
    Shard,
    /// Chunked per-worker queues with lock-free stealing: a worker
    /// that drains its own queue claims chunks from the others', so
    /// skew costs at most one trailing chunk of imbalance.
    #[default]
    Steal,
}

impl Schedule {
    /// Parse a CLI-style mode name (`"shard"` / `"steal"`).
    pub fn parse(s: &str) -> Option<Schedule> {
        match s {
            "shard" => Some(Schedule::Shard),
            "steal" => Some(Schedule::Steal),
            _ => None,
        }
    }

    /// The CLI-style mode name.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Shard => "shard",
            Schedule::Steal => "steal",
        }
    }
}

/// Knobs of one [`BatchRepairEngine::repair_opts`] call.
#[derive(Clone, Copy, Debug)]
pub struct RepairOptions {
    /// Worker threads (`0` = one per available core, clamped to the
    /// batch size).
    pub threads: usize,
    /// The scheduling policy.
    pub schedule: Schedule,
    /// Pool computed suggestions in the engine's
    /// [`SharedSuggestionCache`] so a suggestion computed once is
    /// visible to every worker (and to later batches).
    pub shared_cache: bool,
    /// Chunk granularity for [`Schedule::Steal`] (`0` = auto: about 8
    /// chunks per worker, capped at 512 tuples). Ignored by
    /// [`Schedule::Shard`], which always deals one chunk per worker.
    pub chunk: usize,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            threads: 1,
            schedule: Schedule::default(),
            shared_cache: true,
            chunk: 0,
        }
    }
}

/// Per-worker accounting of one [`BatchRepairEngine::repair_opts`]
/// call.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Worker index (0-based).
    pub worker: usize,
    /// The input ranges this worker repaired: ascending, disjoint,
    /// adjacent chunks coalesced. Exactly one element under
    /// [`Schedule::Shard`]; possibly several (or none, if every chunk
    /// was stolen first) under [`Schedule::Steal`].
    pub ranges: Vec<Range<usize>>,
    /// The worker's statistics.
    pub stats: MonitorStats,
    /// The worker's local BDD cache statistics.
    pub bdd: BddStats,
}

impl WorkerReport {
    /// Number of tuples this worker repaired.
    pub fn tuples(&self) -> usize {
        self.ranges.iter().map(ExactSizeIterator::len).sum()
    }

    /// The input indexes this worker repaired, ascending.
    pub fn indexes(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranges.iter().flat_map(Clone::clone)
    }
}

/// The merged result of one batch repair.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-tuple outcomes, in input order.
    pub outcomes: Vec<FixOutcome>,
    /// Merged statistics ([`MonitorStats::merge`] over all workers;
    /// `elapsed` is summed worker time, not wall clock).
    pub stats: MonitorStats,
    /// Merged local BDD cache statistics.
    pub bdd: BddStats,
    /// The engine's [`SharedSuggestionCache`] statistics *attributed to
    /// this batch* (present iff the shared cache was enabled for this
    /// repair): `hits` / `misses` are this batch's own worker-side
    /// probe counts (so summing them over every batch any session ran
    /// reproduces the engine-global counters exactly — worker counters
    /// tick 1:1 with the cache-side atomics), while `entries` and
    /// `per_shard` snapshot the engine-lifetime pool after the batch.
    pub shared: Option<SharedCacheStats>,
    /// Wall-clock time of the whole batch (what throughput divides by).
    pub wall: Duration,
    /// The master generation this batch was repaired against — the
    /// epoch pinned at fan-out. Makes delta hand-off observable: a
    /// batch fanned out before [`RepairContext::apply_master_delta`]
    /// carries the old generation, the next one the new.
    pub generation: u64,
    /// Per-worker breakdown, in worker order.
    pub workers: Vec<WorkerReport>,
}

impl BatchReport {
    /// Batch throughput in tuples per second (wall clock).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.outcomes.len() as f64 / secs
        }
    }
}

/// One worker's chunk queue: a half-open range of chunk indexes with
/// an atomic claim cursor. The owner and thieves both claim through
/// [`ChunkQueue::claim`]; `fetch_add` hands each chunk out exactly
/// once, and an overshot cursor simply means the queue is empty.
pub(crate) struct ChunkQueue {
    next: AtomicUsize,
    end: usize,
}

impl ChunkQueue {
    pub(crate) fn new(range: Range<usize>) -> ChunkQueue {
        ChunkQueue {
            next: AtomicUsize::new(range.start),
            end: range.end,
        }
    }

    /// Claim the next chunk, if any. `Relaxed` suffices: claim
    /// uniqueness comes from the atomicity of the read-modify-write,
    /// and the claimed data (the input slice) is immutable, so no
    /// cross-thread ordering is needed.
    pub(crate) fn claim(&self) -> Option<usize> {
        let c = self.next.fetch_add(1, Ordering::Relaxed);
        (c < self.end).then_some(c)
    }
}

/// What one worker hands back to the stitcher.
struct WorkerOut {
    /// `(chunk index, outcomes)` in claim order.
    chunks: Vec<(usize, Vec<FixOutcome>)>,
    stats: MonitorStats,
    bdd: BddStats,
}

/// The parallel batch-repair engine: a [`RepairContext`], the
/// engine-lifetime [`SharedSuggestionCache`], and the scheduling /
/// fan-out / merge machinery.
pub struct BatchRepairEngine {
    ctx: RepairContext,
    shared: SharedSuggestionCache,
}

impl BatchRepairEngine {
    /// Wrap a prepared context (shared-cache hygiene on).
    pub fn new(ctx: RepairContext) -> BatchRepairEngine {
        BatchRepairEngine::with_cache_hygiene(ctx, true)
    }

    /// Wrap a prepared context, choosing the shared cache's lifecycle
    /// mode: `hygiene = false` keeps the historical insert-only pool
    /// (see the [`sharedcache`](crate::sharedcache) module docs).
    pub fn with_cache_hygiene(ctx: RepairContext, hygiene: bool) -> BatchRepairEngine {
        BatchRepairEngine::with_shared_cache(ctx, SharedSuggestionCache::with_hygiene(hygiene))
    }

    /// Wrap a prepared context around a caller-built cache (custom
    /// caps; the bench harness tightens them to measure pressure).
    pub fn with_shared_cache(
        ctx: RepairContext,
        shared: SharedSuggestionCache,
    ) -> BatchRepairEngine {
        BatchRepairEngine { ctx, shared }
    }

    /// Shorthand: build the context and the engine in one step.
    pub fn with_config(
        rules: RuleSet,
        master: Arc<Relation>,
        use_bdd: bool,
        initial_region: InitialRegion,
        config: CertainFixConfig,
    ) -> BatchRepairEngine {
        BatchRepairEngine::new(RepairContext::with_config(
            rules,
            master,
            use_bdd,
            initial_region,
            config,
        ))
    }

    /// The shared context.
    pub fn context(&self) -> &RepairContext {
        &self.ctx
    }

    /// The engine-lifetime shared suggestion cache (consulted by
    /// workers when [`RepairOptions::shared_cache`] is on; it persists
    /// across [`repair_opts`](Self::repair_opts) calls, so later
    /// batches start warm).
    pub fn shared_cache(&self) -> &SharedSuggestionCache {
        &self.shared
    }

    /// Apply a batch of master mutations through the context (see
    /// [`RepairContext::apply_master_delta`]) **and** run the shared
    /// cache's targeted invalidation for the delta's named rows — the
    /// engine-level surface every delta path (monitor, session,
    /// service, network) routes through, so pooled suggestions never
    /// outlive the master values they were derived from unobserved.
    /// Returns the new generation.
    ///
    /// The cache's generation-gated serve path makes the eviction a
    /// pure hygiene matter: entries from retired generations are never
    /// served, so evicting (or keeping) them can cost a recomputation,
    /// never a different repair (invariant D12, DETERMINISM.md). For
    /// suggestion-preserving deltas (pure fix-column updates) the
    /// cache instead restamps the pre-delta generation's entries,
    /// carrying the pool's heat across the generation bump. The cache
    /// maintenance runs inside the context's delta gate, so concurrent
    /// deltas see their epoch swap *and* cache walk as one atomic
    /// step, in generation order.
    pub fn apply_master_delta(&self, delta: &MasterDelta) -> Result<u64, RelationError> {
        self.ctx
            .apply_master_delta_maintaining(delta, |old_master, generation| {
                self.shared
                    .apply_master_delta(self.ctx.rules(), old_master, delta, generation);
            })
    }

    /// This machine's available parallelism (the `--threads 0` / "auto"
    /// resolution used by the bench layer).
    pub fn auto_threads() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// A borrowed [`RepairSession`](crate::session::RepairSession)
    /// over this engine under the default options; pooled suggestions
    /// persist in the engine after the session ends.
    pub fn session(&self) -> crate::session::RepairSession<'_> {
        self.session_opts(RepairOptions::default())
    }

    /// A borrowed session over this engine under `opts` — the primary
    /// entry point for repairing several batches (or draining a
    /// [`TupleSource`](crate::session::TupleSource)) against one warm
    /// engine.
    pub fn session_opts(&self, opts: RepairOptions) -> crate::session::RepairSession<'_> {
        crate::session::RepairSession::borrowed(self, opts)
    }

    /// Repair `dirty` under `opts` — a thin shim over a one-batch
    /// [`RepairSession`](crate::session::RepairSession).
    ///
    /// `oracle_for(i)` supplies the (simulated or real) user for input
    /// index `i`; it is called from worker threads, so it must be
    /// `Sync` — and for the determinism guarantee it must depend only
    /// on `i`, not on call order.
    pub fn repair_opts<F, O>(
        &self,
        dirty: &[Tuple],
        opts: &RepairOptions,
        oracle_for: F,
    ) -> BatchReport
    where
        F: Fn(usize) -> O + Sync,
        O: UserOracle,
    {
        let mut session = self.session_opts(*opts);
        session.push_batch(dirty, oracle_for);
        session
            .finish()
            .batches
            .pop()
            .expect("exactly one batch was pushed")
    }

    /// The scheduling / fan-out / merge primitive every session batch
    /// runs through: pin the current epoch, deal `dirty` to the
    /// workers under `opts`, repair, stitch outcomes back in input
    /// order, merge statistics. The pinned epoch is the batch's world:
    /// a concurrent [`RepairContext::apply_master_delta`] never
    /// perturbs work already fanned out.
    pub(crate) fn fan_out<F, O>(
        &self,
        dirty: &[Tuple],
        opts: &RepairOptions,
        oracle_for: F,
    ) -> BatchReport
    where
        F: Fn(usize) -> O + Sync,
        O: UserOracle,
    {
        let started = Instant::now();
        let epoch = self.ctx.epoch();
        let n = dirty.len();
        if n == 0 {
            return BatchReport {
                outcomes: Vec::new(),
                stats: MonitorStats::default(),
                bdd: BddStats::default(),
                shared: opts.shared_cache.then(|| self.shared.attributed(0, 0)),
                wall: started.elapsed(),
                generation: epoch.generation(),
                workers: Vec::new(),
            };
        }
        let threads = match opts.threads {
            0 => Self::auto_threads(),
            t => t,
        }
        .clamp(1, n);
        let steal = opts.schedule == Schedule::Steal;
        let chunk_size = match opts.schedule {
            Schedule::Shard => n.div_ceil(threads),
            Schedule::Steal if opts.chunk > 0 => opts.chunk.min(n),
            Schedule::Steal => (n / (threads * 8)).clamp(1, 512),
        };
        let n_chunks = n.div_ceil(chunk_size);
        let workers = threads.min(n_chunks);
        // deal contiguous runs of chunks to the worker queues, so the
        // initial assignment matches Shard and stealing only kicks in
        // when the dealt load turns out to be uneven
        let per_worker = n_chunks.div_ceil(workers);
        let queues: Vec<ChunkQueue> = (0..workers)
            .map(|w| {
                ChunkQueue::new(
                    (w * per_worker).min(n_chunks)..((w + 1) * per_worker).min(n_chunks),
                )
            })
            .collect();

        let mut slots: Vec<Option<WorkerOut>> = Vec::new();
        slots.resize_with(workers, || None);

        let ctx = &self.ctx;
        let epoch = &*epoch;
        let shared = opts.shared_cache.then_some(&self.shared);
        // plain-mode editing-rule repairs batch each claimed chunk
        // through the vectorized block pipeline; BDD / shared-cache
        // repairs keep the per-tuple path (their caches' canonical
        // query order is part of their own determinism story), and the
        // CFD workload is per-tuple by nature. Outcomes are identical
        // either way — the block layer is bit-identical by construction.
        let block_mode =
            matches!(ctx.workload(), Workload::EditRules) && !ctx.uses_bdd() && shared.is_none();
        let oracle_for = &oracle_for;
        let queues = &queues;
        std::thread::scope(|s| {
            for (w, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || {
                    let mut bdd = SuggestionBdd::new();
                    let mut stats = MonitorStats::default();
                    // one probe scratch per worker: every tuple this
                    // thread repairs reuses the same warm buffer
                    let mut scratch = ProbeScratch::new();
                    let mut chunks: Vec<(usize, Vec<FixOutcome>)> = Vec::new();
                    let run_chunk =
                        |c: usize,
                         bdd: &mut SuggestionBdd,
                         stats: &mut MonitorStats,
                         scratch: &mut ProbeScratch| {
                            let lo = c * chunk_size;
                            let hi = ((c + 1) * chunk_size).min(n);
                            let outs: Vec<FixOutcome> = if block_mode && hi - lo >= 2 {
                                // a claimed chunk becomes one probe block
                                ctx.process_block_full(
                                    epoch,
                                    stats,
                                    scratch,
                                    &dirty[lo..hi],
                                    lo,
                                    oracle_for,
                                )
                            } else {
                                (lo..hi)
                                    .map(|i| {
                                        let mut oracle = oracle_for(i);
                                        ctx.process_with_full(
                                            epoch,
                                            bdd,
                                            stats,
                                            shared,
                                            scratch,
                                            &dirty[i],
                                            &mut oracle,
                                        )
                                    })
                                    .collect()
                            };
                            (c, outs)
                        };
                    while let Some(c) = queues[w].claim() {
                        chunks.push(run_chunk(c, &mut bdd, &mut stats, &mut scratch));
                    }
                    if steal {
                        // one pass over the victims suffices: queues
                        // only ever shrink, so a queue drained inside
                        // the inner loop stays drained
                        for v in (w + 1..workers).chain(0..w) {
                            while let Some(c) = queues[v].claim() {
                                chunks.push(run_chunk(c, &mut bdd, &mut stats, &mut scratch));
                            }
                        }
                    }
                    *slot = Some(WorkerOut {
                        chunks,
                        stats,
                        bdd: bdd.stats(),
                    });
                });
            }
        });

        // stitch outcomes back into input order and merge statistics
        let mut by_chunk: Vec<Option<Vec<FixOutcome>>> = Vec::new();
        by_chunk.resize_with(n_chunks, || None);
        let mut stats = MonitorStats::default();
        let mut bdd = BddStats::default();
        let mut reports = Vec::with_capacity(workers);
        for (w, slot) in slots.into_iter().enumerate() {
            let out = slot.expect("every spawned worker publishes its slot");
            let mut claimed: Vec<usize> = out.chunks.iter().map(|&(c, _)| c).collect();
            claimed.sort_unstable();
            stats.merge(&out.stats);
            bdd.merge(&out.bdd);
            reports.push(WorkerReport {
                worker: w,
                ranges: coalesce_ranges(&claimed, chunk_size, n),
                stats: out.stats,
                bdd: out.bdd,
            });
            for (c, outs) in out.chunks {
                debug_assert!(by_chunk[c].is_none(), "chunk {c} claimed twice");
                by_chunk[c] = Some(outs);
            }
        }
        let mut outcomes = Vec::with_capacity(n);
        for outs in by_chunk {
            outcomes.extend(outs.expect("every chunk claimed exactly once"));
        }
        debug_assert_eq!(outcomes.len(), n);
        // attribute the shared counters to this batch: the workers'
        // own probe counts, not the engine-global cumulative ones
        let shared = opts.shared_cache.then(|| {
            self.shared
                .attributed(stats.shared_hits, stats.shared_misses)
        });
        if let Some(s) = &shared {
            // lifecycle counters are engine-global monotone snapshots,
            // so the batch stats carry the sample and merges take the
            // max (see `MonitorStats::merge`)
            stats.shared_evicted_delta = s.evicted_delta;
            stats.shared_evicted_lru = s.evicted_lru;
            stats.shared_revalidated = s.revalidated;
            stats.shared_saturated = s.saturated;
        }
        BatchReport {
            outcomes,
            stats,
            bdd,
            shared,
            wall: started.elapsed(),
            generation: epoch.generation(),
            workers: reports,
        }
    }
}

/// Turn a sorted list of claimed chunk indexes into coalesced input
/// ranges.
fn coalesce_ranges(claimed: &[usize], chunk_size: usize, n: usize) -> Vec<Range<usize>> {
    let mut ranges: Vec<Range<usize>> = Vec::new();
    for &c in claimed {
        let lo = c * chunk_size;
        let hi = ((c + 1) * chunk_size).min(n);
        match ranges.last_mut() {
            Some(last) if last.end == lo => last.end = hi,
            _ => ranges.push(lo..hi),
        }
    }
    ranges
}

/// Compile-time audit: the types workers share by reference must be
/// `Send + Sync`. A regression here (an `Rc`, a `Cell`, a raw pointer
/// without the right marker) fails the build, not a review.
#[allow(dead_code)]
fn _send_sync_audit() {
    fn check<T: Send + Sync>() {}
    check::<RepairContext>();
    check::<MasterEpoch>();
    check::<Workload>();
    check::<BatchRepairEngine>();
    check::<SharedSuggestionCache>();
    check::<ChunkQueue>();
    check::<crate::service::RepairService>();
    check::<crate::service::ServiceOptions>();
    check::<RuleSet>();
    check::<MasterIndex>();
    check::<RulePlan>();
    check::<DependencyGraph>();
    check::<RegionCatalog>();
    check::<Tuple>();
    check::<FixOutcome>();
    check::<MonitorStats>();
    check::<BddStats>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate_rounds, merge_round_series, RoundMetrics, TupleEval};
    use crate::monitor::DataMonitor;
    use crate::oracle::SimulatedUser;
    use certainfix_datagen::{Dataset, DirtyConfig, Hosp, WideKey, Workload as GenWorkload};
    use certainfix_relation::Value;

    fn hosp_batch_skewed(dm: usize, inputs: usize, skew: f64) -> (Hosp, Dataset, Vec<Tuple>) {
        let hosp = Hosp::generate(dm);
        let cfg = DirtyConfig {
            duplicate_rate: 0.3,
            noise_rate: 0.2,
            input_size: inputs,
            seed: 0xD15EA5E,
            skew,
            ..DirtyConfig::default()
        };
        let ds = Dataset::generate(&hosp, &cfg);
        let dirty: Vec<Tuple> = ds.inputs.iter().map(|dt| dt.dirty.clone()).collect();
        (hosp, ds, dirty)
    }

    fn hosp_batch(dm: usize, inputs: usize) -> (Hosp, Dataset, Vec<Tuple>) {
        hosp_batch_skewed(dm, inputs, 0.0)
    }

    fn plain_opts(threads: usize, schedule: Schedule) -> RepairOptions {
        RepairOptions {
            threads,
            schedule,
            shared_cache: false,
            chunk: 0,
        }
    }

    fn eval_by_worker(report: &BatchReport, ds: &Dataset, rounds: usize) -> Vec<RoundMetrics> {
        let mut merged: Option<Vec<RoundMetrics>> = None;
        for worker in &report.workers {
            let evals: Vec<TupleEval> = worker
                .indexes()
                .map(|i| TupleEval {
                    outcome: &report.outcomes[i],
                    dirty: &ds.inputs[i].dirty,
                    clean: &ds.inputs[i].clean,
                })
                .collect();
            let m = evaluate_rounds(&evals, rounds);
            match &mut merged {
                None => merged = Some(m),
                Some(acc) => merge_round_series(acc, &m),
            }
        }
        merged.expect("at least one worker")
    }

    fn assert_outcomes_identical(a: &BatchReport, b: &BatchReport, what: &str) {
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
            assert_eq!(x.tuple, y.tuple, "tuple {i} ({what})");
            assert_eq!(x.certain, y.certain, "tuple {i} ({what})");
            assert_eq!(x.validated, y.validated, "tuple {i} ({what})");
            assert_eq!(x.rule_fixed, y.rule_fixed, "tuple {i} ({what})");
            assert_eq!(x.rounds.len(), y.rounds.len(), "tuple {i} ({what})");
        }
    }

    /// The PR 2 determinism guarantee, preserved for shard mode: the
    /// same 10k-tuple dirty HOSP batch repaired with 1, 2, and 8
    /// workers produces identical final tuples and identical merged
    /// `MonitorStats` counts and `RoundMetrics` rows.
    #[test]
    fn sharded_repair_is_deterministic_1_2_8() {
        let (hosp, ds, dirty) = hosp_batch(500, 10_000);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());

        let sequential = engine.repair_opts(&dirty, &plain_opts(1, Schedule::Shard), oracle_for);
        let seq_metrics = eval_by_worker(&sequential, &ds, 4);
        assert_eq!(sequential.workers.len(), 1);

        for threads in [2usize, 8] {
            let parallel =
                engine.repair_opts(&dirty, &plain_opts(threads, Schedule::Shard), oracle_for);
            assert_eq!(parallel.workers.len(), threads);
            assert_outcomes_identical(&sequential, &parallel, &format!("{threads} shards"));
            // merged deterministic MonitorStats fields
            assert_eq!(sequential.stats.tuples, parallel.stats.tuples);
            assert_eq!(sequential.stats.certain, parallel.stats.certain);
            assert_eq!(sequential.stats.rounds, parallel.stats.rounds);
            // merged per-worker metric rows are bit-identical
            assert_eq!(seq_metrics, eval_by_worker(&parallel, &ds, 4));
        }
    }

    /// The satellite determinism test for the new scheduler: a
    /// *skewed* 10k-tuple HOSP batch (hard tuples concentrated at the
    /// head of the stream) repaired in steal mode with 1, 2, and 8
    /// workers produces identical final tuples and identical merged
    /// `MonitorStats` counts and `RoundMetrics` rows — work stealing
    /// redistributes the skew without perturbing a single outcome.
    #[test]
    fn stealing_repair_is_deterministic_1_2_8_on_skewed_batch() {
        let (hosp, ds, dirty) = hosp_batch_skewed(500, 10_000, 1.0);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());

        let sequential = engine.repair_opts(&dirty, &plain_opts(1, Schedule::Steal), oracle_for);
        let seq_metrics = eval_by_worker(&sequential, &ds, 4);
        let shard = engine.repair_opts(&dirty, &plain_opts(4, Schedule::Shard), oracle_for);
        assert_outcomes_identical(&sequential, &shard, "shard vs steal baseline");
        assert_eq!(seq_metrics, eval_by_worker(&shard, &ds, 4));

        for threads in [2usize, 8] {
            let parallel =
                engine.repair_opts(&dirty, &plain_opts(threads, Schedule::Steal), oracle_for);
            assert_eq!(parallel.workers.len(), threads);
            assert_outcomes_identical(&sequential, &parallel, &format!("{threads} stealers"));
            assert_eq!(sequential.stats.tuples, parallel.stats.tuples);
            assert_eq!(sequential.stats.certain, parallel.stats.certain);
            assert_eq!(sequential.stats.rounds, parallel.stats.rounds);
            assert_eq!(seq_metrics, eval_by_worker(&parallel, &ds, 4));
        }
    }

    /// With the BDD cache each worker warms its own diagram, so round
    /// traces may differ across worker counts — but the repaired
    /// tuples must still agree with the sequential run, with and
    /// without the shared cache layered behind.
    #[test]
    fn bdd_workers_agree_on_final_tuples() {
        let (hosp, ds, dirty) = hosp_batch(300, 600);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            true,
        ));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());
        let sequential = engine.repair_opts(
            &dirty,
            &RepairOptions {
                threads: 1,
                schedule: Schedule::Steal,
                shared_cache: false,
                chunk: 0,
            },
            oracle_for,
        );
        for threads in [2usize, 4] {
            for shared_cache in [false, true] {
                let parallel = engine.repair_opts(
                    &dirty,
                    &RepairOptions {
                        threads,
                        schedule: Schedule::Steal,
                        shared_cache,
                        chunk: 0,
                    },
                    oracle_for,
                );
                for (i, (a, b)) in sequential
                    .outcomes
                    .iter()
                    .zip(&parallel.outcomes)
                    .enumerate()
                {
                    assert_eq!(a.tuple, b.tuple, "tuple {i} with {threads} workers");
                    assert_eq!(a.certain, b.certain, "tuple {i}");
                }
                assert_eq!(sequential.stats.certain, parallel.stats.certain);
            }
        }
    }

    /// The satellite cache-sharing test at the engine level: with the
    /// shared cache on, suggestions computed by one worker are
    /// observed (and served) across the batch — the engine's pool is
    /// non-empty and observed hits landed in the merged, per-worker
    /// monitor statistics.
    #[test]
    fn shared_cache_is_populated_and_hit_across_workers() {
        let (hosp, ds, dirty) = hosp_batch(200, 800);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            true,
        ));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());
        // warm pass: a single worker computes suggestions and publishes
        // them into the engine-lifetime pool (this also pins down the
        // cross-batch persistence — the pool outlives the repair call)
        let warm = engine.repair_opts(
            &dirty,
            &RepairOptions {
                threads: 1,
                schedule: Schedule::Steal,
                shared_cache: true,
                chunk: 0,
            },
            oracle_for,
        );
        assert!(!engine.shared_cache().is_empty(), "suggestions were pooled");
        assert!(warm.stats.shared_misses > 0, "the cold pass computed them");

        // parallel pass on fresh (cold-diagram) workers: every worker's
        // early local misses probe the warm pool, so pooled suggestions
        // are observed across workers — and with the deterministic
        // shard partition over a fixed pool, no timing enters the
        // counters at all
        let report = engine.repair_opts(
            &dirty,
            &RepairOptions {
                threads: 4,
                schedule: Schedule::Shard,
                shared_cache: true,
                chunk: 0,
            },
            oracle_for,
        );
        let shared = report.shared.as_ref().expect("shared stats snapshot");
        // `BatchReport::shared` is attributed per batch: each report
        // carries its own workers' probe counts, not the engine-global
        // cumulative ones
        let warm_shared = warm.shared.as_ref().expect("shared stats snapshot");
        assert_eq!(warm_shared.hits, warm.stats.shared_hits);
        assert_eq!(warm_shared.misses, warm.stats.shared_misses);
        assert_eq!(shared.hits, report.stats.shared_hits);
        assert_eq!(shared.misses, report.stats.shared_misses);
        // ... and summing the attributed counters over every batch the
        // engine ran reproduces the engine-global cache-side counters
        // exactly (the satellite identity)
        let global = engine.shared_cache().stats();
        assert_eq!(
            global.hits + global.misses,
            warm_shared.hits + warm_shared.misses + shared.hits + shared.misses,
            "attributed batch counters sum to the engine-global ones"
        );
        assert_eq!(global.hits, warm_shared.hits + shared.hits);
        assert_eq!(global.misses, warm_shared.misses + shared.misses);
        assert!(
            report.stats.shared_hits > 0,
            "pooled suggestions were served across workers: {shared:?}"
        );
        // worker-side counters merge through MonitorStats::merge
        let mut remerged = MonitorStats::default();
        for w in &report.workers {
            remerged.merge(&w.stats);
        }
        assert_eq!(remerged.shared_hits, report.stats.shared_hits);
        assert_eq!(remerged.shared_misses, report.stats.shared_misses);
    }

    /// The tentpole's determinism contract (D10) at the engine level:
    /// an engine whose epoch was maintained through `MasterDelta`s
    /// (updates patching the index, inserts extending it) produces
    /// bit-identical outcomes and merged deterministic stats —
    /// including `plan_probes` — to an engine rebuilt from scratch
    /// over the same master rows, on a skewed batch, across worker
    /// counts. The delta-maintained plan still probes through the
    /// compiled layer with bounded steady-state allocations.
    #[test]
    fn delta_maintained_epoch_matches_fresh_rebuild() {
        let (hosp, ds, dirty) = hosp_batch_skewed(300, 2_000, 1.0);
        let full = hosp.master().clone();
        let n = full.len();
        // Seed master: the last 20 rows missing, and row 0 corrupted.
        let mut seed_rows: Vec<Tuple> = full.tuples()[..n - 20].to_vec();
        let a0 = hosp.rules().m_schema().attr_ids().next().expect("attrs");
        let mut stale = seed_rows[0].clone();
        stale.set(a0, Value::str("STALE-MASTER-ROW"));
        seed_rows[0] = stale;
        let seed = Arc::new(Relation::new(full.schema().clone(), seed_rows).expect("seed master"));

        let maintained =
            BatchRepairEngine::new(RepairContext::new(hosp.rules().clone(), seed, false));
        let before_gen = maintained.context().generation();
        // One delta batch: repair row 0 and append the missing rows.
        let mut delta = MasterDelta::new().update(0, full.tuple(0).clone());
        for t in &full.tuples()[n - 20..] {
            delta = delta.insert(t.clone());
        }
        let gen = maintained
            .context()
            .apply_master_delta(&delta)
            .expect("delta applies");
        assert!(gen > before_gen, "delta advanced the generation");
        assert_eq!(maintained.context().generation(), gen);
        assert_eq!(maintained.context().plan_rebuilds(), 1);

        let fresh = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            full.clone(),
            false,
        ));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());
        let baseline = fresh.repair_opts(&dirty, &plain_opts(1, Schedule::Steal), oracle_for);
        for threads in [1usize, 2, 4] {
            let got =
                maintained.repair_opts(&dirty, &plain_opts(threads, Schedule::Steal), oracle_for);
            assert_outcomes_identical(&baseline, &got, &format!("delta epoch, {threads} workers"));
            assert_eq!(baseline.stats.tuples, got.stats.tuples);
            assert_eq!(baseline.stats.certain, got.stats.certain);
            assert_eq!(baseline.stats.rounds, got.stats.rounds);
            // the logical probe count is part of the D10 contract
            assert_eq!(baseline.stats.plan_probes, got.stats.plan_probes);
            assert!(
                got.stats.plan_probes > 0,
                "the compiled layer served the probes"
            );
            // each worker warms one scratch buffer (probe key plus the
            // block-probe buffers); after that the steady-state lookup
            // path allocates nothing, so allocations stay bounded by a
            // small per-worker constant regardless of batch size
            assert!(
                got.stats.probe_allocs <= (threads * 16) as u64,
                "probe allocations bounded by worker count: {} > 16*{threads}",
                got.stats.probe_allocs
            );
            assert_eq!(got.generation, gen, "batch pinned the delta'd epoch");
        }
        assert_eq!(baseline.generation, fresh.context().generation());
    }

    /// Delete deltas force the lazy index rebuild path; the rebuilt
    /// epoch must still match an engine constructed directly over the
    /// surviving rows.
    #[test]
    fn delete_delta_matches_fresh_rebuild() {
        let (hosp, ds, dirty) = hosp_batch(200, 500);
        let full = hosp.master().clone();
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            full.clone(),
            false,
        ));
        // drop the last two master rows through a delta ...
        let n = full.len() as u32;
        let delta = MasterDelta::new().delete(n - 1).delete(n - 2);
        assert!(delta.has_deletes());
        let gen = engine
            .context()
            .apply_master_delta(&delta)
            .expect("delta applies");
        assert_eq!(engine.context().generation(), gen);
        // ... and rebuild the same master from scratch
        let survivors: Vec<Tuple> = full.tuples()[..full.len() - 2].to_vec();
        let truncated =
            Arc::new(Relation::new(full.schema().clone(), survivors).expect("truncated master"));
        let fresh =
            BatchRepairEngine::new(RepairContext::new(hosp.rules().clone(), truncated, false));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());
        let want = fresh.repair_opts(&dirty, &plain_opts(2, Schedule::Steal), oracle_for);
        let got = engine.repair_opts(&dirty, &plain_opts(2, Schedule::Steal), oracle_for);
        assert_outcomes_identical(&want, &got, "delete delta");
        assert_eq!(want.stats.plan_probes, got.stats.plan_probes);
    }

    /// The CFD workload fans out through the same engine: outcomes are
    /// deterministic across worker counts and flow through the common
    /// report plumbing (oracle-free, zero interaction rounds).
    #[test]
    fn cfd_workload_is_deterministic_across_workers() {
        let (hosp, ds, dirty) = hosp_batch(300, 1_000);
        let engine = BatchRepairEngine::new(RepairContext::with_workload(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
            InitialRegion::Best,
            CertainFixConfig::default(),
            Workload::Cfd(IncRepConfig::default()),
        ));
        assert!(matches!(engine.context().workload(), Workload::Cfd(_)));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());
        let sequential = engine.repair_opts(&dirty, &plain_opts(1, Schedule::Steal), oracle_for);
        assert_eq!(sequential.stats.tuples, 1_000);
        assert_eq!(
            sequential.stats.rounds, 0,
            "cost-based repair has no rounds"
        );
        for threads in [2usize, 4] {
            let parallel =
                engine.repair_opts(&dirty, &plain_opts(threads, Schedule::Steal), oracle_for);
            assert_outcomes_identical(&sequential, &parallel, &format!("cfd, {threads} workers"));
            assert_eq!(sequential.stats.certain, parallel.stats.certain);
        }
    }

    /// The wide-key fallback counter flows through the engine: the
    /// WIDEKEY workload keys seven attributes — past the plan's
    /// preallocated sub-slot cap — so partially-validated probes go
    /// through the shared master cache and tick `plan_fallbacks`. The
    /// count is a deterministic property of the repair (it rides the
    /// per-tuple suggest sequence, which block probing preserves), so
    /// it must merge to the same total at every worker count.
    #[test]
    fn wide_key_fallbacks_are_counted_and_deterministic() {
        let wk = WideKey::generate(200);
        let cfg = DirtyConfig {
            duplicate_rate: 0.6,
            noise_rate: 0.25,
            input_size: 400,
            seed: 0xC0FFEE,
            ..Default::default()
        };
        let ds = Dataset::generate(&wk, &cfg);
        let dirty: Vec<Tuple> = ds.inputs.iter().map(|dt| dt.dirty.clone()).collect();
        let engine = BatchRepairEngine::new(RepairContext::with_config(
            wk.rules().clone(),
            wk.master().clone(),
            false,
            InitialRegion::Best,
            CertainFixConfig::default(),
        ));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());
        let base = engine.repair_opts(&dirty, &plain_opts(1, Schedule::Steal), oracle_for);
        assert!(
            base.stats.plan_fallbacks > 0,
            "7-attribute keys exercised the wide-key fallback"
        );
        for threads in [2usize, 4] {
            let par = engine.repair_opts(&dirty, &plain_opts(threads, Schedule::Steal), oracle_for);
            assert_outcomes_identical(&base, &par, &format!("widekey, {threads} workers"));
            assert_eq!(
                base.stats.plan_fallbacks, par.stats.plan_fallbacks,
                "fallback count independent of worker count"
            );
            // per-worker counters reach the batch total through
            // MonitorStats::merge, not through a side channel
            let merged: u64 = par.workers.iter().map(|w| w.stats.plan_fallbacks).sum();
            assert_eq!(merged, par.stats.plan_fallbacks);
        }
    }

    #[test]
    fn engine_matches_the_sequential_monitor() {
        let (hosp, ds, dirty) = hosp_batch(300, 200);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            true,
        ));
        let report = engine.repair_opts(
            &dirty,
            &RepairOptions {
                threads: 4,
                ..RepairOptions::default()
            },
            |i| SimulatedUser::new(ds.inputs[i].clean.clone()),
        );
        let mut monitor = DataMonitor::new(hosp.rules().clone(), hosp.master().clone(), true);
        for (i, dt) in ds.inputs.iter().enumerate() {
            let mut user = SimulatedUser::new(dt.clean.clone());
            let out = monitor.process(&dt.dirty, &mut user);
            assert_eq!(out.tuple, report.outcomes[i].tuple, "tuple {i}");
            assert_eq!(out.certain, report.outcomes[i].certain, "tuple {i}");
        }
        assert_eq!(monitor.stats().certain, report.stats.certain);
        assert_eq!(monitor.stats().tuples, report.stats.tuples);
    }

    #[test]
    fn shard_ranges_partition_the_input_in_order() {
        let (hosp, ds, dirty) = hosp_batch(100, 103);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let report = engine.repair_opts(&dirty, &plain_opts(4, Schedule::Shard), |i| {
            SimulatedUser::new(ds.inputs[i].clean.clone())
        });
        assert_eq!(report.outcomes.len(), 103);
        let mut next = 0usize;
        for (k, worker) in report.workers.iter().enumerate() {
            assert_eq!(worker.worker, k);
            assert_eq!(worker.ranges.len(), 1, "one contiguous shard per worker");
            assert_eq!(worker.ranges[0].start, next);
            assert!(!worker.ranges[0].is_empty());
            next = worker.ranges[0].end;
        }
        assert_eq!(next, 103);
        // watermark was captured (the interner is never empty here)
        assert!(report.stats.interner_syms > 0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn stolen_ranges_partition_the_input() {
        let (hosp, ds, dirty) = hosp_batch(100, 509);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let report = engine.repair_opts(
            &dirty,
            &RepairOptions {
                threads: 4,
                schedule: Schedule::Steal,
                shared_cache: false,
                chunk: 16,
            },
            |i| SimulatedUser::new(ds.inputs[i].clean.clone()),
        );
        assert_eq!(report.outcomes.len(), 509);
        // every index covered exactly once across all workers
        let mut seen = vec![false; 509];
        for worker in &report.workers {
            // ranges ascending and coalesced
            for pair in worker.ranges.windows(2) {
                assert!(pair[0].end < pair[1].start, "ascending, non-adjacent");
            }
            for i in worker.indexes() {
                assert!(!seen[i], "index {i} repaired twice");
                seen[i] = true;
            }
            assert_eq!(worker.tuples() as u64, worker.stats.tuples);
        }
        assert!(seen.iter().all(|&s| s), "every index repaired");
        // per-worker stats merge back to the batch totals
        let total: u64 = report.workers.iter().map(|w| w.stats.tuples).sum();
        assert_eq!(total, 509);
    }

    #[test]
    fn more_threads_than_tuples_is_clamped() {
        let (hosp, ds, dirty) = hosp_batch(50, 3);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let report = engine.repair_opts(
            &dirty,
            &RepairOptions {
                threads: 64,
                ..RepairOptions::default()
            },
            |i| SimulatedUser::new(ds.inputs[i].clean.clone()),
        );
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.workers.len() <= 3);
        assert_eq!(report.stats.tuples, 3);
    }

    #[test]
    fn zero_threads_resolves_to_auto() {
        let (hosp, ds, dirty) = hosp_batch(50, 20);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let report = engine.repair_opts(
            &dirty,
            &RepairOptions {
                threads: 0,
                ..RepairOptions::default()
            },
            |i| SimulatedUser::new(ds.inputs[i].clean.clone()),
        );
        assert_eq!(report.outcomes.len(), 20);
        assert!(!report.workers.is_empty());
        assert!(report.workers.len() <= BatchRepairEngine::auto_threads().clamp(1, 20));
    }

    #[test]
    fn empty_batch_is_fine() {
        let hosp = Hosp::generate(20);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let report = engine.repair_opts(
            &[],
            &RepairOptions {
                threads: 8,
                ..RepairOptions::default()
            },
            |_| SimulatedUser::new(hosp.master().tuple(0).clone()),
        );
        assert!(report.outcomes.is_empty());
        assert!(report.workers.is_empty());
        assert_eq!(report.stats.tuples, 0);
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.generation, engine.context().generation());
    }

    #[test]
    fn schedule_parses_and_names() {
        assert_eq!(Schedule::parse("shard"), Some(Schedule::Shard));
        assert_eq!(Schedule::parse("steal"), Some(Schedule::Steal));
        assert_eq!(Schedule::parse("work-stealing"), None);
        assert_eq!(Schedule::Shard.name(), "shard");
        assert_eq!(Schedule::Steal.name(), "steal");
        assert_eq!(Schedule::default(), Schedule::Steal);
    }
}
