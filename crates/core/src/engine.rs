//! The sharded parallel batch-repair engine.
//!
//! The paper's repair model is embarrassingly parallel across tuples:
//! [`CertainFix`] and [`transfix`](crate::transfix::transfix) read a
//! shared immutable `(Σ, Dm)` precomputation and mutate only the tuple
//! they are repairing. [`BatchRepairEngine`] exploits that: it splits a
//! batch of dirty tuples into contiguous shards and repairs the shards
//! concurrently with scoped worker threads, each worker owning its own
//! [`SuggestionBdd`] cache and [`MonitorStats`] accumulator over a
//! shared [`RepairContext`].
//!
//! # Determinism
//!
//! Every tuple's repair depends only on the tuple itself, its oracle,
//! and the shared immutable context — never on other tuples in the
//! batch. Outcomes are stitched back in input order, and the merged
//! statistics are integer sums, so for plain `CertainFix`
//! (`use_bdd = false`) the repaired tuples, the merged count fields of
//! [`MonitorStats`], and any [`RoundMetrics`](crate::RoundMetrics)
//! evaluated per shard and [`merged`](crate::metrics::merge_round_series)
//! are **bit-identical to a sequential run regardless of shard count or
//! interleaving**. With the BDD cache enabled each shard warms its own
//! cache, which can serve a different (but equally valid) suggestion
//! order; final repaired tuples still agree, but round traces may not.
//! The wall-clock observables ([`MonitorStats::elapsed`] and the
//! interner watermark) are exempt from the guarantee by nature.

use std::ops::Range;
use std::time::{Duration, Instant};

use certainfix_reasoning::{suggest, RegionCatalog};
use certainfix_relation::{AttrId, Interner, MasterIndex, Relation, Tuple};
use certainfix_rules::{DependencyGraph, RuleSet};
use std::sync::Arc;

use crate::bdd::{BddStats, Cursor, SuggestionBdd};
use crate::certainfix::{CertainFix, CertainFixConfig, FixOutcome};
use crate::monitor::{InitialRegion, MonitorStats};
use crate::oracle::UserOracle;

/// Everything precomputed from `(Σ, Dm)` that repair workers share by
/// reference: the rule set, the indexed master data, the dependency
/// graph (Fig. 4), the ranked certain-region catalog, and the initial
/// suggestion. Immutable after construction (the [`MasterIndex`] cache
/// grows internally behind its own lock), hence `Sync`.
pub struct RepairContext {
    rules: Arc<RuleSet>,
    master: MasterIndex,
    graph: DependencyGraph,
    catalog: RegionCatalog,
    initial: Vec<AttrId>,
    config: CertainFixConfig,
    use_bdd: bool,
}

impl RepairContext {
    /// Build a context over `(Σ, Dm)`. `use_bdd` selects `CertainFix+`
    /// (per-worker BDD suggestion caches) over plain `CertainFix`.
    pub fn new(rules: RuleSet, master: Arc<Relation>, use_bdd: bool) -> RepairContext {
        Self::with_config(
            rules,
            master,
            use_bdd,
            InitialRegion::Best,
            CertainFixConfig::default(),
        )
    }

    /// Full-control constructor.
    pub fn with_config(
        rules: RuleSet,
        master: Arc<Relation>,
        use_bdd: bool,
        initial_region: InitialRegion,
        config: CertainFixConfig,
    ) -> RepairContext {
        let master = MasterIndex::new(master);
        let graph = DependencyGraph::new(&rules);
        let catalog = RegionCatalog::build(&rules, &master);
        let region = match initial_region {
            InitialRegion::Best => catalog.best(),
            InitialRegion::Median => catalog.median(),
        };
        let initial = region
            .map(|r| r.z().to_vec())
            .unwrap_or_else(|| rules.r_schema().attr_ids().collect());
        RepairContext {
            rules: Arc::new(rules),
            master,
            graph,
            catalog,
            initial,
            config,
            use_bdd,
        }
    }

    /// The rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The indexed master data.
    pub fn master(&self) -> &MasterIndex {
        &self.master
    }

    /// The region catalog.
    pub fn catalog(&self) -> &RegionCatalog {
        &self.catalog
    }

    /// The initial suggestion (the seeded region's `Z`).
    pub fn initial_suggestion(&self) -> &[AttrId] {
        &self.initial
    }

    /// `true` iff suggestions are served from a BDD cache.
    pub fn uses_bdd(&self) -> bool {
        self.use_bdd
    }

    /// Run the Fig. 3 interaction loop for one tuple, charging the
    /// given per-worker cache and statistics accumulator. This is the
    /// single per-tuple pipeline shared by the sequential
    /// [`DataMonitor`](crate::DataMonitor) and the parallel engine's
    /// shard workers — both produce outcomes through this exact code
    /// path, which is what makes the determinism guarantee hold by
    /// construction rather than by parallel maintenance of two loops.
    pub fn process_with<O: UserOracle + ?Sized>(
        &self,
        bdd: &mut SuggestionBdd,
        stats: &mut MonitorStats,
        dirty: &Tuple,
        oracle: &mut O,
    ) -> FixOutcome {
        let started = Instant::now();
        let engine = CertainFix::new(&self.rules, &self.master, &self.graph, self.config.clone());
        let outcome = if self.use_bdd {
            let mut cursor = Cursor::start();
            engine.run(dirty, &self.initial, oracle, |t, validated| {
                bdd.suggest_plus(&self.rules, &self.master, t, validated, &mut cursor)
            })
        } else {
            engine.run(dirty, &self.initial, oracle, |t, validated| {
                suggest(&self.rules, &self.master, t, validated).map(|s| s.attrs)
            })
        };
        stats.tuples += 1;
        stats.rounds += outcome.rounds.len() as u64;
        if outcome.certain {
            stats.certain += 1;
        }
        stats.elapsed += started.elapsed();
        stats.interner_syms = stats.interner_syms.max(Interner::global().len() as u64);
        outcome
    }
}

/// Per-shard accounting of one [`BatchRepairEngine::repair`] call.
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Shard index (0-based, in input order).
    pub shard: usize,
    /// The input indexes this shard repaired.
    pub range: Range<usize>,
    /// The shard worker's statistics.
    pub stats: MonitorStats,
    /// The shard worker's BDD cache statistics.
    pub bdd: BddStats,
}

/// The merged result of one batch repair.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-tuple outcomes, in input order.
    pub outcomes: Vec<FixOutcome>,
    /// Merged statistics ([`MonitorStats::merge`] over all shards;
    /// `elapsed` is summed worker time, not wall clock).
    pub stats: MonitorStats,
    /// Merged BDD cache statistics.
    pub bdd: BddStats,
    /// Wall-clock time of the whole batch (what throughput divides by).
    pub wall: Duration,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<ShardReport>,
}

impl BatchReport {
    /// Batch throughput in tuples per second (wall clock).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.outcomes.len() as f64 / secs
        }
    }
}

/// The sharded parallel batch-repair engine: a [`RepairContext`] plus
/// the scoped-thread fan-out/merge machinery.
pub struct BatchRepairEngine {
    ctx: RepairContext,
}

impl BatchRepairEngine {
    /// Wrap a prepared context.
    pub fn new(ctx: RepairContext) -> BatchRepairEngine {
        BatchRepairEngine { ctx }
    }

    /// Shorthand: build the context and the engine in one step.
    pub fn with_config(
        rules: RuleSet,
        master: Arc<Relation>,
        use_bdd: bool,
        initial_region: InitialRegion,
        config: CertainFixConfig,
    ) -> BatchRepairEngine {
        BatchRepairEngine::new(RepairContext::with_config(
            rules,
            master,
            use_bdd,
            initial_region,
            config,
        ))
    }

    /// The shared context.
    pub fn context(&self) -> &RepairContext {
        &self.ctx
    }

    /// This machine's available parallelism (the `--threads 0` / "auto"
    /// resolution used by the bench layer).
    pub fn auto_threads() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Repair `dirty` with up to `threads` concurrent shard workers.
    ///
    /// The batch is split into `threads` contiguous shards (the last
    /// may be short). `oracle_for(i)` supplies the (simulated or real)
    /// user for input index `i`; it is called from worker threads, so
    /// it must be `Sync` — and for the determinism guarantee it must
    /// depend only on `i`, not on call order.
    pub fn repair<F, O>(&self, dirty: &[Tuple], threads: usize, oracle_for: F) -> BatchReport
    where
        F: Fn(usize) -> O + Sync,
        O: UserOracle,
    {
        let started = Instant::now();
        let n = dirty.len();
        if n == 0 {
            return BatchReport {
                outcomes: Vec::new(),
                stats: MonitorStats::default(),
                bdd: BddStats::default(),
                wall: started.elapsed(),
                shards: Vec::new(),
            };
        }
        let threads = threads.clamp(1, n);
        let chunk = n.div_ceil(threads);
        let mut slots: Vec<Option<(Vec<FixOutcome>, MonitorStats, BddStats)>> = Vec::new();
        slots.resize_with(threads, || None);

        let ctx = &self.ctx;
        let oracle_for = &oracle_for;
        std::thread::scope(|s| {
            for (i, (tuples, slot)) in dirty.chunks(chunk).zip(slots.iter_mut()).enumerate() {
                let base = i * chunk;
                s.spawn(move || {
                    let mut bdd = SuggestionBdd::new();
                    let mut stats = MonitorStats::default();
                    let outcomes: Vec<FixOutcome> = tuples
                        .iter()
                        .enumerate()
                        .map(|(j, t)| {
                            let mut oracle = oracle_for(base + j);
                            ctx.process_with(&mut bdd, &mut stats, t, &mut oracle)
                        })
                        .collect();
                    *slot = Some((outcomes, stats, bdd.stats()));
                });
            }
        });

        let mut outcomes = Vec::with_capacity(n);
        let mut stats = MonitorStats::default();
        let mut bdd = BddStats::default();
        let mut shards = Vec::new();
        for (i, slot) in slots.into_iter().enumerate() {
            // `chunks` yields ceil(n/chunk) <= threads pieces; trailing
            // slots stay empty when the division is uneven.
            let Some((outs, s, b)) = slot else { continue };
            let range = outcomes.len()..outcomes.len() + outs.len();
            stats.merge(&s);
            bdd.merge(&b);
            shards.push(ShardReport {
                shard: i,
                range,
                stats: s,
                bdd: b,
            });
            outcomes.extend(outs);
        }
        debug_assert_eq!(outcomes.len(), n);
        BatchReport {
            outcomes,
            stats,
            bdd,
            wall: started.elapsed(),
            shards,
        }
    }

    /// Repair every tuple of a relation (the batch analogue of
    /// [`DataMonitor::repair_relation`](crate::DataMonitor::repair_relation)),
    /// returning the repaired relation plus the full report.
    pub fn repair_relation<F, O>(
        &self,
        dirty: &Relation,
        threads: usize,
        oracle_for: F,
    ) -> (Relation, BatchReport)
    where
        F: Fn(usize) -> O + Sync,
        O: UserOracle,
    {
        let tuples: Vec<Tuple> = dirty.iter().cloned().collect();
        let report = self.repair(&tuples, threads, oracle_for);
        let mut repaired = Relation::empty(dirty.schema().clone());
        for out in &report.outcomes {
            repaired
                .push(out.tuple.clone())
                .expect("outcome tuples share the input schema");
        }
        (repaired, report)
    }
}

/// Compile-time audit: the types shard workers share by reference must
/// be `Send + Sync`. A regression here (an `Rc`, a `Cell`, a raw
/// pointer without the right marker) fails the build, not a review.
#[allow(dead_code)]
fn _send_sync_audit() {
    fn check<T: Send + Sync>() {}
    check::<RepairContext>();
    check::<BatchRepairEngine>();
    check::<RuleSet>();
    check::<MasterIndex>();
    check::<DependencyGraph>();
    check::<RegionCatalog>();
    check::<Tuple>();
    check::<FixOutcome>();
    check::<MonitorStats>();
    check::<BddStats>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate_rounds, merge_round_series, RoundMetrics, TupleEval};
    use crate::monitor::DataMonitor;
    use crate::oracle::SimulatedUser;
    use certainfix_datagen::{Dataset, DirtyConfig, Hosp, Workload};

    fn hosp_batch(dm: usize, inputs: usize) -> (Hosp, Dataset, Vec<Tuple>) {
        let hosp = Hosp::generate(dm);
        let cfg = DirtyConfig {
            duplicate_rate: 0.3,
            noise_rate: 0.2,
            input_size: inputs,
            seed: 0xD15EA5E,
        };
        let ds = Dataset::generate(&hosp, &cfg);
        let dirty: Vec<Tuple> = ds.inputs.iter().map(|dt| dt.dirty.clone()).collect();
        (hosp, ds, dirty)
    }

    fn eval_by_shard(report: &BatchReport, ds: &Dataset, rounds: usize) -> Vec<RoundMetrics> {
        let mut merged: Option<Vec<RoundMetrics>> = None;
        for shard in &report.shards {
            let evals: Vec<TupleEval> = shard
                .range
                .clone()
                .map(|i| TupleEval {
                    outcome: &report.outcomes[i],
                    dirty: &ds.inputs[i].dirty,
                    clean: &ds.inputs[i].clean,
                })
                .collect();
            let m = evaluate_rounds(&evals, rounds);
            match &mut merged {
                None => merged = Some(m),
                Some(acc) => merge_round_series(acc, &m),
            }
        }
        merged.expect("at least one shard")
    }

    /// The satellite determinism test: the same 10k-tuple dirty HOSP
    /// batch repaired with 1, 2, and 8 shards produces identical final
    /// tuples and identical merged `MonitorStats` counts and
    /// `RoundMetrics` rows.
    #[test]
    fn sharded_repair_is_deterministic_1_2_8() {
        let (hosp, ds, dirty) = hosp_batch(500, 10_000);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());

        let sequential = engine.repair(&dirty, 1, oracle_for);
        let seq_metrics = eval_by_shard(&sequential, &ds, 4);
        assert_eq!(sequential.shards.len(), 1);

        for threads in [2usize, 8] {
            let parallel = engine.repair(&dirty, threads, oracle_for);
            assert_eq!(parallel.shards.len(), threads);
            for (i, (a, b)) in sequential
                .outcomes
                .iter()
                .zip(&parallel.outcomes)
                .enumerate()
            {
                assert_eq!(a.tuple, b.tuple, "tuple {i} with {threads} shards");
                assert_eq!(a.certain, b.certain, "tuple {i}");
                assert_eq!(a.validated, b.validated, "tuple {i}");
                assert_eq!(a.rule_fixed, b.rule_fixed, "tuple {i}");
                assert_eq!(a.rounds.len(), b.rounds.len(), "tuple {i}");
            }
            // merged deterministic MonitorStats fields
            assert_eq!(sequential.stats.tuples, parallel.stats.tuples);
            assert_eq!(sequential.stats.certain, parallel.stats.certain);
            assert_eq!(sequential.stats.rounds, parallel.stats.rounds);
            // merged per-shard metric rows are bit-identical
            assert_eq!(seq_metrics, eval_by_shard(&parallel, &ds, 4));
        }
    }

    /// With the BDD cache each shard warms its own diagram, so round
    /// traces may differ across shard counts — but the repaired tuples
    /// must still agree with the sequential run.
    #[test]
    fn bdd_shards_agree_on_final_tuples() {
        let (hosp, ds, dirty) = hosp_batch(300, 600);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            true,
        ));
        let oracle_for = |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone());
        let sequential = engine.repair(&dirty, 1, oracle_for);
        for threads in [2usize, 4] {
            let parallel = engine.repair(&dirty, threads, oracle_for);
            for (i, (a, b)) in sequential
                .outcomes
                .iter()
                .zip(&parallel.outcomes)
                .enumerate()
            {
                assert_eq!(a.tuple, b.tuple, "tuple {i} with {threads} shards");
                assert_eq!(a.certain, b.certain, "tuple {i}");
            }
            assert_eq!(sequential.stats.certain, parallel.stats.certain);
        }
    }

    #[test]
    fn engine_matches_the_sequential_monitor() {
        let (hosp, ds, dirty) = hosp_batch(300, 200);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            true,
        ));
        let report = engine.repair(&dirty, 4, |i| {
            SimulatedUser::new(ds.inputs[i].clean.clone())
        });
        let mut monitor = DataMonitor::new(hosp.rules().clone(), hosp.master().clone(), true);
        for (i, dt) in ds.inputs.iter().enumerate() {
            let mut user = SimulatedUser::new(dt.clean.clone());
            let out = monitor.process(&dt.dirty, &mut user);
            assert_eq!(out.tuple, report.outcomes[i].tuple, "tuple {i}");
            assert_eq!(out.certain, report.outcomes[i].certain, "tuple {i}");
        }
        assert_eq!(monitor.stats().certain, report.stats.certain);
        assert_eq!(monitor.stats().tuples, report.stats.tuples);
    }

    #[test]
    fn shard_ranges_partition_the_input_in_order() {
        let (hosp, ds, dirty) = hosp_batch(100, 103);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let report = engine.repair(&dirty, 4, |i| {
            SimulatedUser::new(ds.inputs[i].clean.clone())
        });
        assert_eq!(report.outcomes.len(), 103);
        let mut next = 0usize;
        for (k, shard) in report.shards.iter().enumerate() {
            assert_eq!(shard.shard, k);
            assert_eq!(shard.range.start, next);
            assert!(!shard.range.is_empty());
            next = shard.range.end;
        }
        assert_eq!(next, 103);
        // watermark was captured (the interner is never empty here)
        assert!(report.stats.interner_syms > 0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn more_threads_than_tuples_is_clamped() {
        let (hosp, ds, dirty) = hosp_batch(50, 3);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let report = engine.repair(&dirty, 64, |i| {
            SimulatedUser::new(ds.inputs[i].clean.clone())
        });
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.shards.len() <= 3);
        assert_eq!(report.stats.tuples, 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let hosp = Hosp::generate(20);
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
        ));
        let report = engine.repair(&[], 8, |_| {
            SimulatedUser::new(hosp.master().tuple(0).clone())
        });
        assert!(report.outcomes.is_empty());
        assert!(report.shards.is_empty());
        assert_eq!(report.stats.tuples, 0);
        assert_eq!(report.throughput(), 0.0);
    }

    #[test]
    fn repair_relation_round_trips() {
        let (hosp, ds, _) = hosp_batch(150, 40);
        let dirty_rel = ds.dirty_relation(hosp.schema().clone());
        let engine = BatchRepairEngine::new(RepairContext::new(
            hosp.rules().clone(),
            hosp.master().clone(),
            true,
        ));
        let (repaired, report) = engine.repair_relation(&dirty_rel, 3, |i| {
            SimulatedUser::new(ds.inputs[i].clean.clone())
        });
        assert_eq!(repaired.len(), 40);
        for (i, out) in report.outcomes.iter().enumerate() {
            assert_eq!(repaired.tuple(i), &out.tuple);
        }
    }
}
