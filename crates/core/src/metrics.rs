//! Evaluation metrics (paper Sect. 6, "Experimental results").
//!
//! * `recall_t = #corrected tuples / #erroneous tuples` — a tuple
//!   counts as corrected once it has a *rule-backed certain fix*: all
//!   attributes validated with at least one editing rule contributing.
//!   Tuples whose errors can only be typed in by the user (entities
//!   absent from `Dm`) never count, which is why `recall_t` at round 1
//!   equals the duplicate rate `d%` and plateaus in later rounds.
//! * `recall_a = #corrected attributes / #erroneous attributes` —
//!   attribute corrections *by rules only*; "the number of corrected
//!   attributes does not include those fixed by the users".
//! * `precision_a = #corrected attributes / #changed attributes` — for
//!   `CertainFix` every change is justified by a validated region, so
//!   precision is 1 by construction; the definition exists for the
//!   `IncRep` comparison.
//! * `F-measure = 2·recall·precision / (recall + precision)`.

use certainfix_relation::{AttrSet, Tuple};

use crate::certainfix::FixOutcome;

/// One evaluated tuple: the monitoring outcome plus ground truth.
pub struct TupleEval<'a> {
    /// The monitor's outcome.
    pub outcome: &'a FixOutcome,
    /// The tuple as entered.
    pub dirty: &'a Tuple,
    /// The ground truth.
    pub clean: &'a Tuple,
}

/// Metrics after `round` rounds of interaction (cumulative).
///
/// The raw counts are carried alongside the derived ratios so that
/// per-shard evaluations can be [`merge`](RoundMetrics::merge)d into a
/// whole-batch row that is bit-identical to evaluating the whole batch
/// at once: merging sums the integer counts and recomputes the ratios
/// from the sums, so no floating-point averaging error can creep in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundMetrics {
    /// 1-based round number.
    pub round: usize,
    /// Erroneous tuples corrected by a rule-backed certain fix.
    pub corrected_tuples: usize,
    /// Erroneous tuples in the input.
    pub erroneous_tuples: usize,
    /// Erroneous attributes corrected by rules.
    pub corrected_attrs: usize,
    /// Attributes changed by rules.
    pub changed_attrs: usize,
    /// Erroneous attributes in the input.
    pub erroneous_attrs: usize,
    /// Tuple-level recall.
    pub recall_t: f64,
    /// Attribute-level recall (rule fixes only).
    pub recall_a: f64,
    /// Attribute-level precision of rule fixes.
    pub precision_a: f64,
    /// Harmonic mean of `recall_a` and `precision_a`.
    pub f_measure: f64,
}

impl RoundMetrics {
    /// Derive the ratio fields from raw counts.
    pub fn from_counts(
        round: usize,
        corrected_tuples: usize,
        erroneous_tuples: usize,
        corrected_attrs: usize,
        changed_attrs: usize,
        erroneous_attrs: usize,
    ) -> RoundMetrics {
        let recall_t = ratio(corrected_tuples, erroneous_tuples);
        let recall_a = ratio(corrected_attrs, erroneous_attrs);
        let precision_a = if changed_attrs == 0 {
            1.0
        } else {
            ratio(corrected_attrs, changed_attrs)
        };
        RoundMetrics {
            round,
            corrected_tuples,
            erroneous_tuples,
            corrected_attrs,
            changed_attrs,
            erroneous_attrs,
            recall_t,
            recall_a,
            precision_a,
            f_measure: f_measure(recall_a, precision_a),
        }
    }

    /// Fold another shard's row for the *same round* into this one:
    /// counts add, ratios are recomputed from the summed counts.
    ///
    /// # Panics
    /// Panics if the rounds differ — merging rows of different rounds
    /// is always a bookkeeping bug.
    pub fn merge(&mut self, other: &RoundMetrics) {
        assert_eq!(self.round, other.round, "merging different rounds");
        *self = RoundMetrics::from_counts(
            self.round,
            self.corrected_tuples + other.corrected_tuples,
            self.erroneous_tuples + other.erroneous_tuples,
            self.corrected_attrs + other.corrected_attrs,
            self.changed_attrs + other.changed_attrs,
            self.erroneous_attrs + other.erroneous_attrs,
        );
    }
}

/// Merge two per-round series element-wise (both must cover the same
/// `1..=max_round` range, as produced by [`evaluate_rounds`]).
pub fn merge_round_series(acc: &mut [RoundMetrics], other: &[RoundMetrics]) {
    assert_eq!(acc.len(), other.len(), "merging different round ranges");
    for (a, b) in acc.iter_mut().zip(other) {
        a.merge(b);
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn f_measure(recall: f64, precision: f64) -> f64 {
    if recall + precision == 0.0 {
        0.0
    } else {
        2.0 * recall * precision / (recall + precision)
    }
}

/// Evaluate a batch of monitored tuples, producing cumulative metrics
/// for rounds `1..=max_round`.
pub fn evaluate_rounds(evals: &[TupleEval<'_>], max_round: usize) -> Vec<RoundMetrics> {
    let erroneous_tuples = evals.iter().filter(|e| e.dirty != e.clean).count();
    let erroneous_attrs: usize = evals.iter().map(|e| e.dirty.diff(e.clean).len()).sum();

    (1..=max_round)
        .map(|round| {
            let mut corrected_tuples = 0usize;
            let mut corrected_attrs = 0usize;
            let mut changed_attrs = 0usize;
            for e in evals {
                let error_set: AttrSet = e.dirty.diff(e.clean).into_iter().collect();
                // cumulative rule fixes up to this round
                let mut rule_fixed = AttrSet::EMPTY;
                for r in e.outcome.rounds.iter().take(round) {
                    rule_fixed |= r.rule_fixed;
                }
                // rule-written attrs that actually changed the entered value
                for a in rule_fixed.iter() {
                    let final_v = e.outcome.tuple.get(a);
                    if final_v != e.dirty.get(a) {
                        changed_attrs += 1;
                        if final_v == e.clean.get(a) && error_set.contains(a) {
                            corrected_attrs += 1;
                        }
                    }
                }
                // tuple-level: rule-backed certain fix reached by `round`
                if e.dirty != e.clean
                    && e.outcome.rule_backed
                    && e.outcome.certain_at_round.is_some_and(|k| k <= round)
                    && &e.outcome.tuple == e.clean
                {
                    corrected_tuples += 1;
                }
            }
            RoundMetrics::from_counts(
                round,
                corrected_tuples,
                erroneous_tuples,
                corrected_attrs,
                changed_attrs,
                erroneous_attrs,
            )
        })
        .collect()
}

/// Attribute-level counts for a whole-relation repair (the `IncRep`
/// comparison): compare each repaired tuple against dirty input and
/// ground truth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChangeCounts {
    /// Attributes the repair modified.
    pub changed: usize,
    /// Modified attributes now equal to the truth.
    pub corrected: usize,
    /// Erroneous attributes in the input.
    pub erroneous: usize,
}

impl ChangeCounts {
    /// `recall_a` of the repair.
    pub fn recall(&self) -> f64 {
        ratio(self.corrected, self.erroneous)
    }

    /// `precision_a` of the repair.
    pub fn precision(&self) -> f64 {
        if self.changed == 0 {
            1.0
        } else {
            ratio(self.corrected, self.changed)
        }
    }

    /// F-measure of the repair.
    pub fn f_measure(&self) -> f64 {
        f_measure(self.recall(), self.precision())
    }
}

/// Accumulate [`ChangeCounts`] over `(dirty, repaired, clean)` triples.
pub fn evaluate_changes<'a, I>(triples: I) -> ChangeCounts
where
    I: IntoIterator<Item = (&'a Tuple, &'a Tuple, &'a Tuple)>,
{
    let mut counts = ChangeCounts::default();
    for (dirty, repaired, clean) in triples {
        counts.erroneous += dirty.diff(clean).len();
        for a in dirty.diff(repaired) {
            counts.changed += 1;
            if repaired.get(a) == clean.get(a) {
                counts.corrected += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certainfix::RoundReport;
    use certainfix_relation::{tuple, AttrId};

    fn outcome(
        tuple: Tuple,
        rule_fixed_by_round: Vec<AttrSet>,
        certain_at_round: Option<usize>,
        rule_backed: bool,
    ) -> FixOutcome {
        let total: AttrSet = rule_fixed_by_round
            .iter()
            .fold(AttrSet::EMPTY, |acc, s| acc | *s);
        FixOutcome {
            tuple,
            validated: AttrSet::full(3),
            rule_fixed: total,
            user_changed: AttrSet::EMPTY,
            certain: certain_at_round.is_some(),
            certain_at_round,
            rule_backed,
            gave_up: false,
            rounds: rule_fixed_by_round
                .into_iter()
                .map(|rf| RoundReport {
                    suggested: vec![],
                    asserted: vec![],
                    user_changed: AttrSet::EMPTY,
                    rule_fixed: rf,
                    validated_ok: true,
                })
                .collect(),
        }
    }

    fn aset(ids: &[u16]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn perfect_fix_counts_everything() {
        let clean = tuple!["a", "b", "c"];
        let dirty = tuple!["x", "b", "z"]; // errors on 0 and 2
        let out = outcome(clean.clone(), vec![aset(&[0, 2])], Some(1), true);
        let evals = [TupleEval {
            outcome: &out,
            dirty: &dirty,
            clean: &clean,
        }];
        let m = evaluate_rounds(&evals, 2);
        assert_eq!(m[0].recall_t, 1.0);
        assert_eq!(m[0].recall_a, 1.0);
        assert_eq!(m[0].precision_a, 1.0);
        assert_eq!(m[0].f_measure, 1.0);
        // cumulative: same at round 2
        assert_eq!(m[1].recall_t, 1.0);
    }

    #[test]
    fn user_only_fixes_do_not_count() {
        let clean = tuple!["a", "b", "c"];
        let dirty = tuple!["x", "b", "c"];
        // certain via user assertions only: no rule fired
        let out = outcome(clean.clone(), vec![AttrSet::EMPTY], Some(1), false);
        let evals = [TupleEval {
            outcome: &out,
            dirty: &dirty,
            clean: &clean,
        }];
        let m = evaluate_rounds(&evals, 1);
        assert_eq!(m[0].recall_t, 0.0, "not rule-backed");
        assert_eq!(m[0].recall_a, 0.0);
        assert_eq!(m[0].precision_a, 1.0, "nothing changed by rules");
    }

    #[test]
    fn recall_accumulates_over_rounds() {
        let clean = tuple!["a", "b", "c"];
        let dirty = tuple!["x", "y", "c"];
        // round 1 fixes attr 0, round 2 fixes attr 1; certain at round 2
        let out = outcome(clean.clone(), vec![aset(&[0]), aset(&[1])], Some(2), true);
        let evals = [TupleEval {
            outcome: &out,
            dirty: &dirty,
            clean: &clean,
        }];
        let m = evaluate_rounds(&evals, 2);
        assert_eq!(m[0].recall_t, 0.0);
        assert_eq!(m[0].recall_a, 0.5);
        assert_eq!(m[1].recall_t, 1.0);
        assert_eq!(m[1].recall_a, 1.0);
    }

    #[test]
    fn clean_tuples_do_not_inflate_recall() {
        let clean = tuple!["a", "b", "c"];
        let out = outcome(clean.clone(), vec![AttrSet::EMPTY], Some(1), true);
        let evals = [TupleEval {
            outcome: &out,
            dirty: &clean,
            clean: &clean,
        }];
        let m = evaluate_rounds(&evals, 1);
        // no erroneous tuples/attrs: recalls are 0/0 → 0
        assert_eq!(m[0].recall_t, 0.0);
        assert_eq!(m[0].recall_a, 0.0);
    }

    #[test]
    fn change_counts_for_repairs() {
        let dirty = tuple!["x", "b", "z"];
        let clean = tuple!["a", "b", "c"];
        // repaired: fixed attr 0 correctly, broke attr 1, missed attr 2
        let repaired = tuple!["a", "WRONG", "z"];
        let counts = evaluate_changes([(&dirty, &repaired, &clean)]);
        assert_eq!(
            counts,
            ChangeCounts {
                changed: 2,
                corrected: 1,
                erroneous: 2
            }
        );
        assert_eq!(counts.recall(), 0.5);
        assert_eq!(counts.precision(), 0.5);
        assert!((counts.f_measure() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sharded_evaluation_merges_to_the_whole_batch_row() {
        let clean = tuple!["a", "b", "c"];
        let dirty1 = tuple!["x", "b", "z"];
        let out1 = outcome(clean.clone(), vec![aset(&[0, 2])], Some(1), true);
        let dirty2 = tuple!["x", "y", "c"];
        let out2 = outcome(clean.clone(), vec![aset(&[0]), aset(&[1])], Some(2), true);
        let e1 = TupleEval {
            outcome: &out1,
            dirty: &dirty1,
            clean: &clean,
        };
        let e2 = TupleEval {
            outcome: &out2,
            dirty: &dirty2,
            clean: &clean,
        };
        // whole batch at once
        let whole = evaluate_rounds(
            &[
                TupleEval {
                    outcome: &out1,
                    dirty: &dirty1,
                    clean: &clean,
                },
                TupleEval {
                    outcome: &out2,
                    dirty: &dirty2,
                    clean: &clean,
                },
            ],
            2,
        );
        // one shard per tuple, merged
        let mut merged = evaluate_rounds(&[e1], 2);
        merge_round_series(&mut merged, &evaluate_rounds(&[e2], 2));
        assert_eq!(merged, whole, "merge must be bit-identical");
        assert_eq!(merged[0].erroneous_tuples, 2);
        assert_eq!(merged[1].corrected_tuples, 2);
    }

    #[test]
    #[should_panic(expected = "merging different rounds")]
    fn merging_mismatched_rounds_panics() {
        let mut a = RoundMetrics::from_counts(1, 0, 0, 0, 0, 0);
        let b = RoundMetrics::from_counts(2, 0, 0, 0, 0, 0);
        a.merge(&b);
    }

    #[test]
    fn empty_change_counts() {
        let counts = ChangeCounts::default();
        assert_eq!(counts.recall(), 0.0);
        assert_eq!(counts.precision(), 1.0);
        assert_eq!(counts.f_measure(), 0.0);
    }
}
