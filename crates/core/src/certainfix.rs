//! Algorithm `CertainFix` (Fig. 3 of the paper): the per-tuple
//! interaction loop.

use certainfix_reasoning::{suggest_with, Chase};
use certainfix_relation::{AttrId, AttrSet, MasterIndex, Tuple};
use certainfix_rules::{DependencyGraph, ProbeScratch, RulePlan, RuleSet};

use crate::oracle::UserOracle;
use crate::transfix::{transfix_block, transfix_with};

/// Configuration of the interaction loop.
#[derive(Clone, Debug)]
pub struct CertainFixConfig {
    /// Hard cap on interaction rounds (safety net; the loop normally
    /// terminates earlier — see [`FixOutcome::gave_up`]).
    pub max_rounds: usize,
    /// Stop interacting once no editing rule can contribute anything
    /// further (suggestions have degenerated to "type everything in").
    /// This is the behaviour the paper observes for tuples irrelevant
    /// to `Σ` and `Dm`: the process ends without a rule-backed certain
    /// fix.
    pub stop_when_rules_exhausted: bool,
}

impl Default for CertainFixConfig {
    fn default() -> Self {
        CertainFixConfig {
            max_rounds: 16,
            stop_when_rules_exhausted: true,
        }
    }
}

/// One round of interaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundReport {
    /// What the framework suggested.
    pub suggested: Vec<AttrId>,
    /// What the user asserted (⊆ suggestion, possibly strict).
    pub asserted: Vec<AttrId>,
    /// Asserted attributes whose value the user had to change.
    pub user_changed: AttrSet,
    /// Attributes written by rules in this round's `TransFix`.
    pub rule_fixed: AttrSet,
    /// Did the validation step confirm a unique fix for the asserted
    /// set? (`false` only under inconsistent master data.)
    pub validated_ok: bool,
}

/// Outcome of processing one tuple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixOutcome {
    /// The final tuple.
    pub tuple: Tuple,
    /// All validated attributes.
    pub validated: AttrSet,
    /// Union of attributes written by rules across rounds.
    pub rule_fixed: AttrSet,
    /// Union of attributes the user corrected (asserted with a value
    /// different from the tuple's).
    pub user_changed: AttrSet,
    /// Whether a certain fix was reached (all attributes validated).
    pub certain: bool,
    /// First round (1-based) after which every attribute was validated.
    pub certain_at_round: Option<usize>,
    /// `true` iff at least one rule fired — i.e. the fix is backed by
    /// master data rather than produced purely by user assertions.
    pub rule_backed: bool,
    /// `true` iff the loop stopped because no rule could contribute
    /// (tuple irrelevant to `Σ`/`Dm`), leaving attributes unvalidated.
    pub gave_up: bool,
    /// Per-round trace.
    pub rounds: Vec<RoundReport>,
}

impl FixOutcome {
    /// Attributes still not validated.
    pub fn unvalidated(&self, r_len: usize) -> AttrSet {
        AttrSet::full(r_len) - self.validated
    }
}

/// The interaction engine: borrows the precomputed structures and runs
/// the Fig. 3 loop for one tuple at a time.
///
/// The per-round `TransFix` pass and the validation chase route their
/// key probes through the compiled [`RulePlan`] (compiled from the same
/// `(rules, master)` pair — callers hand in the plan of the epoch the
/// master index belongs to); a worker-owned [`ProbeScratch`] passed to
/// [`run_scratch`](Self::run_scratch) makes the steady-state probe
/// layer allocation-free across all the tuples the worker drains. The
/// plain (plan-free) functions `transfix` / `suggest` survive only as
/// the test-suite's parity oracle.
pub struct CertainFix<'a> {
    rules: &'a RuleSet,
    master: &'a MasterIndex,
    graph: &'a DependencyGraph,
    plan: &'a RulePlan,
    config: CertainFixConfig,
}

impl<'a> CertainFix<'a> {
    /// Bind the engine. `plan` must be compiled against `master`'s
    /// generation.
    pub fn new(
        rules: &'a RuleSet,
        master: &'a MasterIndex,
        graph: &'a DependencyGraph,
        plan: &'a RulePlan,
        config: CertainFixConfig,
    ) -> CertainFix<'a> {
        CertainFix {
            rules,
            master,
            graph,
            plan,
            config,
        }
    }

    /// Run the loop on `dirty`, seeding the first round with
    /// `initial_suggestion` (normally the highest-quality certain
    /// region's `Z`). `next_suggestion` produces follow-up suggestions
    /// — plain [`suggest()`](certainfix_reasoning::suggest::suggest) for `CertainFix`, the BDD-served variant for
    /// `CertainFix+`; it receives the run's [`ProbeScratch`] so a
    /// plan-routed suggestion path reuses the same warm probe buffer.
    pub fn run<O, F>(
        &self,
        dirty: &Tuple,
        initial_suggestion: &[AttrId],
        oracle: &mut O,
        next_suggestion: F,
    ) -> FixOutcome
    where
        O: UserOracle + ?Sized,
        F: FnMut(&Tuple, AttrSet, &mut ProbeScratch) -> Option<Vec<AttrId>>,
    {
        self.run_scratch(
            dirty,
            initial_suggestion,
            oracle,
            next_suggestion,
            &mut ProbeScratch::new(),
        )
    }

    /// [`run`](Self::run) with a caller-owned probe scratch: the
    /// engine's workers hold one per thread so every tuple they repair
    /// reuses the same warm probe buffer.
    pub fn run_scratch<O, F>(
        &self,
        dirty: &Tuple,
        initial_suggestion: &[AttrId],
        oracle: &mut O,
        mut next_suggestion: F,
        scratch: &mut ProbeScratch,
    ) -> FixOutcome
    where
        O: UserOracle + ?Sized,
        F: FnMut(&Tuple, AttrSet, &mut ProbeScratch) -> Option<Vec<AttrId>>,
    {
        let r_len = self.rules.r_schema().len();
        let full = AttrSet::full(r_len);
        let chase = Chase::new(self.rules, self.master).with_plan(Some(self.plan));

        let mut tuple = dirty.clone();
        let mut validated = AttrSet::EMPTY;
        let mut rule_fixed = AttrSet::EMPTY;
        let mut user_changed = AttrSet::EMPTY;
        let mut rounds: Vec<RoundReport> = Vec::new();
        let mut suggestion: Vec<AttrId> = initial_suggestion
            .iter()
            .copied()
            .filter(|&a| !validated.contains(a))
            .collect();
        let mut gave_up = false;

        while validated != full && rounds.len() < self.config.max_rounds {
            if suggestion.is_empty() {
                // nothing left to suggest (degenerate); ask for the rest
                suggestion = (full - validated).to_vec();
            }
            // (2) user asserts S with correct values
            let asserted = oracle.assert_correct(&tuple, &suggestion);
            let mut round_user_changed = AttrSet::EMPTY;
            let mut asserted_attrs = Vec::with_capacity(asserted.len());
            for (a, v) in asserted {
                if tuple.get(a) != &v {
                    round_user_changed.insert(a);
                }
                tuple.set(a, v);
                asserted_attrs.push(a);
            }
            let new_validated = validated | asserted_attrs.iter().copied().collect::<AttrSet>();

            // validation: does t[Z′ ∪ S] lead to a unique fix?
            let validated_ok = chase.run_with(&tuple, new_validated, scratch).is_unique();

            // (3) TransFix propagates master values
            let out = transfix_with(
                self.rules,
                self.master,
                self.graph,
                self.plan,
                scratch,
                &tuple,
                new_validated,
            );
            tuple = out.tuple;
            validated = out.validated;
            rule_fixed |= out.fixed;
            user_changed |= round_user_changed;
            rounds.push(RoundReport {
                suggested: suggestion.clone(),
                asserted: asserted_attrs,
                user_changed: round_user_changed,
                rule_fixed: out.fixed,
                validated_ok,
            });

            if validated == full {
                break;
            }

            // (4) a new suggestion
            match next_suggestion(&tuple, validated, scratch) {
                Some(s) if !s.is_empty() => {
                    // Does any rule still have something to contribute?
                    // If the suggested set covers only itself (no rule
                    // coverage beyond Z′ ∪ S), the rules are exhausted.
                    let s_set: AttrSet = s.iter().copied().collect();
                    let rules_exhausted = {
                        let predicted = suggest_with(
                            self.rules,
                            self.master,
                            &tuple,
                            validated,
                            self.plan,
                            scratch,
                        )
                        .map(|sug| sug.covers)
                        .unwrap_or(validated);
                        predicted == validated | s_set && out.fixed.is_empty()
                    };
                    if rules_exhausted && self.config.stop_when_rules_exhausted {
                        gave_up = true;
                        break;
                    }
                    suggestion = s;
                }
                _ => {
                    gave_up = true;
                    break;
                }
            }
        }

        let certain = validated == full;
        FixOutcome {
            certain_at_round: certain.then_some(rounds.len()),
            rule_backed: !rule_fixed.is_empty(),
            tuple,
            validated,
            rule_fixed,
            user_changed,
            certain,
            gave_up,
            rounds,
        }
    }

    /// Run the Fig. 3 loop for a whole **block** of independent tuples
    /// in round lockstep, so each round's `TransFix` pass vectorizes
    /// its probes through [`transfix_block`] (key probes grouped,
    /// sort-grouped by value, pattern checks hoisted to a bitmask).
    /// `oracles[j]` answers for `dirty[j]`.
    ///
    /// **Bit-identity:** each tuple's per-round call sequence (oracle
    /// assertion, validation chase, `TransFix`, follow-up suggestion)
    /// is exactly the one [`run_scratch`](Self::run_scratch) performs
    /// for it alone, and the tuples are independent, so every
    /// [`FixOutcome`] — and the logical probe count — equals the
    /// single-tuple path at every block size.
    pub fn run_block_scratch<O, F>(
        &self,
        dirty: &[Tuple],
        initial_suggestion: &[AttrId],
        oracles: &mut [O],
        mut next_suggestion: F,
        scratch: &mut ProbeScratch,
    ) -> Vec<FixOutcome>
    where
        O: UserOracle,
        F: FnMut(&Tuple, AttrSet, &mut ProbeScratch) -> Option<Vec<AttrId>>,
    {
        debug_assert_eq!(dirty.len(), oracles.len());
        let r_len = self.rules.r_schema().len();
        let full = AttrSet::full(r_len);
        let chase = Chase::new(self.rules, self.master).with_plan(Some(self.plan));

        struct St {
            tuple: Tuple,
            validated: AttrSet,
            rule_fixed: AttrSet,
            user_changed: AttrSet,
            rounds: Vec<RoundReport>,
            suggestion: Vec<AttrId>,
            gave_up: bool,
            done: bool,
        }
        /// Round state carried from the assertion phase to the
        /// post-`TransFix` phase of one active tuple.
        struct Prep {
            j: usize,
            suggested: Vec<AttrId>,
            asserted: Vec<AttrId>,
            user_changed: AttrSet,
            new_validated: AttrSet,
            validated_ok: bool,
        }
        let mut sts: Vec<St> = dirty
            .iter()
            .map(|t| St {
                tuple: t.clone(),
                validated: AttrSet::EMPTY,
                rule_fixed: AttrSet::EMPTY,
                user_changed: AttrSet::EMPTY,
                rounds: Vec::new(),
                suggestion: initial_suggestion.to_vec(),
                gave_up: false,
                done: false,
            })
            .collect();

        loop {
            // (2) per tuple: suggestion top-up, user assertion, and the
            // validation chase — same order as the single-tuple loop
            let mut preps: Vec<Prep> = Vec::new();
            for (j, st) in sts.iter_mut().enumerate() {
                if st.done {
                    continue;
                }
                if st.validated == full || st.rounds.len() >= self.config.max_rounds {
                    st.done = true;
                    continue;
                }
                if st.suggestion.is_empty() {
                    st.suggestion = (full - st.validated).to_vec();
                }
                let asserted = oracles[j].assert_correct(&st.tuple, &st.suggestion);
                let mut round_user_changed = AttrSet::EMPTY;
                let mut asserted_attrs = Vec::with_capacity(asserted.len());
                for (a, v) in asserted {
                    if st.tuple.get(a) != &v {
                        round_user_changed.insert(a);
                    }
                    st.tuple.set(a, v);
                    asserted_attrs.push(a);
                }
                let new_validated =
                    st.validated | asserted_attrs.iter().copied().collect::<AttrSet>();
                let validated_ok = chase
                    .run_with(&st.tuple, new_validated, scratch)
                    .is_unique();
                preps.push(Prep {
                    j,
                    suggested: st.suggestion.clone(),
                    asserted: asserted_attrs,
                    user_changed: round_user_changed,
                    new_validated,
                    validated_ok,
                });
            }
            if preps.is_empty() {
                break;
            }

            // (3) one vectorized TransFix pass over the active tuples
            let items: Vec<(&Tuple, AttrSet)> = preps
                .iter()
                .map(|p| (&sts[p.j].tuple, p.new_validated))
                .collect();
            let outs = transfix_block(
                self.rules,
                self.master,
                self.graph,
                self.plan,
                scratch,
                &items,
            );
            drop(items);

            // (4) per tuple: absorb the fixes and pick the next round's
            // suggestion
            for (p, out) in preps.into_iter().zip(outs) {
                let st = &mut sts[p.j];
                st.tuple = out.tuple;
                st.validated = out.validated;
                st.rule_fixed |= out.fixed;
                st.user_changed |= p.user_changed;
                st.rounds.push(RoundReport {
                    suggested: p.suggested,
                    asserted: p.asserted,
                    user_changed: p.user_changed,
                    rule_fixed: out.fixed,
                    validated_ok: p.validated_ok,
                });
                if st.validated == full {
                    st.done = true;
                    continue;
                }
                match next_suggestion(&st.tuple, st.validated, scratch) {
                    Some(s) if !s.is_empty() => {
                        let s_set: AttrSet = s.iter().copied().collect();
                        let rules_exhausted = {
                            let predicted = suggest_with(
                                self.rules,
                                self.master,
                                &st.tuple,
                                st.validated,
                                self.plan,
                                scratch,
                            )
                            .map(|sug| sug.covers)
                            .unwrap_or(st.validated);
                            predicted == st.validated | s_set && out.fixed.is_empty()
                        };
                        if rules_exhausted && self.config.stop_when_rules_exhausted {
                            st.gave_up = true;
                            st.done = true;
                        } else {
                            st.suggestion = s;
                        }
                    }
                    _ => {
                        st.gave_up = true;
                        st.done = true;
                    }
                }
            }
        }

        sts.into_iter()
            .map(|st| {
                let certain = st.validated == full;
                FixOutcome {
                    certain_at_round: certain.then_some(st.rounds.len()),
                    rule_backed: !st.rule_fixed.is_empty(),
                    tuple: st.tuple,
                    validated: st.validated,
                    rule_fixed: st.rule_fixed,
                    user_changed: st.user_changed,
                    certain,
                    gave_up: st.gave_up,
                    rounds: st.rounds,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimulatedUser;
    use certainfix_reasoning::suggest;
    use certainfix_relation::{tuple, Relation, Schema, Value};
    use certainfix_rules::parse_rules;
    use std::sync::Arc;

    fn fig1() -> (Arc<Schema>, RuleSet, MasterIndex, DependencyGraph, RulePlan) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        let rules = parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            phi4: match AC ~ AC set city := city when AC = '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(
                rm,
                vec![
                    tuple![
                        "Robert",
                        "Brady",
                        "131",
                        "6884563",
                        "079172485",
                        "51 Elm Row",
                        "Edi",
                        "EH7 4AH",
                        "11/11/55",
                        "M"
                    ],
                    tuple![
                        "Mark",
                        "Smith",
                        "020",
                        "6884563",
                        "075568485",
                        "20 Baker St.",
                        "Lnd",
                        "NW1 6XE",
                        "25/12/67",
                        "M"
                    ],
                ],
            )
            .unwrap(),
        ));
        let graph = DependencyGraph::new(&rules);
        let plan = RulePlan::compile(&rules, &master);
        (r, rules, master, graph, plan)
    }

    fn ids(r: &Schema, names: &[&str]) -> Vec<AttrId> {
        names.iter().map(|n| r.attr(n).unwrap()).collect()
    }

    /// t1's ground truth: Robert Brady's record from s1 + his item.
    fn t1_clean() -> Tuple {
        tuple![
            "Robert",
            "Brady",
            "131",
            "079172485",
            2,
            "51 Elm Row",
            "Edi",
            "EH7 4AH",
            "CD"
        ]
    }

    fn t1_dirty() -> Tuple {
        tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ]
    }

    #[test]
    fn one_round_certain_fix_for_master_backed_tuple() {
        let (r, rules, master, graph, plan) = fig1();
        let engine = CertainFix::new(&rules, &master, &graph, &plan, CertainFixConfig::default());
        let mut user = SimulatedUser::new(t1_clean());
        let outcome = engine.run(
            &t1_dirty(),
            &ids(&r, &["zip", "phn", "type", "item"]),
            &mut user,
            |t, validated, _| suggest(&rules, &master, t, validated).map(|s| s.attrs),
        );
        assert!(outcome.certain);
        assert_eq!(outcome.certain_at_round, Some(1));
        assert!(outcome.rule_backed);
        assert_eq!(outcome.tuple, t1_clean());
        // fn, ln, AC, str, city were rule-fixed
        assert_eq!(outcome.rule_fixed.len(), 5);
        // the user changed nothing: suggested attrs were already right
        assert!(outcome.user_changed.is_empty());
        assert!(!outcome.gave_up);
    }

    #[test]
    fn two_rounds_with_partial_initial_region() {
        // Start from Z = {zip} only: round 1 fixes AC/str/city, then the
        // suggestion pulls in phn/type/item and round 2 completes.
        let (r, rules, master, graph, plan) = fig1();
        let engine = CertainFix::new(&rules, &master, &graph, &plan, CertainFixConfig::default());
        let mut user = SimulatedUser::new(t1_clean());
        let outcome = engine.run(
            &t1_dirty(),
            &ids(&r, &["zip"]),
            &mut user,
            |t, validated, _| suggest(&rules, &master, t, validated).map(|s| s.attrs),
        );
        assert!(outcome.certain);
        assert_eq!(outcome.certain_at_round, Some(2));
        assert_eq!(outcome.tuple, t1_clean());
        assert_eq!(outcome.rounds.len(), 2);
        // round 1 fixed AC/str/city via ϕ1
        assert_eq!(outcome.rounds[0].rule_fixed.len(), 3);
        // round 2's suggestion included phn and type
        let sug2 = &outcome.rounds[1].suggested;
        assert!(sug2.contains(&r.attr("phn").unwrap()));
        assert!(sug2.contains(&r.attr("type").unwrap()));
    }

    #[test]
    fn user_corrections_are_tracked() {
        // Dirty zip: the user must change it during the assertion.
        let (r, rules, master, graph, plan) = fig1();
        let engine = CertainFix::new(&rules, &master, &graph, &plan, CertainFixConfig::default());
        let mut dirty = t1_dirty();
        dirty.set(r.attr("zip").unwrap(), Value::str("WRONG"));
        let mut user = SimulatedUser::new(t1_clean());
        let outcome = engine.run(
            &dirty,
            &ids(&r, &["zip", "phn", "type", "item"]),
            &mut user,
            |t, validated, _| suggest(&rules, &master, t, validated).map(|s| s.attrs),
        );
        assert!(outcome.certain);
        assert!(outcome.user_changed.contains(r.attr("zip").unwrap()));
        assert_eq!(outcome.tuple, t1_clean());
    }

    #[test]
    fn unmatched_tuple_gives_up_without_certain_fix() {
        // An entity absent from Dm: no rule can ever fire; the loop
        // stops as rule-exhausted instead of bothering the user with
        // every attribute.
        let (r, rules, master, graph, plan) = fig1();
        let engine = CertainFix::new(&rules, &master, &graph, &plan, CertainFixConfig::default());
        let clean = tuple![
            "Tim",
            "Poth",
            "990",
            "9978543",
            1,
            "Baker St.",
            "Gla",
            "XX9 9XX",
            "BOOK"
        ];
        let mut dirty = clean.clone();
        dirty.set(r.attr("city").unwrap(), Value::str("Glasgo"));
        let mut user = SimulatedUser::new(clean);
        let outcome = engine.run(
            &dirty,
            &ids(&r, &["zip", "phn", "type", "item"]),
            &mut user,
            |t, validated, _| suggest(&rules, &master, t, validated).map(|s| s.attrs),
        );
        assert!(!outcome.certain);
        assert!(outcome.gave_up);
        assert!(!outcome.rule_backed);
        assert!(outcome.rule_fixed.is_empty());
        assert!(outcome.rounds.len() <= 3);
    }

    #[test]
    fn fully_user_driven_when_exhaustion_stop_disabled() {
        let (r, rules, master, graph, plan) = fig1();
        let config = CertainFixConfig {
            stop_when_rules_exhausted: false,
            ..Default::default()
        };
        let engine = CertainFix::new(&rules, &master, &graph, &plan, config);
        let clean = tuple![
            "Tim",
            "Poth",
            "990",
            "9978543",
            1,
            "Baker St.",
            "Gla",
            "XX9 9XX",
            "BOOK"
        ];
        let mut user = SimulatedUser::new(clean.clone());
        let outcome = engine.run(
            &clean,
            &ids(&r, &["zip", "phn", "type", "item"]),
            &mut user,
            |t, validated, _| suggest(&rules, &master, t, validated).map(|s| s.attrs),
        );
        // the user eventually validates everything by hand
        assert!(outcome.certain);
        assert!(!outcome.rule_backed, "no rule fired");
        assert_eq!(outcome.tuple, clean);
    }

    /// The round-lockstep block loop is bit-identical to running the
    /// single-tuple loop per tuple — outcomes, round traces, and the
    /// logical probe count — at every block size, across certain /
    /// gave-up / user-corrected tuples.
    #[test]
    fn block_loop_matches_single_tuple_loop() {
        use certainfix_reasoning::suggest_with;
        use certainfix_rules::ProbeScratch;
        let (r, rules, master, graph, plan) = fig1();
        let engine = CertainFix::new(&rules, &master, &graph, &plan, CertainFixConfig::default());
        let unmatched_clean = tuple![
            "Tim",
            "Poth",
            "990",
            "9978543",
            1,
            "Baker St.",
            "Gla",
            "XX9 9XX",
            "BOOK"
        ];
        let mut unmatched_dirty = unmatched_clean.clone();
        unmatched_dirty.set(r.attr("city").unwrap(), Value::str("Glasgo"));
        let mut wrong_zip = t1_dirty();
        wrong_zip.set(r.attr("zip").unwrap(), Value::str("WRONG"));
        let dirties = [t1_dirty(), unmatched_dirty, wrong_zip, t1_clean()];
        let cleans = [t1_clean(), unmatched_clean, t1_clean(), t1_clean()];
        let init = ids(&r, &["zip", "phn", "type", "item"]);
        let next = |t: &Tuple, v: AttrSet, sc: &mut ProbeScratch| {
            suggest_with(&rules, &master, t, v, &plan, sc).map(|s| s.attrs)
        };

        let mut single = ProbeScratch::new();
        let want: Vec<FixOutcome> = dirties
            .iter()
            .zip(&cleans)
            .map(|(d, c)| {
                let mut user = SimulatedUser::new(c.clone());
                engine.run_scratch(d, &init, &mut user, next, &mut single)
            })
            .collect();
        let (want_probes, _, _) = single.take_counters();

        for size in [1, 2, 4] {
            let mut scratch = ProbeScratch::new();
            let got: Vec<FixOutcome> = dirties
                .chunks(size)
                .zip(cleans.chunks(size))
                .flat_map(|(ds, cs)| {
                    let mut users: Vec<SimulatedUser> =
                        cs.iter().map(|c| SimulatedUser::new(c.clone())).collect();
                    engine.run_block_scratch(ds, &init, &mut users, next, &mut scratch)
                })
                .collect();
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.tuple, b.tuple, "block size {size}");
                assert_eq!(a.validated, b.validated);
                assert_eq!(a.rule_fixed, b.rule_fixed);
                assert_eq!(a.user_changed, b.user_changed);
                assert_eq!(a.certain, b.certain);
                assert_eq!(a.certain_at_round, b.certain_at_round);
                assert_eq!(a.rule_backed, b.rule_backed);
                assert_eq!(a.gave_up, b.gave_up);
                assert_eq!(a.rounds.len(), b.rounds.len());
                for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
                    assert_eq!(ra.suggested, rb.suggested);
                    assert_eq!(ra.asserted, rb.asserted);
                    assert_eq!(ra.user_changed, rb.user_changed);
                    assert_eq!(ra.rule_fixed, rb.rule_fixed);
                    assert_eq!(ra.validated_ok, rb.validated_ok);
                }
            }
            let (probes, _, _) = scratch.take_counters();
            assert_eq!(probes, want_probes, "logical probes at block size {size}");
        }
    }

    #[test]
    fn rounds_are_bounded() {
        let (r, rules, master, graph, plan) = fig1();
        let config = CertainFixConfig {
            max_rounds: 2,
            stop_when_rules_exhausted: false,
        };
        let engine = CertainFix::new(&rules, &master, &graph, &plan, config);
        let clean = tuple![
            "Tim",
            "Poth",
            "990",
            "9978543",
            1,
            "Baker St.",
            "Gla",
            "XX9 9XX",
            "BOOK"
        ];
        // a user who only ever confirms one attribute per round
        let mut user = SimulatedUser::with_compliance(clean.clone(), 0.0, 3);
        let outcome = engine.run(&clean, &ids(&r, &["zip"]), &mut user, |t, validated, _| {
            suggest(&rules, &master, t, validated).map(|s| s.attrs)
        });
        assert_eq!(outcome.rounds.len(), 2);
        assert!(!outcome.certain);
    }
}
