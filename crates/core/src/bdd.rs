//! The BDD suggestion cache of Sect. 5.2 (`Suggest+`, Figs. 7–8).
//!
//! Computing a suggestion runs the greedy set-cover loop of
//! [`certainfix_reasoning::suggest()`](certainfix_reasoning::suggest::suggest); *checking* whether a previously
//! computed suggestion still works for a new tuple is one closure
//! ([`certainfix_reasoning::is_suggestion`]). The cache is a binary
//! decision diagram: each node holds a cached suggestion; the `true`
//! edge leads to the node consulted after this suggestion was used, the
//! `false` edge to the next candidate when the check fails. Nodes are
//! structurally deduplicated ("compression"), turning the tree into a
//! DAG.
//!
//! A [`Cursor`] tracks one tuple's walk through the diagram across its
//! interaction rounds, resuming where it left off — mirroring "in the
//! next round of interaction, checking resumes at node u".

use certainfix_reasoning::{is_suggestion, is_suggestion_with, suggest, suggest_with};
use certainfix_relation::{AttrId, AttrSet, FxHashMap, MasterIndex, Tuple};
use certainfix_rules::{ProbeScratch, RulePlan, RuleSet};

use crate::sharedcache::SharedSuggestionCache;

#[derive(Clone, Debug)]
struct Node {
    suggestion: Vec<AttrId>,
    /// Next node after this suggestion was *used*.
    hi: Option<usize>,
    /// Next candidate when the check *fails*.
    lo: Option<usize>,
}

/// Where a cursor sits: about to consult `slot` (an edge of `parent`,
/// or the root).
#[derive(Clone, Copy, Debug, Default)]
pub struct Cursor {
    at: Option<CursorAt>,
}

#[derive(Clone, Copy, Debug)]
enum CursorAt {
    Root,
    Hi(usize),
    Lo(usize),
}

impl Cursor {
    /// A cursor positioned at the diagram's root.
    pub fn start() -> Cursor {
        Cursor {
            at: Some(CursorAt::Root),
        }
    }
}

/// Cache statistics (Fig. 12's latency difference comes from the hit
/// rate reported here).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Suggestions served by re-checking a cached node.
    pub hits: u64,
    /// Suggestions computed from scratch (and inserted).
    pub misses: u64,
    /// Cached-node checks that failed (walked to the `false` edge).
    pub failed_checks: u64,
    /// Nodes reused through structural deduplication.
    pub dedup_reuses: u64,
    /// Local misses answered by the [`SharedSuggestionCache`] instead
    /// of a fresh computation.
    pub shared_hits: u64,
    /// Local misses the shared cache could not answer either (computed
    /// fresh and published).
    pub shared_misses: u64,
}

impl BddStats {
    /// Fold another cache's counters into this one (used when merging
    /// per-worker caches after a parallel batch repair).
    pub fn merge(&mut self, other: &BddStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.failed_checks += other.failed_checks;
        self.dedup_reuses += other.dedup_reuses;
        self.shared_hits += other.shared_hits;
        self.shared_misses += other.shared_misses;
    }
}

/// The suggestion BDD.
#[derive(Debug, Default)]
pub struct SuggestionBdd {
    nodes: Vec<Node>,
    root: Option<usize>,
    /// structural dedup: suggestion attr-set → node index
    interned: FxHashMap<u64, usize>,
    stats: BddStats,
}

impl SuggestionBdd {
    /// An empty cache.
    pub fn new() -> SuggestionBdd {
        SuggestionBdd::default()
    }

    /// Number of nodes (after compression).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> BddStats {
        self.stats
    }

    fn slot(&mut self, at: CursorAt) -> &mut Option<usize> {
        match at {
            CursorAt::Root => &mut self.root,
            CursorAt::Hi(i) => &mut self.nodes[i].hi,
            CursorAt::Lo(i) => &mut self.nodes[i].lo,
        }
    }

    fn intern(&mut self, suggestion: &[AttrId]) -> usize {
        let key = suggestion
            .iter()
            .fold(AttrSet::EMPTY, |mut s, &a| {
                s.insert(a);
                s
            })
            .bits();
        if let Some(&i) = self.interned.get(&key) {
            self.stats.dedup_reuses += 1;
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(Node {
            suggestion: suggestion.to_vec(),
            hi: None,
            lo: None,
        });
        self.interned.insert(key, i);
        i
    }

    /// `Suggest+` (Fig. 8): serve the next suggestion for `t` given the
    /// validated set, walking (and growing) the diagram from `cursor`.
    /// Returns `None` when every attribute is validated.
    pub fn suggest_plus(
        &mut self,
        rules: &RuleSet,
        master: &MasterIndex,
        t: &Tuple,
        validated: AttrSet,
        cursor: &mut Cursor,
    ) -> Option<Vec<AttrId>> {
        self.suggest_plus_with(
            rules,
            master,
            t,
            validated,
            cursor,
            None,
            None,
            &mut ProbeScratch::new(),
        )
    }

    /// [`suggest_plus`](Self::suggest_plus) with an optional
    /// [`SharedSuggestionCache`] behind the local diagram — when the
    /// walk ends in a miss, candidates other workers pooled for the
    /// same validated set are re-checked before falling back to
    /// [`certainfix_reasoning::suggest()`](certainfix_reasoning::suggest()); fresh results are
    /// published for other workers — and an optional compiled
    /// [`RulePlan`] plus a caller-owned [`ProbeScratch`] routing the
    /// checks' and computations' master probes.
    #[allow(clippy::too_many_arguments)]
    pub fn suggest_plus_with(
        &mut self,
        rules: &RuleSet,
        master: &MasterIndex,
        t: &Tuple,
        validated: AttrSet,
        cursor: &mut Cursor,
        shared: Option<&SharedSuggestionCache>,
        plan: Option<&RulePlan>,
        scratch: &mut ProbeScratch,
    ) -> Option<Vec<AttrId>> {
        if validated == AttrSet::full(rules.r_schema().len()) {
            return None;
        }
        let mut at = cursor.at.unwrap_or(CursorAt::Root);
        // Structural dedup makes the diagram a DAG whose false-edges may
        // close a cycle; remember visited nodes to stay terminating.
        let mut visited: Vec<usize> = Vec::new();
        loop {
            match *self.slot(at) {
                Some(i) if !visited.contains(&i) => {
                    visited.push(i);
                    let cached = self.nodes[i].suggestion.clone();
                    let still_valid = match plan {
                        Some(p) => {
                            is_suggestion_with(rules, master, t, validated, &cached, p, scratch)
                        }
                        None => is_suggestion(rules, master, t, validated, &cached),
                    };
                    if still_valid {
                        self.stats.hits += 1;
                        cursor.at = Some(CursorAt::Hi(i));
                        return Some(cached);
                    }
                    self.stats.failed_checks += 1;
                    at = CursorAt::Lo(i);
                }
                Some(_) => {
                    // walked into a false-edge cycle: every cached
                    // candidate on this path failed; compute fresh
                    // without extending the diagram.
                    let computed =
                        self.compute_or_shared(rules, master, t, validated, shared, plan, scratch)?;
                    self.stats.misses += 1;
                    cursor.at = Some(CursorAt::Root);
                    return Some(computed);
                }
                None => {
                    let computed =
                        self.compute_or_shared(rules, master, t, validated, shared, plan, scratch)?;
                    self.stats.misses += 1;
                    let node = self.intern(&computed);
                    // interning may return a node already on this walk;
                    // linking it would close a cycle on the very path we
                    // just failed through — leave the slot empty then.
                    if !visited.contains(&node) {
                        *self.slot(at) = Some(node);
                    }
                    cursor.at = Some(CursorAt::Hi(node));
                    return Some(computed);
                }
            }
        }
    }

    /// The diagram-miss fallback: the shared cache when one is wired
    /// in (counting `shared_hits` / `shared_misses`), a fresh
    /// computation otherwise. Either way the returned suggestion is
    /// valid for `(t, validated)` — shared candidates are re-checked
    /// before being served.
    #[allow(clippy::too_many_arguments)]
    fn compute_or_shared(
        &mut self,
        rules: &RuleSet,
        master: &MasterIndex,
        t: &Tuple,
        validated: AttrSet,
        shared: Option<&SharedSuggestionCache>,
        plan: Option<&RulePlan>,
        scratch: &mut ProbeScratch,
    ) -> Option<Vec<AttrId>> {
        match shared {
            Some(cache) => {
                let mut hit = false;
                let computed = cache
                    .suggest_through_with(rules, master, t, validated, &mut hit, plan, scratch);
                if hit {
                    self.stats.shared_hits += 1;
                } else {
                    self.stats.shared_misses += 1;
                }
                computed
            }
            None => match plan {
                Some(p) => suggest_with(rules, master, t, validated, p, scratch),
                None => suggest(rules, master, t, validated),
            }
            .map(|s| s.attrs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{tuple, Relation, Schema};
    use certainfix_rules::parse_rules;
    use std::sync::Arc;

    fn fig1() -> (Arc<Schema>, RuleSet, MasterIndex) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        let rules = parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(
                rm,
                vec![
                    tuple![
                        "Robert",
                        "Brady",
                        "131",
                        "6884563",
                        "079172485",
                        "51 Elm Row",
                        "Edi",
                        "EH7 4AH",
                        "11/11/55",
                        "M"
                    ],
                    tuple![
                        "Mark",
                        "Smith",
                        "020",
                        "6884563",
                        "075568485",
                        "20 Baker St.",
                        "Lnd",
                        "NW1 6XE",
                        "25/12/67",
                        "M"
                    ],
                ],
            )
            .unwrap(),
        ));
        (r, rules, master)
    }

    fn attrs(r: &Schema, names: &[&str]) -> AttrSet {
        names.iter().map(|n| r.attr(n).unwrap()).collect()
    }

    /// t1 after its first TransFix (Example 13's state).
    fn t1_fixed() -> Tuple {
        tuple![
            "Bob",
            "Brady",
            "131",
            "079172485",
            2,
            "51 Elm Row",
            "Edi",
            "EH7 4AH",
            "CD"
        ]
    }

    #[test]
    fn first_call_misses_then_identical_tuple_hits() {
        let (r, rules, master) = fig1();
        let mut bdd = SuggestionBdd::new();
        let z = attrs(&r, &["zip", "AC", "str", "city"]);

        let mut c1 = Cursor::start();
        let s1 = bdd
            .suggest_plus(&rules, &master, &t1_fixed(), z, &mut c1)
            .unwrap();
        assert_eq!(bdd.stats().misses, 1);
        assert_eq!(bdd.stats().hits, 0);
        assert_eq!(bdd.len(), 1);

        // a second tuple in the same state is served from the cache
        let mut c2 = Cursor::start();
        let s2 = bdd
            .suggest_plus(&rules, &master, &t1_fixed(), z, &mut c2)
            .unwrap();
        assert_eq!(s1, s2);
        assert_eq!(bdd.stats().hits, 1);
        assert_eq!(bdd.stats().misses, 1);
        assert_eq!(bdd.len(), 1, "no new node");
    }

    #[test]
    fn failed_check_walks_false_edge_and_inserts() {
        let (r, rules, master) = fig1();
        let mut bdd = SuggestionBdd::new();
        // Seed the cache with the Example 13 suggestion.
        let z = attrs(&r, &["zip", "AC", "str", "city"]);
        let mut c = Cursor::start();
        bdd.suggest_plus(&rules, &master, &t1_fixed(), z, &mut c)
            .unwrap();

        // A tuple in a different state: the cached suggestion overlaps
        // its validated set, so the check fails and a new node grows on
        // the false edge.
        let z2 = attrs(&r, &["zip", "AC", "str", "city", "phn", "type"]);
        let mut c2 = Cursor::start();
        let s2 = bdd
            .suggest_plus(&rules, &master, &t1_fixed(), z2, &mut c2)
            .unwrap();
        assert!(!s2.is_empty());
        assert_eq!(bdd.stats().failed_checks, 1);
        assert_eq!(bdd.stats().misses, 2);
        assert_eq!(bdd.len(), 2);
    }

    #[test]
    fn structural_dedup_reuses_nodes() {
        let (r, rules, master) = fig1();
        let mut bdd = SuggestionBdd::new();
        let z = attrs(&r, &["zip", "AC", "str", "city"]);
        let z2 = attrs(&r, &["zip", "AC", "str", "city", "phn", "type"]);

        // grow: root → A (for z), then false-edge → B (for z2)
        let mut c = Cursor::start();
        bdd.suggest_plus(&rules, &master, &t1_fixed(), z, &mut c)
            .unwrap();
        let mut c2 = Cursor::start();
        let s_b = bdd
            .suggest_plus(&rules, &master, &t1_fixed(), z2, &mut c2)
            .unwrap();

        // a third walk that reaches an empty slot but computes the same
        // suggestion as B must reuse B's node
        let mut c3 = Cursor::start();
        // advance past the root hit first (same state as B)
        let s_b2 = bdd
            .suggest_plus(&rules, &master, &t1_fixed(), z2, &mut c3)
            .unwrap();
        assert_eq!(s_b, s_b2);
        // the second z2 walk HIT the cached node rather than interning
        assert!(bdd.stats().hits >= 1);
        assert!(bdd.len() <= 2);
    }

    #[test]
    fn cursor_resumes_mid_diagram() {
        let (r, rules, master) = fig1();
        let mut bdd = SuggestionBdd::new();
        let z = attrs(&r, &["zip", "AC", "str", "city"]);
        let mut cursor = Cursor::start();
        let s1 = bdd
            .suggest_plus(&rules, &master, &t1_fixed(), z, &mut cursor)
            .unwrap();
        // simulate the user asserting s1: validated grows
        let z2 = z | s1.iter().copied().collect::<AttrSet>();
        // full? then no suggestion
        if z2 == AttrSet::full(r.len()) {
            assert!(bdd
                .suggest_plus(&rules, &master, &t1_fixed(), z2, &mut cursor)
                .is_none());
        } else {
            let s2 = bdd
                .suggest_plus(&rules, &master, &t1_fixed(), z2, &mut cursor)
                .unwrap();
            assert!(s1.iter().all(|a| !s2.contains(a)));
        }
    }

    #[test]
    fn dedup_cycles_terminate() {
        // Regression: structural dedup can close a false-edge cycle
        // (A.lo → B, B.lo → A). A walk where every cached check fails
        // must terminate by computing fresh instead of spinning.
        let (r, rules, master) = fig1();
        let mut bdd = SuggestionBdd::new();
        // Manufacture the cycle directly.
        let phn = r.attr("phn").unwrap();
        let item = r.attr("item").unwrap();
        let a = bdd.intern(&[phn]);
        let b = bdd.intern(&[item]);
        bdd.root = Some(a);
        bdd.nodes[a].lo = Some(b);
        bdd.nodes[b].lo = Some(a);
        // A state where both cached suggestions fail the check (phn and
        // item are already validated) but a real suggestion exists.
        let z = attrs(&r, &["phn", "item", "zip"]);
        let mut cursor = Cursor::start();
        let s = bdd
            .suggest_plus(&rules, &master, &t1_fixed(), z, &mut cursor)
            .expect("must terminate and produce a suggestion");
        assert!(!s.is_empty());
        assert!(s.iter().all(|a| !z.contains(*a)));
        assert_eq!(bdd.stats().failed_checks, 2);
        assert_eq!(bdd.stats().misses, 1);
    }

    #[test]
    fn shared_cache_answers_another_workers_miss() {
        let (r, rules, master) = fig1();
        let shared = SharedSuggestionCache::new();
        let z = attrs(&r, &["zip", "AC", "str", "city"]);

        // worker 1: empty diagram, empty shared cache — computes fresh
        // and publishes
        let mut bdd1 = SuggestionBdd::new();
        let mut c1 = Cursor::start();
        let s1 = bdd1
            .suggest_plus_with(
                &rules,
                &master,
                &t1_fixed(),
                z,
                &mut c1,
                Some(&shared),
                None,
                &mut ProbeScratch::new(),
            )
            .unwrap();
        assert_eq!(bdd1.stats().shared_misses, 1);
        assert_eq!(bdd1.stats().shared_hits, 0);
        assert_eq!(shared.len(), 1);

        // worker 2: its own empty diagram misses locally, but the
        // shared cache answers with the exact same suggestion
        let mut bdd2 = SuggestionBdd::new();
        let mut c2 = Cursor::start();
        let s2 = bdd2
            .suggest_plus_with(
                &rules,
                &master,
                &t1_fixed(),
                z,
                &mut c2,
                Some(&shared),
                None,
                &mut ProbeScratch::new(),
            )
            .unwrap();
        assert_eq!(s1, s2, "the pooled candidate passes the check");
        assert_eq!(bdd2.stats().shared_hits, 1);
        assert_eq!(bdd2.stats().shared_misses, 0);
        assert_eq!(shared.stats().hits, 1);

        // merged BddStats carry both workers' shared counters
        let mut merged = bdd1.stats();
        merged.merge(&bdd2.stats());
        assert_eq!(merged.shared_hits, 1);
        assert_eq!(merged.shared_misses, 1);
    }

    #[test]
    fn fully_validated_returns_none() {
        let (r, rules, master) = fig1();
        let mut bdd = SuggestionBdd::new();
        let mut cursor = Cursor::start();
        assert!(bdd
            .suggest_plus(
                &rules,
                &master,
                &t1_fixed(),
                AttrSet::full(r.len()),
                &mut cursor
            )
            .is_none());
        assert!(bdd.is_empty());
    }
}
