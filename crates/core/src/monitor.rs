//! The data-monitoring façade (Fig. 2): precomputation + per-tuple
//! processing for `CertainFix` and `CertainFix+`.
//!
//! [`MonitorStats`] defined here is the statistics currency of every
//! layer above — engine workers, sessions, and the multi-session
//! [`RepairService`](crate::RepairService) all account in it and rely
//! on its merge being an order-independent sum (invariant D2 of
//! `DETERMINISM.md` at the repository root).

use std::sync::Arc;
use std::time::Duration;

use certainfix_relation::{MasterDelta, Relation, RelationError, Tuple};
use certainfix_rules::RuleSet;

use crate::bdd::SuggestionBdd;
use crate::certainfix::{CertainFixConfig, FixOutcome};
use crate::engine::{BatchRepairEngine, MasterEpoch, RepairContext};
use crate::oracle::UserOracle;
use crate::session::TupleSource;

/// Which precomputed region seeds the first suggestion (Exp-1(2)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InitialRegion {
    /// The highest-quality region (CRHQ).
    #[default]
    Best,
    /// The median-quality region (CRMQ).
    Median,
}

/// Aggregate processing statistics.
///
/// `tuples` / `certain` / `rounds` / `plan_probes` /
/// `plan_fallbacks` are deterministic counts: merging per-worker
/// instances reproduces the sequential run's values exactly. `elapsed`, `interner_syms`, `probe_allocs`
/// (each worker warms its own scratch buffer), and the shared-cache
/// probe counters are wall-clock/scheduling observables and are
/// excluded from that guarantee.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Tuples processed.
    pub tuples: u64,
    /// Tuples that reached a certain fix.
    pub certain: u64,
    /// Total interaction rounds.
    pub rounds: u64,
    /// Wall-clock time spent inside `process`.
    pub elapsed: Duration,
    /// High-water mark of [`certainfix_relation::Interner::len`] on the
    /// global interner, sampled after each processed tuple — the
    /// ROADMAP monitoring hook for the append-only interner's growth
    /// under streaming ingest.
    pub interner_syms: u64,
    /// Probes of the
    /// [`SharedSuggestionCache`](crate::SharedSuggestionCache)
    /// answered by a pooled candidate (0 when the shared cache is
    /// off).
    pub shared_hits: u64,
    /// Probes of the shared cache that fell through to a fresh
    /// computation.
    pub shared_misses: u64,
    /// Shared-cache candidates evicted because a master delta tainted
    /// the attributes they cover. Unlike the probe counters this is not
    /// ticked per worker: it is a monotone snapshot of the engine-global
    /// cache, sampled after each batch, so [`merge`](Self::merge) takes
    /// the maximum (like the interner watermark) rather than summing.
    /// A scheduling observable, exempt from the D2/D12 bit-identity
    /// guarantee like `shared_hits` / `shared_misses`.
    pub shared_evicted_delta: u64,
    /// Shared-cache candidates evicted by second-chance clock sweeps at
    /// the capacity caps (same snapshot/merge semantics as
    /// `shared_evicted_delta`).
    pub shared_evicted_lru: u64,
    /// Shared-cache candidates restamped to a newer master generation
    /// after surviving a delta or passing a post-delta reuse check
    /// (same snapshot/merge semantics as `shared_evicted_delta`).
    pub shared_revalidated: u64,
    /// Shared-cache publishes that found a capacity cap full — counted
    /// in both hygiene modes, so insert-only silent drops are visible
    /// too (same snapshot/merge semantics as `shared_evicted_delta`).
    pub shared_saturated: u64,
    /// Key probes issued through the compiled
    /// [`RulePlan`](certainfix_rules::RulePlan)'s scratch-buffered
    /// layer in the `TransFix`/validation hot path (0 with the plan
    /// off). Deterministic: depends only on the tuples and the
    /// context, not on scheduling.
    pub plan_probes: u64,
    /// Probe-buffer (re)allocations in that layer. In steady state
    /// this stays at one small constant per worker (the initial buffer
    /// warm-up — a few more with block probing, whose per-worker
    /// struct-of-arrays buffers warm once too) — the monitoring hook
    /// for the "zero per-probe heap allocations" property.
    pub probe_allocs: u64,
    /// Wide-key sub-slot fallbacks: `t[X ∩ Z]` probes on rules whose
    /// key list is wider than the plan's preallocated slot table
    /// (`|X| > 6`), served by copying out of the shared master cache
    /// instead of a pinned index. Deterministic, like `plan_probes`:
    /// merging workers reproduces the sequential count.
    pub plan_fallbacks: u64,
    /// Master epochs rebuilt by
    /// [`apply_master_delta`](crate::RepairContext::apply_master_delta)
    /// — index maintained, plan recompiled, catalog re-ranked. Always 0
    /// in per-worker accumulators (deltas are a context-level event,
    /// not a per-tuple one); sessions charge it when they merge, so a
    /// session report shows how many live-master hand-offs it spanned.
    pub plan_rebuilds: u64,
    /// Network-lane counters (all zero for in-process sources). Always
    /// 0 in per-worker accumulators — the `net` crate's `RepairServer`
    /// charges each connection's transport tallies into its session
    /// report, and the service sums them into the aggregate. Transport
    /// observables: frame/byte counts depend on client chunking, so
    /// they are outside the D2/D11 bit-identity guarantee.
    pub net: NetLaneStats,
}

/// Per-lane transport counters of the network ingest subsystem
/// (`crates/net`): one accumulator per authenticated connection,
/// merged into [`MonitorStats`] like the other counters (every field
/// sums).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetLaneStats {
    /// Request frames decoded off the socket.
    pub frames_in: u64,
    /// Response frames written to the socket.
    pub frames_out: u64,
    /// Bytes read off the socket (headers + payloads).
    pub bytes_in: u64,
    /// Bytes written to the socket (headers + payloads).
    pub bytes_out: u64,
    /// Frames rejected by the wire decoder (bad magic/version/kind,
    /// truncated or oversized payloads, …).
    pub decode_errors: u64,
    /// Sessions torn down by a fault — malformed frame, protocol
    /// violation, or a transport error mid-stream — rather than a
    /// clean shutdown.
    pub sessions_torn: u64,
}

impl NetLaneStats {
    /// Fold another lane's tallies into this one; every field sums.
    pub fn merge(&mut self, other: &NetLaneStats) {
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.decode_errors += other.decode_errors;
        self.sessions_torn += other.sessions_torn;
    }
}

impl MonitorStats {
    /// Fold another accumulator (typically a shard worker's) into this
    /// one: counts, elapsed time, and probe counters add; the interner
    /// watermark takes the maximum (so the merged watermark is
    /// monotone: it never drops below any constituent's, in whatever
    /// order shards are folded). Merging the shards of a parallel
    /// batch repair in any order yields count fields identical to a
    /// sequential run's.
    pub fn merge(&mut self, other: &MonitorStats) {
        self.tuples += other.tuples;
        self.certain += other.certain;
        self.rounds += other.rounds;
        self.elapsed += other.elapsed;
        self.interner_syms = self.interner_syms.max(other.interner_syms);
        self.shared_hits += other.shared_hits;
        self.shared_misses += other.shared_misses;
        self.shared_evicted_delta = self.shared_evicted_delta.max(other.shared_evicted_delta);
        self.shared_evicted_lru = self.shared_evicted_lru.max(other.shared_evicted_lru);
        self.shared_revalidated = self.shared_revalidated.max(other.shared_revalidated);
        self.shared_saturated = self.shared_saturated.max(other.shared_saturated);
        self.plan_probes += other.plan_probes;
        self.probe_allocs += other.probe_allocs;
        self.plan_fallbacks += other.plan_fallbacks;
        self.plan_rebuilds += other.plan_rebuilds;
        self.net.merge(&other.net);
    }
    /// Mean rounds per tuple.
    pub fn avg_rounds(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.rounds as f64 / self.tuples as f64
        }
    }

    /// Mean latency per interaction round. Computed in `f64` seconds:
    /// `Duration` division only takes a `u32` divisor, and casting a
    /// long session's cumulative round count down to `u32` would
    /// silently truncate (dividing by a wrapped value — possibly 0 —
    /// once `rounds` exceeds `u32::MAX`).
    pub fn avg_round_latency(&self) -> Duration {
        if self.rounds == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(self.elapsed.as_secs_f64() / self.rounds as f64)
        }
    }
}

/// Owns a [`RepairContext`] — `(Σ, Dm)` plus everything precomputed
/// from them: the dependency graph (Fig. 4), the ranked certain-region
/// catalog (ref.\[20\]'s `CompCRegion`) — and, for `CertainFix+`, the
/// BDD suggestion cache. This is the sequential, stateful façade
/// (one tuple at a time through [`process`](Self::process), or a
/// [`TupleSource`] through [`ingest`](Self::ingest)); the parallel
/// path over the same context is a
/// [`RepairSession`](crate::session::RepairSession).
pub struct DataMonitor {
    engine: BatchRepairEngine,
    bdd: SuggestionBdd,
    stats: MonitorStats,
    scratch: certainfix_rules::ProbeScratch,
}

impl DataMonitor {
    /// Build a monitor over `(Σ, Dm)`. `use_bdd` selects `CertainFix+`
    /// (suggestions served from the BDD cache) over plain `CertainFix`.
    pub fn new(rules: RuleSet, master: Arc<Relation>, use_bdd: bool) -> DataMonitor {
        Self::with_config(
            rules,
            master,
            use_bdd,
            InitialRegion::Best,
            CertainFixConfig::default(),
        )
    }

    /// Full-control constructor.
    pub fn with_config(
        rules: RuleSet,
        master: Arc<Relation>,
        use_bdd: bool,
        initial_region: InitialRegion,
        config: CertainFixConfig,
    ) -> DataMonitor {
        Self::from_context(RepairContext::with_config(
            rules,
            master,
            use_bdd,
            initial_region,
            config,
        ))
    }

    /// Wrap an already-built context.
    pub fn from_context(ctx: RepairContext) -> DataMonitor {
        DataMonitor {
            engine: BatchRepairEngine::new(ctx),
            bdd: SuggestionBdd::new(),
            stats: MonitorStats::default(),
            scratch: certainfix_rules::ProbeScratch::new(),
        }
    }

    /// The shared precomputation.
    pub fn context(&self) -> &RepairContext {
        self.engine.context()
    }

    /// The rule set.
    pub fn rules(&self) -> &RuleSet {
        self.context().rules()
    }

    /// Pin the current [`MasterEpoch`] — the indexed master, compiled
    /// plan, region catalog, and initial suggestion, all of one
    /// generation. The snapshot stays valid across subsequent deltas.
    pub fn epoch(&self) -> Arc<MasterEpoch> {
        self.context().epoch()
    }

    /// The current master generation.
    pub fn generation(&self) -> u64 {
        self.context().generation()
    }

    /// Apply a batch of master mutations; the next
    /// [`process`](Self::process) call picks up the new epoch. Returns
    /// the new generation.
    pub fn apply_master_delta(&self, delta: &MasterDelta) -> Result<u64, RelationError> {
        self.engine.apply_master_delta(delta)
    }

    /// Statistics so far.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// BDD cache statistics (all zeros for plain `CertainFix`).
    pub fn bdd_stats(&self) -> crate::bdd::BddStats {
        self.bdd.stats()
    }

    /// Sequentially drain a [`TupleSource`] through this monitor's own
    /// persistent BDD cache and statistics — the point-of-entry
    /// streaming loop of the paper, one tuple at a time.
    /// `oracle_for(i)` receives the tuple's index within this ingest
    /// stream (tuples drained by this call before it). For parallel
    /// draining use a [`RepairSession`](crate::session::RepairSession)
    /// instead.
    pub fn ingest<S, F, O>(&mut self, mut source: S, mut oracle_for: F) -> Vec<FixOutcome>
    where
        S: TupleSource,
        F: FnMut(usize) -> O,
        O: UserOracle,
    {
        let (lower, upper) = source.size_hint();
        let mut outcomes = Vec::with_capacity(upper.unwrap_or(lower));
        while let Some(batch) = source.next_batch() {
            for t in &batch {
                let mut oracle = oracle_for(outcomes.len());
                outcomes.push(self.process(t, &mut oracle));
            }
        }
        outcomes
    }

    /// Process one input tuple with the given oracle, against the
    /// epoch current at the time of the call — a delta applied between
    /// two `process` calls takes effect at the second.
    pub fn process<O: UserOracle + ?Sized>(&mut self, dirty: &Tuple, oracle: &mut O) -> FixOutcome {
        let epoch = self.engine.context().epoch();
        self.engine.context().process_with_full(
            &epoch,
            &mut self.bdd,
            &mut self.stats,
            None,
            &mut self.scratch,
            dirty,
            oracle,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{evaluate_rounds, TupleEval};
    use crate::oracle::SimulatedUser;
    use certainfix_datagen::{Dataset, Dblp, DirtyConfig, Hosp, Workload};

    fn run_monitor<W: Workload>(
        workload: &W,
        use_bdd: bool,
        cfg: &DirtyConfig,
    ) -> (Vec<FixOutcome>, Dataset, MonitorStats) {
        let mut monitor =
            DataMonitor::new(workload.rules().clone(), workload.master().clone(), use_bdd);
        let dataset = Dataset::generate(workload, cfg);
        let outcomes: Vec<FixOutcome> = dataset
            .inputs
            .iter()
            .map(|dt| {
                let mut user = SimulatedUser::new(dt.clean.clone());
                monitor.process(&dt.dirty, &mut user)
            })
            .collect();
        let stats = monitor.stats();
        (outcomes, dataset, stats)
    }

    #[test]
    fn hosp_duplicates_get_certain_fixes_in_one_round() {
        let hosp = Hosp::generate(300);
        let cfg = DirtyConfig {
            duplicate_rate: 1.0,
            noise_rate: 0.2,
            input_size: 60,
            seed: 1,
            ..Default::default()
        };
        let (outcomes, dataset, stats) = run_monitor(&hosp, false, &cfg);
        for (out, dt) in outcomes.iter().zip(&dataset.inputs) {
            assert!(out.certain, "master-backed tuple must be certain");
            assert_eq!(out.certain_at_round, Some(1));
            assert!(out.rule_backed);
            assert_eq!(&out.tuple, &dt.clean, "certain fix equals ground truth");
        }
        assert_eq!(stats.certain, 60);
        assert_eq!(stats.avg_rounds(), 1.0);
    }

    #[test]
    fn recall_t_at_round_one_tracks_duplicate_rate() {
        let hosp = Hosp::generate(300);
        let cfg = DirtyConfig {
            duplicate_rate: 0.4,
            noise_rate: 0.3,
            input_size: 200,
            seed: 2,
            ..Default::default()
        };
        let (outcomes, dataset, _) = run_monitor(&hosp, false, &cfg);
        let evals: Vec<TupleEval> = outcomes
            .iter()
            .zip(&dataset.inputs)
            .map(|(o, dt)| TupleEval {
                outcome: o,
                dirty: &dt.dirty,
                clean: &dt.clean,
            })
            .collect();
        let m = evaluate_rounds(&evals, 1);
        assert!(
            (m[0].recall_t - 0.4).abs() < 0.12,
            "recall_t(1) ≈ d%: got {}",
            m[0].recall_t
        );
        assert_eq!(m[0].precision_a, 1.0, "certain fixes are never wrong");
    }

    #[test]
    fn bdd_pipeline_produces_identical_fixes() {
        let dblp = Dblp::generate(200);
        let cfg = DirtyConfig {
            duplicate_rate: 0.5,
            noise_rate: 0.2,
            input_size: 50,
            seed: 3,
            ..Default::default()
        };
        let (plain, ds1, _) = run_monitor(&dblp, false, &cfg);
        let (cached, ds2, _) = run_monitor(&dblp, true, &cfg);
        for (i, (a, b)) in plain.iter().zip(&cached).enumerate() {
            assert_eq!(ds1.inputs[i].dirty, ds2.inputs[i].dirty);
            assert_eq!(a.tuple, b.tuple, "tuple {i}");
            assert_eq!(a.certain, b.certain);
            assert_eq!(a.validated, b.validated);
        }
    }

    #[test]
    fn bdd_cache_actually_hits() {
        let hosp = Hosp::generate(200);
        let cfg = DirtyConfig {
            duplicate_rate: 0.0, // fresh tuples always need suggestions
            noise_rate: 0.2,
            input_size: 30,
            seed: 4,
            ..Default::default()
        };
        let dataset = Dataset::generate(&hosp, &cfg);
        let mut monitor = DataMonitor::new(hosp.rules().clone(), hosp.master().clone(), true);
        for dt in &dataset.inputs {
            let mut user = SimulatedUser::new(dt.clean.clone());
            monitor.process(&dt.dirty, &mut user);
        }
        let stats = monitor.bdd_stats();
        assert!(
            stats.hits > stats.misses,
            "after the first tuples the cache should serve most suggestions: {stats:?}"
        );
    }

    #[test]
    fn median_region_is_not_better_than_best() {
        let hosp = Hosp::generate(200);
        let best = DataMonitor::with_config(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
            InitialRegion::Best,
            CertainFixConfig::default(),
        );
        let median = DataMonitor::with_config(
            hosp.rules().clone(),
            hosp.master().clone(),
            false,
            InitialRegion::Median,
            CertainFixConfig::default(),
        );
        assert!(
            best.epoch().initial_suggestion().len() <= median.epoch().initial_suggestion().len()
        );
    }

    /// The satellite fix: `avg_round_latency` must not truncate the
    /// round count through `u32` — a long session whose cumulative
    /// rounds exceed `u32::MAX` used to divide by a wrapped (possibly
    /// zero) divisor.
    #[test]
    fn avg_round_latency_survives_u32_overflowing_round_counts() {
        let mut stats = MonitorStats {
            rounds: u64::from(u32::MAX) + 2, // wraps to 1 as u32
            elapsed: Duration::from_secs(4_295),
            ..MonitorStats::default()
        };
        let avg = stats.avg_round_latency();
        // ≈ 1µs per round; the wrapped-u32 division would report the
        // whole 4 295 s as a single round's latency
        assert!(avg < Duration::from_micros(2), "avg = {avg:?}");
        assert!(avg > Duration::ZERO);

        // and a wrapped-to-zero divisor must not panic
        stats.rounds = u64::from(u32::MAX) + 1; // wraps to 0 as u32
        assert!(stats.avg_round_latency() > Duration::ZERO);

        // ordinary sessions keep the exact quotient
        let small = MonitorStats {
            rounds: 4,
            elapsed: Duration::from_millis(10),
            ..MonitorStats::default()
        };
        assert_eq!(small.avg_round_latency(), Duration::from_nanos(2_500_000));
        assert_eq!(MonitorStats::default().avg_round_latency(), Duration::ZERO);
    }

    /// `ingest` drains a source through the monitor's own state:
    /// identical outcomes and statistics to one `process` call per
    /// tuple, whatever the batching.
    #[test]
    fn ingest_matches_tuple_at_a_time_processing() {
        use crate::session::SliceSource;
        let hosp = Hosp::generate(120);
        let cfg = DirtyConfig {
            duplicate_rate: 0.4,
            noise_rate: 0.2,
            input_size: 40,
            seed: 21,
            ..Default::default()
        };
        let dataset = Dataset::generate(&hosp, &cfg);
        let dirty: Vec<_> = dataset.inputs.iter().map(|dt| dt.dirty.clone()).collect();

        let mut by_tuple = DataMonitor::new(hosp.rules().clone(), hosp.master().clone(), true);
        let expected: Vec<FixOutcome> = dataset
            .inputs
            .iter()
            .map(|dt| {
                let mut user = SimulatedUser::new(dt.clean.clone());
                by_tuple.process(&dt.dirty, &mut user)
            })
            .collect();

        let mut streamed = DataMonitor::new(hosp.rules().clone(), hosp.master().clone(), true);
        let outcomes = streamed.ingest(SliceSource::with_batch(&dirty, 7), |i| {
            SimulatedUser::new(dataset.inputs[i].clean.clone())
        });
        assert_eq!(outcomes.len(), expected.len());
        for (i, (a, b)) in outcomes.iter().zip(&expected).enumerate() {
            assert_eq!(a.tuple, b.tuple, "tuple {i}");
            assert_eq!(a.certain, b.certain, "tuple {i}");
            assert_eq!(a.rounds.len(), b.rounds.len(), "tuple {i}");
        }
        assert_eq!(streamed.stats().tuples, by_tuple.stats().tuples);
        assert_eq!(streamed.stats().rounds, by_tuple.stats().rounds);
        assert_eq!(streamed.stats().certain, by_tuple.stats().certain);
    }

    #[test]
    fn stats_merge_sums_counts_and_maxes_the_watermark() {
        let a = MonitorStats {
            tuples: 10,
            certain: 4,
            rounds: 12,
            elapsed: std::time::Duration::from_millis(5),
            interner_syms: 100,
            shared_hits: 6,
            shared_misses: 2,
            shared_evicted_delta: 8,
            shared_evicted_lru: 3,
            shared_revalidated: 5,
            shared_saturated: 2,
            plan_probes: 40,
            probe_allocs: 1,
            plan_fallbacks: 3,
            plan_rebuilds: 2,
            net: NetLaneStats {
                frames_in: 5,
                frames_out: 4,
                bytes_in: 900,
                bytes_out: 700,
                decode_errors: 1,
                sessions_torn: 0,
            },
        };
        let b = MonitorStats {
            tuples: 7,
            certain: 3,
            rounds: 9,
            elapsed: std::time::Duration::from_millis(3),
            interner_syms: 250,
            shared_hits: 1,
            shared_misses: 4,
            shared_evicted_delta: 2,
            shared_evicted_lru: 9,
            shared_revalidated: 1,
            shared_saturated: 6,
            plan_probes: 2,
            probe_allocs: 1,
            plan_fallbacks: 1,
            plan_rebuilds: 1,
            net: NetLaneStats {
                frames_in: 2,
                frames_out: 1,
                bytes_in: 100,
                bytes_out: 50,
                decode_errors: 0,
                sessions_torn: 1,
            },
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.tuples, 17);
        assert_eq!(merged.certain, 7);
        assert_eq!(merged.rounds, 21);
        assert_eq!(merged.elapsed, std::time::Duration::from_millis(8));
        assert_eq!(merged.interner_syms, 250, "watermark is a max, not a sum");
        assert_eq!(merged.shared_hits, 7, "shared probes sum");
        assert_eq!(merged.shared_misses, 6);
        assert_eq!(
            merged.shared_evicted_delta, 8,
            "lifecycle snapshots max, not sum"
        );
        assert_eq!(merged.shared_evicted_lru, 9);
        assert_eq!(merged.shared_revalidated, 5);
        assert_eq!(merged.shared_saturated, 6);
        assert_eq!(merged.plan_probes, 42, "plan probes sum");
        assert_eq!(merged.probe_allocs, 2, "scratch warm-ups sum");
        assert_eq!(merged.plan_fallbacks, 4, "wide-key fallbacks sum");
        assert_eq!(merged.plan_rebuilds, 3, "epoch rebuilds sum");
        assert_eq!(
            merged.net,
            NetLaneStats {
                frames_in: 7,
                frames_out: 5,
                bytes_in: 1000,
                bytes_out: 750,
                decode_errors: 1,
                sessions_torn: 1,
            },
            "net-lane counters all sum"
        );
    }

    /// The ROADMAP monitoring-hook satellite: the `interner_syms`
    /// watermark is *monotone* across merged shards — folding any
    /// sequence of shard accumulators never lowers it, the running
    /// value is non-decreasing fold by fold, and the result is the
    /// same in every merge order.
    #[test]
    fn interner_watermark_is_monotone_across_merged_shards() {
        let shard = |w: u64| MonitorStats {
            tuples: 1,
            interner_syms: w,
            ..MonitorStats::default()
        };
        let watermarks = [120u64, 40, 300, 7, 300, 299];
        let shards: Vec<MonitorStats> = watermarks.iter().map(|&w| shard(w)).collect();

        // fold forward: the running watermark never decreases, and it
        // always dominates every shard folded so far
        let mut acc = MonitorStats::default();
        let mut last = 0u64;
        for (i, s) in shards.iter().enumerate() {
            acc.merge(s);
            assert!(acc.interner_syms >= last, "watermark dropped at fold {i}");
            assert!(
                acc.interner_syms >= s.interner_syms,
                "merged watermark below shard {i}'s"
            );
            last = acc.interner_syms;
        }
        assert_eq!(acc.interner_syms, 300);
        assert_eq!(acc.tuples, 6, "counts still sum alongside the max");

        // merge order is immaterial: reverse and pairwise-tree orders
        // land on the same watermark
        let mut rev = MonitorStats::default();
        for s in shards.iter().rev() {
            rev.merge(s);
        }
        assert_eq!(rev.interner_syms, acc.interner_syms);
        let mut pairs: Vec<MonitorStats> = shards
            .chunks(2)
            .map(|pair| {
                let mut m = pair[0];
                if let Some(b) = pair.get(1) {
                    m.merge(b);
                }
                m
            })
            .collect();
        let mut tree = pairs.remove(0);
        for p in &pairs {
            tree.merge(p);
        }
        assert_eq!(tree.interner_syms, acc.interner_syms);
    }

    #[test]
    fn processing_tracks_the_interner_watermark() {
        let hosp = Hosp::generate(50);
        let cfg = DirtyConfig {
            duplicate_rate: 1.0,
            noise_rate: 0.2,
            input_size: 5,
            seed: 9,
            ..Default::default()
        };
        let (_, _, stats) = run_monitor(&hosp, false, &cfg);
        let global = certainfix_relation::Interner::global().len() as u64;
        assert!(stats.interner_syms > 0);
        assert!(stats.interner_syms <= global);
    }

    #[test]
    fn fresh_tuples_do_not_reach_certain_fixes() {
        let dblp = Dblp::generate(100);
        let cfg = DirtyConfig {
            duplicate_rate: 0.0,
            noise_rate: 0.2,
            input_size: 25,
            seed: 5,
            ..Default::default()
        };
        let (outcomes, _, stats) = run_monitor(&dblp, false, &cfg);
        assert!(outcomes.iter().all(|o| !o.rule_backed));
        assert_eq!(stats.certain, 0);
    }
}
