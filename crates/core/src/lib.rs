//! The interactive `CertainFix` / `CertainFix+` framework (Sect. 5 of
//! the paper): find certain fixes for tuples at the point of data
//! entry, by interacting with users over editing rules and master data.
//!
//! Pipeline per input tuple (Fig. 3):
//!
//! 1. recommend the precomputed highest-quality certain region's `Z` as
//!    the first suggestion;
//! 2. the user asserts a set `S` of attributes correct (supplying
//!    values where the entered ones were wrong);
//! 3. validate `t[Z′ ∪ S]` (does it lead to a unique fix?), then run
//!    [`transfix()`](transfix::transfix) to propagate master values along the rule
//!    dependency graph;
//! 4. if everything is validated, done — a certain fix; otherwise
//!    compute a new suggestion ([`certainfix_reasoning::suggest()`](certainfix_reasoning::suggest())),
//!    possibly served from the [`bdd`] cache (`Suggest+`), and repeat.
//!
//! [`DataMonitor`] packages the precomputation (dependency graph,
//! region catalog, BDD) and processes tuple streams; [`metrics`]
//! implements the paper's recall / precision / F-measure at both the
//! tuple and attribute level. The unified entry-point surface is the
//! [`session`] API: a [`RepairSession`] drains any [`TupleSource`]
//! (slice, generator batches, or a bounded channel) through the
//! work-stealing [`BatchRepairEngine`] and emits a [`SessionReport`];
//! for N concurrent streams over one engine, the [`service`]
//! multiplexer ([`RepairService`]) schedules the sessions fairly and
//! reports each one as if it had run alone.
//!
//! The master data is *live*: a
//! [`MasterDelta`](certainfix_relation::MasterDelta) applied through
//! [`RepairContext::apply_master_delta`] (or
//! [`RepairSession::apply_master_delta`](session::RepairSession::apply_master_delta))
//! builds the next generation-stamped [`MasterEpoch`] — maintained
//! index, recompiled plan, re-ranked catalog — and swaps it in without
//! stalling in-flight repairs, which finish on the epoch they pinned.
//! And the engine runs two [`Workload`]s behind one surface: the
//! paper's editing-rule repair and the `IncRep`-style CFD baseline of
//! [`certainfix_cfd`].
//!
//! Every guarantee this crate leans on — schedule-independence, plan ≡
//! plain oracle, stream ≡ batch, block ≡ single probe, session-
//! interleaving-independence, delta-maintained ≡ rebuilt — is
//! inventoried with its discharging test or CI job in `DETERMINISM.md`
//! at the repository root.

pub mod bdd;
pub mod certainfix;
pub mod engine;
pub mod metrics;
pub mod monitor;
pub mod oracle;
pub mod service;
pub mod session;
pub mod sharedcache;
pub mod transfix;

pub use bdd::SuggestionBdd;
pub use certainfix::{CertainFix, CertainFixConfig, FixOutcome, RoundReport};
pub use engine::{
    BatchRepairEngine, BatchReport, MasterEpoch, RepairContext, RepairOptions, Schedule,
    WorkerReport, Workload,
};
pub use metrics::{
    evaluate_changes, evaluate_rounds, merge_round_series, ChangeCounts, RoundMetrics, TupleEval,
};
pub use monitor::{DataMonitor, InitialRegion, MonitorStats, NetLaneStats};
pub use oracle::{SimulatedUser, UserOracle};
pub use service::{
    attach_channel, AttachQueue, BoxedOracle, NamedSessionReport, RepairService,
    RepairServiceBuilder, ServiceAttach, ServiceOptions, ServiceReport, ServiceStream,
    SessionEvent,
};
pub use session::{
    BatchesSource, ChannelSource, RepairSession, RepairSessionBuilder, SessionReport, SliceSource,
    TupleSource,
};
pub use sharedcache::{SharedCacheStats, SharedSuggestionCache};
pub use transfix::{transfix, transfix_block, transfix_with, TransFixOutcome};
