//! The shared concurrent suggestion cache.
//!
//! Computing a suggestion (the greedy set-cover loop of
//! [`certainfix_reasoning::suggest()`](certainfix_reasoning::suggest())) is the single most expensive
//! step of an interaction round; *checking* whether a previously
//! computed suggestion also works for another tuple is one closure
//! ([`certainfix_reasoning::is_suggestion`]) — that asymmetry is what
//! the paper's `Suggest+` BDD exploits within one worker. This cache
//! exploits it **across** workers: every suggestion any worker computes
//! is published into a process-shared pool, organized by the validated
//! [`AttrSet`] it was computed under, and any other worker whose local
//! diagram misses re-checks the pooled candidates before paying for a
//! fresh computation.
//!
//! # Design
//!
//! A sharded hash map: `SHARDS` independent `RwLock<FxHashMap>` slices
//! selected from the key's hash, so lookups of different keys rarely
//! contend and hits take only a shard *read* lock. Keys and stored
//! candidates are the `Copy` one-word bitsets and id-lists of PR 1's
//! interned value layer (an [`AttrSet`] is a `u64`, an
//! [`AttrId`] a `u16`), so hashing, equality, and candidate dedup are
//! integer operations with no string traffic. Candidate checks run
//! *outside* the lock on a snapshot of the (short, deduplicated)
//! candidate list. Each shard carries its own atomic hit/miss
//! counters; workers additionally count their own probes into
//! [`MonitorStats`](crate::MonitorStats), whose
//! [`merge`](crate::MonitorStats::merge) surfaces them per batch.
//!
//! # Lifecycle (delta-aware hygiene)
//!
//! The pool is no longer insert-only. Every candidate is stamped with
//! the [`MasterIndex::generation`] it was computed (or last
//! revalidated) under, and the lifecycle has four pieces:
//!
//! * **The serve gate** (both hygiene modes). A candidate is served
//!   only when its stamp equals the probing epoch's generation. A
//!   retired-generation candidate can pass the `is_suggestion`
//!   re-check under the new master and *still* steer the interaction
//!   to a different final tuple than a fresh derivation would — the
//!   check proves validity, not canonicity — so stale entries are
//!   never served. They lie dormant until a fresh computation
//!   re-derives the same attr list and the publish dedup restamps them
//!   (`revalidated`) — the sound revalidation event, since at that
//!   moment the entry *is* the fresh result. A restamp also moves the
//!   entry to the back of its slot, so the serve-visible
//!   (current-generation) subsequence always sits in
//!   first-publish-this-generation order — the order a cold pool
//!   would hold, which matters because the serve loop returns the
//!   first passing candidate.
//! * **Suggestion-preserving deltas** (hygiene on). A pure-update
//!   delta whose changed master columns avoid every rule's *key*
//!   columns (`Xm`, pattern-aligned) provably leaves the suggestion
//!   function unchanged — derivations only probe master key columns,
//!   and a pooled attr list never encodes fix values — so
//!   [`apply_master_delta`](SharedSuggestionCache::apply_master_delta)
//!   restamps every candidate at the *pre-delta* generation to the
//!   new one (`revalidated`) and the pool keeps serving across the
//!   bump. Only that one generation is revived: the proof covers
//!   exactly the old→new transition, so entries left dormant by an
//!   earlier non-preserving delta stay dormant. This is the
//!   warm-start win: with hygiene off the same delta retires every
//!   entry behind the serve gate, and the next batch pays a miss per
//!   key.
//! * **Targeted delta invalidation** (hygiene on). A [`MasterDelta`]
//!   names exactly the master rows it touches. [`apply_master_delta`](SharedSuggestionCache::apply_master_delta)
//!   maps the touched rows to the master attributes whose values
//!   changed, taints every rule whose master-side footprint (`Xm`,
//!   `Bm`, pattern-aligned columns) intersects them, and from those
//!   rules derives the tainted *R*-side attribute set. A per-shard
//!   reverse index (suggestion attr → cache keys) then walks only the
//!   entries whose candidate lists intersect the tainted attrs —
//!   `O(touched)`, not `O(cache)` — evicting intersecting candidates
//!   (`evicted_delta`): the entries least likely to ever be re-derived
//!   and revalidated, freeing their capped slots. Pure inserts taint
//!   nothing: adding master rows can only *add* applicable rules (a
//!   rule dropped by a new disagreeing candidate has its `B` already
//!   validated, so the coverage closure never shrinks), hence a
//!   suggestion valid before an insert-only delta is valid after it.
//! * **Second-chance eviction at the caps** (hygiene on). A publish
//!   that lands on a full shard (`MAX_KEYS_PER_SHARD` keys) or a full
//!   key (`MAX_CANDIDATES_PER_KEY` candidates) no longer drops
//!   silently: a clock hand sweeps the shard's key ring (or the key's
//!   candidate list), clearing reference bits and evicting the first
//!   unreferenced victim — retired-generation candidates first
//!   (`evicted_lru`). Every cap event also ticks `saturated`, in
//!   *both* hygiene modes, so pressure is observable even where the
//!   old drop-silently policy is kept.
//! * **Occupancy accounting** (both modes): keys and candidates per
//!   shard, with high-water marks.
//!
//! Hygiene is a construction-time mode
//! ([`with_hygiene`](SharedSuggestionCache::with_hygiene)): with it
//! off the cache is the historical insert-only pool plus the serve
//! gate and the `saturated` counter — after a delta its entries go
//! permanently dormant unless republished, and at the caps fresh
//! publishes are dropped while dead entries squat in the slots. That
//! is exactly the pathology hygiene-on removes, and what the
//! `exp_delta --cache-hygiene` legs measure.
//!
//! # Determinism
//!
//! Within one generation, reuse is **checked** like the per-worker
//! BDD's: a candidate is served only after
//! [`certainfix_reasoning::is_suggestion`] accepts it for the probing
//! tuple (invariant D8). Across generations the serve gate guarantees
//! no retired entry is ever served, so a warm pool can only serve what
//! a cold, same-generation run could have published itself; the one
//! cross-generation carry — the suggestion-preserving restamp — is
//! sound because the restamped entries are exactly what fresh
//! derivations under the new epoch would republish. Together:
//! final repaired tuples and certain-fix verdicts are independent of
//! hygiene mode, eviction timing, and pool temperature (invariant
//! D12, DETERMINISM.md — the cache counters themselves are observables
//! exempt from bit-identity). Runs that must be bit-identical to
//! sequential plain `CertainFix` should disable both caches; see the
//! engine's determinism notes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use certainfix_reasoning::{is_suggestion, is_suggestion_with, suggest, suggest_with};
use certainfix_relation::{AttrId, AttrSet, FxHashMap, FxHashSet, MasterDelta, MasterIndex, Tuple};
use certainfix_rules::{ProbeScratch, RulePlan, RuleSet};

/// Number of lock shards (power of two).
const SHARDS: usize = 16;

/// One pooled suggestion: the attr list plus its lifecycle state.
#[derive(Debug)]
struct Candidate {
    /// The suggested attrs (R-schema ids), immutable.
    attrs: Arc<[AttrId]>,
    /// Master generation this candidate was computed under, bumped
    /// only when a fresh derivation republishes the same list (the
    /// sound revalidation event). The serve gate compares it against
    /// the probing epoch's generation.
    generation: AtomicU64,
    /// Second-chance reference bit, set on every served hit and
    /// revalidating republish, cleared by a passing clock hand.
    referenced: AtomicBool,
}

impl Candidate {
    fn new(attrs: &[AttrId], generation: u64) -> Arc<Candidate> {
        Arc::new(Candidate {
            attrs: Arc::from(attrs),
            generation: AtomicU64::new(generation),
            referenced: AtomicBool::new(false),
        })
    }

    fn intersects(&self, tainted: &AttrSet) -> bool {
        self.attrs.iter().any(|a| tainted.contains(*a))
    }
}

/// The lock-protected slice of one shard: the candidate pool plus the
/// structures hygiene sweeps (reverse index, clock ring, occupancy).
#[derive(Debug, Default)]
struct ShardPool {
    /// validated-set bits → candidate suggestions, in publication order.
    map: FxHashMap<u64, Vec<Arc<Candidate>>>,
    /// Reverse index: suggestion attr → cache keys whose candidate
    /// lists contain it. Maintained only with hygiene on (nothing
    /// reads it with hygiene off) and pruned eagerly on every
    /// eviction path — clock, within-key second chance, delta walk —
    /// so a key sits in an attr's set iff one of its pooled
    /// candidates carries the attr; otherwise long-lived services
    /// under key churn would leak one set slot per distinct key ever
    /// published.
    by_attr: FxHashMap<AttrId, FxHashSet<u64>>,
    /// Clock ring over keys in publication order (second-chance victim
    /// selection at the key cap). Keys evicted by the delta walk are
    /// compacted out at the end of the walk; the lazy removal when the
    /// hand lands on a stale slot is only a belt-and-braces fallback.
    ring: Vec<u64>,
    /// The clock hand: index into `ring` of the next sweep position.
    hand: usize,
    /// Maintained candidate count (`== map.values().map(len).sum()`).
    candidates: usize,
    /// High-water mark of `map.len()`.
    keys_hw: usize,
    /// High-water mark of `candidates`.
    candidates_hw: usize,
}

impl ShardPool {
    fn note_occupancy(&mut self) {
        self.keys_hw = self.keys_hw.max(self.map.len());
        self.candidates_hw = self.candidates_hw.max(self.candidates);
    }

    /// Drop `key` from the reverse sets of the given attrs, reclaiming
    /// emptied sets. Callers pass the attrs of candidates they just
    /// evicted, after checking no surviving candidate of the key still
    /// carries them.
    fn unindex(&mut self, key: u64, attrs: &[AttrId]) {
        for &a in attrs {
            if let Some(keys) = self.by_attr.get_mut(&a) {
                keys.remove(&key);
                if keys.is_empty() {
                    self.by_attr.remove(&a);
                }
            }
        }
    }

    /// Second-chance victim selection over `ring` starting at `hand`:
    /// keys whose candidates are all unreferenced are evicted, keys
    /// with a referenced candidate get their bits cleared and survive
    /// one lap. Terminates within two laps (the first lap clears every
    /// bit). Returns the number of candidates evicted.
    fn evict_one_key(&mut self) -> usize {
        let mut steps = 0usize;
        // two laps over the *current* ring length is an upper bound:
        // after one full lap every reference bit is clear
        let budget = self.ring.len().saturating_mul(2).max(1);
        while steps <= budget && !self.ring.is_empty() {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let key = self.ring[self.hand];
            let Some(pool) = self.map.get(&key) else {
                // evicted elsewhere (delta walk): drop the stale ring slot
                self.ring.swap_remove(self.hand);
                continue;
            };
            let referenced = pool.iter().any(|c| c.referenced.load(Ordering::Relaxed));
            if referenced {
                for c in pool {
                    c.referenced.store(false, Ordering::Relaxed);
                }
                self.hand += 1;
                steps += 1;
                continue;
            }
            let victims = self.map.remove(&key).unwrap_or_default();
            let evicted = victims.len();
            for c in &victims {
                self.unindex(key, &c.attrs);
            }
            self.candidates -= evicted;
            self.ring.swap_remove(self.hand);
            return evicted;
        }
        0
    }
}

/// One lock shard: its slice of the candidate pool plus counters.
#[derive(Debug, Default)]
struct CacheShard {
    pool: RwLock<ShardPool>,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted_delta: AtomicU64,
    evicted_lru: AtomicU64,
    revalidated: AtomicU64,
    saturated: AtomicU64,
}

/// Counters of one cache shard, snapshot by
/// [`SharedSuggestionCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Probes answered by a checked candidate of this shard.
    pub hits: u64,
    /// Probes no candidate of this shard could answer.
    pub misses: u64,
    /// Candidates currently pooled in this shard.
    pub entries: u64,
    /// Validated-set keys currently pooled in this shard.
    pub keys: u64,
    /// Candidates evicted by targeted delta invalidation.
    pub evicted_delta: u64,
    /// Candidates evicted by the second-chance clock at a cap.
    pub evicted_lru: u64,
    /// Candidates restamped to a newer generation (a passing check
    /// under a newer master, or a delta that provably missed them).
    pub revalidated: u64,
    /// Publishes that arrived at a full shard or full key (the cap
    /// events; counted in both hygiene modes — with hygiene off each
    /// one is a silent drop, with hygiene on the clock makes room).
    pub saturated: u64,
    /// High-water mark of pooled keys.
    pub keys_high_water: u64,
    /// High-water mark of pooled candidates.
    pub entries_high_water: u64,
}

/// Aggregated cache statistics (plus the per-shard breakdown).
///
/// Two provenances share this shape: [`SharedSuggestionCache::stats`]
/// snapshots engine-global counters (cumulative over the engine's
/// lifetime), while [`SharedSuggestionCache::attributed`] scopes the
/// top-level `hits` / `misses` to one batch or session — the form
/// reports carry, so that per-session numbers sum to the global ones.
/// The lifecycle counters (`evicted_delta`, `evicted_lru`,
/// `revalidated`, `saturated`) and occupancy fields are engine-lifetime
/// snapshots in both forms, like `entries`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Probes served from the pool (engine-global in a
    /// [`stats`](SharedSuggestionCache::stats) snapshot; scoped to one
    /// batch/session in an [`attributed`](SharedSuggestionCache::attributed) one).
    pub hits: u64,
    /// Probes that fell through to a fresh computation (same scoping as
    /// `hits`).
    pub misses: u64,
    /// Total candidates pooled.
    pub entries: u64,
    /// Total validated-set keys pooled.
    pub keys: u64,
    /// Candidates evicted because a master delta tainted their attrs.
    pub evicted_delta: u64,
    /// Candidates evicted by second-chance clock sweeps at the caps.
    pub evicted_lru: u64,
    /// Candidates restamped to a newer master generation.
    pub revalidated: u64,
    /// Publishes that hit a cap (see [`ShardCounters::saturated`]).
    pub saturated: u64,
    /// High-water mark of pooled keys (summed over shards).
    pub keys_high_water: u64,
    /// High-water mark of pooled candidates (summed over shards).
    pub entries_high_water: u64,
    /// Per-shard counters, in shard order.
    pub per_shard: Vec<ShardCounters>,
}

impl SharedCacheStats {
    /// Hit rate in `[0, 1]` (0 when the cache was never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The shared concurrent suggestion cache; see the [module
/// docs](self) for design, lifecycle, and determinism notes.
#[derive(Debug)]
pub struct SharedSuggestionCache {
    shards: Box<[CacheShard]>,
    /// Lifecycle management on (the default): delta invalidation,
    /// clock eviction at the caps, lazy revalidation. Off reproduces
    /// the historical insert-only pool (plus the `saturated` counter).
    hygiene: bool,
    max_keys_per_shard: usize,
    max_candidates_per_key: usize,
}

impl Default for SharedSuggestionCache {
    fn default() -> Self {
        SharedSuggestionCache::new()
    }
}

impl SharedSuggestionCache {
    /// Distinct validated-set keys one shard accepts before the clock
    /// evicts (hygiene on) or new keys are dropped (hygiene off) — a
    /// pure hit-rate trade, never a correctness one.
    pub const MAX_KEYS_PER_SHARD: usize = 1 << 14;

    /// Candidates pooled per validated-set key before the clock evicts
    /// (hygiene on) or new candidates are dropped (hygiene off).
    pub const MAX_CANDIDATES_PER_KEY: usize = 64;

    /// An empty cache with lifecycle hygiene on.
    pub fn new() -> SharedSuggestionCache {
        SharedSuggestionCache::with_hygiene(true)
    }

    /// An empty cache with lifecycle hygiene on or off (off reproduces
    /// the historical insert-only behaviour; see the module docs).
    pub fn with_hygiene(hygiene: bool) -> SharedSuggestionCache {
        SharedSuggestionCache::with_limits(
            hygiene,
            Self::MAX_KEYS_PER_SHARD,
            Self::MAX_CANDIDATES_PER_KEY,
        )
    }

    /// An empty cache with explicit caps — the benchmark harness uses
    /// tightened caps to put the pool under measurable pressure;
    /// production callers should prefer the defaults.
    pub fn with_limits(
        hygiene: bool,
        max_keys_per_shard: usize,
        max_candidates_per_key: usize,
    ) -> SharedSuggestionCache {
        SharedSuggestionCache {
            shards: (0..SHARDS).map(|_| CacheShard::default()).collect(),
            hygiene,
            max_keys_per_shard: max_keys_per_shard.max(1),
            max_candidates_per_key: max_candidates_per_key.max(1),
        }
    }

    /// Whether lifecycle hygiene (eviction + revalidation) is on.
    pub fn hygiene(&self) -> bool {
        self.hygiene
    }

    fn shard(&self, key: u64) -> &CacheShard {
        // splitmix-style mix so dense validated-set words spread over
        // the shards instead of clustering in the low bits
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 56) as usize & (SHARDS - 1)]
    }

    /// The candidates pooled for `validated`, in publication order.
    pub fn candidates(&self, validated: AttrSet) -> Vec<Arc<[AttrId]>> {
        self.snapshot(validated)
            .into_iter()
            .map(|c| c.attrs.clone())
            .collect()
    }

    /// The candidates pooled for `validated` with their generation
    /// stamps, in publication order.
    pub fn candidates_with_generations(&self, validated: AttrSet) -> Vec<(Vec<AttrId>, u64)> {
        self.snapshot(validated)
            .into_iter()
            .map(|c| (c.attrs.to_vec(), c.generation.load(Ordering::Relaxed)))
            .collect()
    }

    fn snapshot(&self, validated: AttrSet) -> Vec<Arc<Candidate>> {
        self.shard(validated.bits())
            .pool
            .read()
            .expect("suggestion cache shard poisoned")
            .map
            .get(&validated.bits())
            .cloned()
            .unwrap_or_default()
    }

    /// Publish a computed suggestion for `validated`, stamped with the
    /// master `generation` it was computed under. Deduplicated. At a
    /// cap: hygiene on evicts a second-chance victim to make room,
    /// hygiene off drops the publish; both tick `saturated`.
    pub fn publish(&self, validated: AttrSet, suggestion: &[AttrId], generation: u64) {
        let shard = self.shard(validated.bits());
        let mut pool = shard.pool.write().expect("suggestion cache shard poisoned");
        let key = validated.bits();
        if !pool.map.contains_key(&key) && pool.map.len() >= self.max_keys_per_shard {
            shard.saturated.fetch_add(1, Ordering::Relaxed);
            if !self.hygiene {
                return;
            }
            let evicted = pool.evict_one_key();
            if evicted == 0 {
                return; // every key referenced twice over — give up
            }
            shard
                .evicted_lru
                .fetch_add(evicted as u64, Ordering::Relaxed);
        }
        let new_key = !pool.map.contains_key(&key);
        let cap = self.max_candidates_per_key;
        let hygiene = self.hygiene;
        let mut saturated = false;
        let mut evicted_lru = 0u64;
        let mut revalidated = 0u64;
        let mut added = false;
        let mut victim_attrs: Option<Arc<[AttrId]>> = None;
        {
            let slot = pool.map.entry(key).or_default();
            if let Some(at) = slot.iter().position(|c| *c.attrs == *suggestion) {
                // republish of a pooled list: freshen the stamp. This
                // is the *sound* revalidation event — the fresh
                // derivation just produced this exact list under
                // `generation`, so serving the entry again is
                // indistinguishable from serving the fresh result.
                let existing = &slot[at];
                let g = existing.generation.load(Ordering::Relaxed);
                if hygiene {
                    existing.referenced.store(true, Ordering::Relaxed);
                }
                if generation > g {
                    existing.generation.store(generation, Ordering::Relaxed);
                    revalidated += 1;
                    // move the revived entry to the back so the
                    // serve-visible (current-generation) subsequence
                    // sits in first-publish-this-generation order —
                    // exactly the order a cold pool would hold. The
                    // serve loop returns the first passing candidate,
                    // so slot order is outcome-relevant (D12).
                    let revived = slot.remove(at);
                    slot.push(revived);
                }
            } else if slot.len() < cap {
                slot.push(Candidate::new(suggestion, generation));
                added = true;
            } else {
                saturated = true;
                if hygiene {
                    // second chance within the key's list: dormant
                    // (retired-generation) candidates go first —
                    // unreferenced before referenced, stalest stamp
                    // first — so current-generation entries are only
                    // displaced by each other, keeping the
                    // serve-visible subsequence cold-pool-shaped. If
                    // everything is current and referenced, clear the
                    // bits and take the *back* (newest publish): the
                    // incoming candidate replaces the tail, leaving
                    // the serve-visible prefix — the order the serve
                    // loop scans — untouched (D12's ordering
                    // argument survives cap pressure).
                    let victim = slot
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.generation.load(Ordering::Relaxed) < generation)
                        .min_by_key(|(i, c)| {
                            (
                                c.referenced.load(Ordering::Relaxed),
                                c.generation.load(Ordering::Relaxed),
                                *i,
                            )
                        })
                        .map(|(i, _)| i)
                        .or_else(|| {
                            slot.iter()
                                .position(|c| !c.referenced.load(Ordering::Relaxed))
                        })
                        .unwrap_or_else(|| {
                            for c in slot.iter() {
                                c.referenced.store(false, Ordering::Relaxed);
                            }
                            slot.len() - 1
                        });
                    victim_attrs = Some(slot.remove(victim).attrs.clone());
                    evicted_lru += 1;
                    slot.push(Candidate::new(suggestion, generation));
                    added = true;
                }
            }
        }
        if saturated {
            shard.saturated.fetch_add(1, Ordering::Relaxed);
        }
        if revalidated > 0 {
            shard.revalidated.fetch_add(revalidated, Ordering::Relaxed);
        }
        if evicted_lru > 0 {
            shard.evicted_lru.fetch_add(evicted_lru, Ordering::Relaxed);
            pool.candidates -= evicted_lru as usize;
        }
        if let Some(vattrs) = victim_attrs {
            // prune the victim's attrs from the reverse index unless a
            // survivor still carries them (the replacement candidate
            // is already in the slot, so shared attrs count)
            let orphaned: Vec<AttrId> = vattrs
                .iter()
                .copied()
                .filter(|a| {
                    !pool
                        .map
                        .get(&key)
                        .is_some_and(|s| s.iter().any(|c| c.attrs.contains(a)))
                })
                .collect();
            pool.unindex(key, &orphaned);
        }
        if added {
            pool.candidates += 1;
            if new_key {
                pool.ring.push(key);
            }
            if self.hygiene {
                // the reverse index only feeds the hygiene-on delta
                // walk; with hygiene off it would just accumulate
                for &a in suggestion {
                    pool.by_attr.entry(a).or_default().insert(key);
                }
            }
        } else if new_key && pool.map.get(&key).is_some_and(Vec::is_empty) {
            // a capped, hygiene-off publish created an empty slot: undo
            pool.map.remove(&key);
        }
        pool.note_occupancy();
    }

    /// Delta-aware pool maintenance for a master delta that moved the
    /// live master from `old_master` (the epoch the delta was applied
    /// to) to `generation`. Two regimes:
    ///
    /// - **Suggestion-preserving deltas** (pure updates whose changed
    ///   master columns avoid every rule's key columns — `lhs_m` and
    ///   pattern-aligned attrs): the suggestion function is untouched
    ///   (support probes see identical key values, and a pooled list
    ///   never encodes fix values), so every candidate stamped with
    ///   `old_master`'s generation is restamped to `generation` and
    ///   stays servable across the delta — the warm-start win.
    ///   Counted under `revalidated`. Candidates at even older
    ///   generations are *not* revived: the preserving proof covers
    ///   only this one transition (see
    ///   [`restamp_generation`](Self::restamp_generation)).
    /// - **Everything else** (inserts, deletes, key-column updates):
    ///   derive the tainted R-side attribute set from the delta's
    ///   named rows (see the module docs) and evict every pooled
    ///   candidate whose attr list intersects it — the entries least
    ///   likely to ever be re-derived, freeing their capped slots.
    ///   Untainted survivors keep their retired stamps: the serve
    ///   gate holds them dormant until a fresh derivation republishes
    ///   the same list and restamps them.
    ///
    /// A no-op with hygiene off: there the gate retires the whole
    /// pool on every generation bump, hot or not.
    pub fn apply_master_delta(
        &self,
        rules: &RuleSet,
        old_master: &MasterIndex,
        delta: &MasterDelta,
        generation: u64,
    ) {
        if !self.hygiene {
            return;
        }
        if Self::preserves_suggestions(rules, old_master, delta) {
            self.restamp_generation(old_master.generation(), generation);
            return;
        }
        let tainted = Self::tainted_attrs(rules, old_master, delta);
        if tainted.is_empty() {
            return;
        }
        for shard in self.shards.iter() {
            let mut pool = shard.pool.write().expect("suggestion cache shard poisoned");
            // collect the touched keys through the reverse index:
            // O(touched entries), never a scan of the whole shard
            let mut touched: FxHashSet<u64> = FxHashSet::default();
            for a in tainted.iter() {
                if let Some(keys) = pool.by_attr.get(&a) {
                    touched.extend(keys.iter().copied());
                }
            }
            if touched.is_empty() {
                continue;
            }
            let mut evicted = 0u64;
            let mut removed_key = false;
            for &key in &touched {
                let Some(slot) = pool.map.get_mut(&key) else {
                    continue; // stale reverse-index entry
                };
                let before = slot.len();
                let mut evicted_attrs: FxHashSet<AttrId> = FxHashSet::default();
                slot.retain(|c| {
                    if c.intersects(&tainted) {
                        evicted_attrs.extend(c.attrs.iter().copied());
                        false
                    } else {
                        true
                    }
                });
                evicted += (before - slot.len()) as u64;
                // tainted attrs never survive in this key, but an
                // evicted candidate's *untainted* attrs may still be
                // carried by a survivor — only orphaned attrs leave
                // the reverse index
                let orphaned: Vec<AttrId> = evicted_attrs
                    .into_iter()
                    .filter(|a| !slot.iter().any(|c| c.attrs.contains(a)))
                    .collect();
                if slot.is_empty() {
                    pool.map.remove(&key);
                    removed_key = true;
                }
                pool.unindex(key, &orphaned);
            }
            if removed_key {
                // compact stale ring slots now rather than waiting for
                // the clock hand: under delta churn they would pile up
                // long before any cap event sweeps them
                let ShardPool { map, ring, .. } = &mut *pool;
                ring.retain(|k| map.contains_key(k));
            }
            pool.candidates -= evicted as usize;
            shard.evicted_delta.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// The R-side attribute taint of a delta: master attrs whose
    /// values the delta changes (updates diff old vs new per column;
    /// deletes taint every non-null column of the removed row; inserts
    /// taint nothing — they are provably monotone for suggestion
    /// validity), mapped through every rule whose master footprint
    /// they intersect to that rule's `X ∪ {B}`.
    fn tainted_attrs(rules: &RuleSet, old_master: &MasterIndex, delta: &MasterDelta) -> AttrSet {
        let mut touched_m = AttrSet::from_bits(0);
        for (row, new) in delta.updates() {
            let old = old_master.tuple(*row);
            for (a, v) in old.iter() {
                if v != new.get(a) {
                    touched_m.insert(a);
                }
            }
        }
        for &row in delta.deletes() {
            for (a, v) in old_master.tuple(row).iter() {
                if !v.is_null() {
                    touched_m.insert(a);
                }
            }
        }
        let mut tainted = AttrSet::from_bits(0);
        if touched_m.is_empty() {
            return tainted;
        }
        for (_, rule) in rules.iter() {
            let mut footprint = AttrSet::collect_from(rule.lhs_m().iter().copied());
            footprint.insert(rule.rhs_m());
            for &a in rule.lhs_p() {
                if let Some(m) = rule.master_attr_for(a) {
                    footprint.insert(m);
                }
            }
            if !footprint.is_disjoint(&touched_m) {
                for &a in rule.lhs() {
                    tainted.insert(a);
                }
                tainted.insert(rule.rhs());
            }
        }
        tainted
    }

    /// `true` iff the delta provably leaves the suggestion function
    /// unchanged for every `(tuple, validated)` pair: it is pure
    /// updates (inserts add support, deletes remove it — both can
    /// change rule applicability), and no changed column is a key
    /// column (`lhs_m` or pattern-aligned) of any rule. Fix-source
    /// (`rhs_m`) changes alter the values `TransFix` propagates, but
    /// a suggestion is an attr list — its derivation only probes
    /// master *key* columns.
    fn preserves_suggestions(
        rules: &RuleSet,
        old_master: &MasterIndex,
        delta: &MasterDelta,
    ) -> bool {
        if !delta.inserts().is_empty() || delta.has_deletes() {
            return false;
        }
        let mut touched_m = AttrSet::from_bits(0);
        for (row, new) in delta.updates() {
            let old = old_master.tuple(*row);
            for (a, v) in old.iter() {
                if v != new.get(a) {
                    touched_m.insert(a);
                }
            }
        }
        if touched_m.is_empty() {
            return true;
        }
        for (_, rule) in rules.iter() {
            let mut keys = AttrSet::collect_from(rule.lhs_m().iter().copied());
            for &a in rule.lhs_p() {
                if let Some(m) = rule.master_attr_for(a) {
                    keys.insert(m);
                }
            }
            if !keys.is_disjoint(&touched_m) {
                return false;
            }
        }
        true
    }

    /// Freshen the stamp of every pooled candidate currently at
    /// generation `from` to `to` (the suggestion-preserving-delta
    /// path), counting each bump as a revalidation. Only the `from`
    /// generation is restamped: the preserving proof covers exactly
    /// the `from → to` transition, so entries left dormant by an
    /// earlier non-preserving delta (or published by a worker still
    /// pinned on an older epoch) must stay dormant until a fresh
    /// derivation republishes them — reviving them here would let a
    /// candidate the proof never covered pass the serve gate and
    /// steer an interaction away from the fresh derivation (D12).
    /// Stamps have interior mutability, so the shard read lock
    /// suffices.
    fn restamp_generation(&self, from: u64, to: u64) {
        for shard in self.shards.iter() {
            let pool = shard.pool.read().expect("suggestion cache shard poisoned");
            let mut revalidated = 0u64;
            for slot in pool.map.values() {
                for c in slot {
                    if c.generation.load(Ordering::Relaxed) == from {
                        c.generation.store(to, Ordering::Relaxed);
                        revalidated += 1;
                    }
                }
            }
            if revalidated > 0 {
                shard.revalidated.fetch_add(revalidated, Ordering::Relaxed);
            }
        }
    }

    /// Serve a suggestion for `t` under `validated`: re-check pooled
    /// candidates first (a hit), else compute fresh, publish, and
    /// return it (a miss). `hit` reports which path answered. Checks
    /// run on a snapshot outside the shard lock.
    pub fn suggest_through(
        &self,
        rules: &RuleSet,
        master: &MasterIndex,
        t: &Tuple,
        validated: AttrSet,
        hit: &mut bool,
    ) -> Option<Vec<AttrId>> {
        self.suggest_through_with(
            rules,
            master,
            t,
            validated,
            hit,
            None,
            &mut ProbeScratch::new(),
        )
    }

    /// [`suggest_through`](Self::suggest_through) with an optional
    /// compiled [`RulePlan`] and a caller-owned [`ProbeScratch`]
    /// routing the candidate re-checks' and the fallback computation's
    /// master probes.
    #[allow(clippy::too_many_arguments)]
    pub fn suggest_through_with(
        &self,
        rules: &RuleSet,
        master: &MasterIndex,
        t: &Tuple,
        validated: AttrSet,
        hit: &mut bool,
        plan: Option<&RulePlan>,
        scratch: &mut ProbeScratch,
    ) -> Option<Vec<AttrId>> {
        let shard = self.shard(validated.bits());
        let generation = master.generation();
        for cand in self.snapshot(validated) {
            // the serve gate of invariant D12: only candidates stamped
            // with the probing epoch's generation are ever served, in
            // *both* hygiene modes. A retired-generation candidate can
            // pass the `is_suggestion` re-check under the new master
            // and still steer the interaction to a different final
            // tuple than a fresh derivation would (the check proves
            // validity, not canonicity), so stale entries lie dormant
            // until a fresh computation re-derives the same list and
            // the publish dedup restamps them (`revalidated`).
            if cand.generation.load(Ordering::Relaxed) != generation {
                continue;
            }
            let ok = match plan {
                Some(p) => is_suggestion_with(rules, master, t, validated, &cand.attrs, p, scratch),
                None => is_suggestion(rules, master, t, validated, &cand.attrs),
            };
            if ok {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                if self.hygiene {
                    cand.referenced.store(true, Ordering::Relaxed);
                }
                *hit = true;
                return Some(cand.attrs.to_vec());
            }
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        *hit = false;
        let computed = match plan {
            Some(p) => suggest_with(rules, master, t, validated, p, scratch),
            None => suggest(rules, master, t, validated),
        }
        .map(|s| s.attrs);
        if let Some(attrs) = &computed {
            self.publish(validated, attrs, generation);
        }
        computed
    }

    /// Total pooled candidates across all shards and keys.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.pool
                    .read()
                    .expect("suggestion cache shard poisoned")
                    .candidates
            })
            .sum()
    }

    /// `true` iff nothing is currently pooled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A [`stats`](Self::stats) snapshot with the top-level `hits` /
    /// `misses` replaced by counters the caller attributes to one batch
    /// or session (its workers' own probe counts), while `entries` and
    /// `per_shard` keep describing the engine-lifetime pool. Worker-side
    /// probe counters tick 1:1 with the cache-side atomics, so summing
    /// attributed snapshots over every batch the engine ever ran
    /// reproduces the engine-global `hits` / `misses` exactly.
    pub fn attributed(&self, hits: u64, misses: u64) -> SharedCacheStats {
        let mut stats = self.stats();
        stats.hits = hits;
        stats.misses = misses;
        stats
    }

    /// Snapshot aggregated and per-shard counters.
    pub fn stats(&self) -> SharedCacheStats {
        let per_shard: Vec<ShardCounters> = self
            .shards
            .iter()
            .map(|s| {
                let pool = s.pool.read().expect("suggestion cache shard poisoned");
                ShardCounters {
                    hits: s.hits.load(Ordering::Relaxed),
                    misses: s.misses.load(Ordering::Relaxed),
                    entries: pool.candidates as u64,
                    keys: pool.map.len() as u64,
                    evicted_delta: s.evicted_delta.load(Ordering::Relaxed),
                    evicted_lru: s.evicted_lru.load(Ordering::Relaxed),
                    revalidated: s.revalidated.load(Ordering::Relaxed),
                    saturated: s.saturated.load(Ordering::Relaxed),
                    keys_high_water: pool.keys_hw as u64,
                    entries_high_water: pool.candidates_hw as u64,
                }
            })
            .collect();
        let sum = |f: fn(&ShardCounters) -> u64| per_shard.iter().map(f).sum();
        SharedCacheStats {
            hits: sum(|c| c.hits),
            misses: sum(|c| c.misses),
            entries: sum(|c| c.entries),
            keys: sum(|c| c.keys),
            evicted_delta: sum(|c| c.evicted_delta),
            evicted_lru: sum(|c| c.evicted_lru),
            revalidated: sum(|c| c.revalidated),
            saturated: sum(|c| c.saturated),
            keys_high_water: sum(|c| c.keys_high_water),
            entries_high_water: sum(|c| c.entries_high_water),
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{Relation, Schema, Value};
    use std::sync::Arc as StdArc;

    fn aset(bits: u64) -> AttrSet {
        AttrSet::from_bits(bits)
    }

    fn sugg(ids: &[u16]) -> Vec<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn publish_then_candidates_round_trip() {
        let cache = SharedSuggestionCache::new();
        assert!(cache.is_empty());
        cache.publish(aset(0b011), &sugg(&[2, 3]), 0);
        cache.publish(aset(0b011), &sugg(&[4]), 0);
        cache.publish(aset(0b100), &sugg(&[0]), 0);
        let pool = cache.candidates(aset(0b011));
        assert_eq!(pool.len(), 2);
        assert_eq!(&*pool[0], &sugg(&[2, 3])[..]);
        assert_eq!(cache.len(), 3);
        assert!(cache.candidates(aset(0b111)).is_empty());
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.keys, 2);
        assert_eq!(stats.entries_high_water, 3);
    }

    #[test]
    fn publishing_is_deduplicated() {
        let cache = SharedSuggestionCache::new();
        cache.publish(aset(1), &sugg(&[5]), 0);
        cache.publish(aset(1), &sugg(&[5]), 3);
        assert_eq!(cache.len(), 1, "identical candidate pooled once");
        assert_eq!(
            cache.candidates_with_generations(aset(1)),
            vec![(sugg(&[5]), 3)],
            "republish freshens the stamp"
        );
        assert_eq!(
            cache.stats().revalidated,
            1,
            "a stamp-freshening republish is the revalidation event"
        );
    }

    #[test]
    fn candidate_cap_is_enforced() {
        let cache = SharedSuggestionCache::new();
        for i in 0..(SharedSuggestionCache::MAX_CANDIDATES_PER_KEY as u16 + 10) {
            cache.publish(aset(7), &sugg(&[i]), 0);
        }
        assert_eq!(
            cache.candidates(aset(7)).len(),
            SharedSuggestionCache::MAX_CANDIDATES_PER_KEY
        );
        let stats = cache.stats();
        assert_eq!(stats.saturated, 10, "every cap event is counted");
        assert_eq!(stats.evicted_lru, 10, "hygiene on: the clock made room");
    }

    #[test]
    fn hygiene_off_reproduces_insert_only_drops() {
        let cache = SharedSuggestionCache::with_hygiene(false);
        for i in 0..(SharedSuggestionCache::MAX_CANDIDATES_PER_KEY as u16 + 10) {
            cache.publish(aset(7), &sugg(&[i]), 0);
        }
        let pool = cache.candidates(aset(7));
        assert_eq!(pool.len(), SharedSuggestionCache::MAX_CANDIDATES_PER_KEY);
        // insert-only: the *first* cap-many candidates survive
        assert_eq!(&*pool[0], &sugg(&[0])[..]);
        let stats = cache.stats();
        assert_eq!(stats.saturated, 10, "drops are observable in off mode");
        assert_eq!(stats.evicted_lru, 0, "but nothing was evicted");
    }

    #[test]
    fn key_cap_clock_evicts_unreferenced_keys() {
        let cache = SharedSuggestionCache::with_limits(true, 2, 4);
        // shard selection is hash-scattered, so drive one shard by
        // publishing keys that land in it: find three co-resident keys
        let shard0 = cache.shard(1) as *const CacheShard;
        let mut keys: Vec<u64> = Vec::new();
        let mut bits = 1u64;
        while keys.len() < 3 {
            if std::ptr::eq(cache.shard(bits), shard0) {
                keys.push(bits);
            }
            bits += 1;
        }
        cache.publish(aset(keys[0]), &sugg(&[1]), 0);
        cache.publish(aset(keys[1]), &sugg(&[2]), 0);
        // mark the first key referenced: the clock must pass it over
        for cand in cache.snapshot(aset(keys[0])) {
            cand.referenced.store(true, Ordering::Relaxed);
        }
        cache.publish(aset(keys[2]), &sugg(&[3]), 1);
        assert_eq!(
            cache.candidates(aset(keys[1])).len(),
            0,
            "the unreferenced key was evicted"
        );
        assert_eq!(
            cache.candidates(aset(keys[0])).len(),
            1,
            "referenced key survives"
        );
        assert_eq!(cache.candidates(aset(keys[2])).len(), 1, "new key admitted");
        let stats = cache.stats();
        assert_eq!(stats.evicted_lru, 1);
        assert_eq!(stats.saturated, 1);
    }

    /// The satellite cache-sharing test, at the cache's own level: a
    /// suggestion published by one worker thread is observed by
    /// another. (The engine-level version lives in `engine::tests`.)
    #[test]
    fn publish_by_one_thread_is_observed_by_another() {
        let cache = SharedSuggestionCache::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                cache.publish(aset(0b101), &sugg(&[5, 6]), 0);
            })
            .join()
            .expect("writer thread");
            s.spawn(|| {
                let seen = cache.candidates(aset(0b101));
                assert_eq!(seen.len(), 1, "published candidate visible");
                assert_eq!(&*seen[0], &sugg(&[5, 6])[..]);
            })
            .join()
            .expect("reader thread");
        });
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn stats_sum_per_shard_counters() {
        let cache = SharedSuggestionCache::new();
        for bits in 1..100u64 {
            cache.publish(aset(bits), &sugg(&[1]), 0);
        }
        let stats = cache.stats();
        assert_eq!(stats.per_shard.len(), SHARDS);
        assert_eq!(stats.entries, 99);
        assert_eq!(stats.keys, 99);
        assert_eq!(stats.keys_high_water, 99);
        assert!(
            stats.per_shard.iter().filter(|c| c.entries > 0).count() > 1,
            "keys spread across shards"
        );
        assert_eq!(stats.hits + stats.misses, 0, "no probes yet");
        assert_eq!(stats.hit_rate(), 0.0);
    }

    /// Build a tiny two-rule workload for the taint/eviction tests:
    /// rule `r0` keys R.a0 on M.m0 and fixes R.a1 from M.m1; rule `r1`
    /// keys R.a2 on M.m2 and fixes R.a3 from M.m3.
    fn taint_fixture() -> (RuleSet, MasterIndex) {
        let r = Schema::new("R", ["a0", "a1", "a2", "a3"]).unwrap();
        let rm = Schema::new("M", ["m0", "m1", "m2", "m3"]).unwrap();
        let rule0 = certainfix_rules::EditingRule::build(&r, &rm)
            .name("r0")
            .key("a0", "m0")
            .fix("a1", "m1")
            .finish()
            .unwrap();
        let rule1 = certainfix_rules::EditingRule::build(&r, &rm)
            .name("r1")
            .key("a2", "m2")
            .fix("a3", "m3")
            .finish()
            .unwrap();
        let rules = RuleSet::from_rules(r, rm.clone(), vec![rule0, rule1]).expect("rules build");
        let master = Relation::new(
            rm,
            vec![
                Tuple::new(vec![
                    Value::from("k0"),
                    Value::from("v0"),
                    Value::from("k2"),
                    Value::from("v2"),
                ]),
                Tuple::new(vec![
                    Value::from("x0"),
                    Value::from("y0"),
                    Value::from("x2"),
                    Value::from("y2"),
                ]),
            ],
        )
        .expect("master builds");
        (rules, MasterIndex::new(StdArc::new(master)))
    }

    /// The satellite unit test: a delta touching master key column
    /// `m0` (rule r0's key) evicts exactly the pooled entries whose
    /// candidate lists intersect r0's R-side attrs {a0, a1}; entries
    /// over r1's attrs survive, keeping their retired stamps (dormant
    /// until a republish revalidates them).
    #[test]
    fn delta_evicts_exactly_intersecting_entries() {
        let (rules, master) = taint_fixture();
        let cache = SharedSuggestionCache::new();
        cache.publish(aset(0b0001), &sugg(&[1]), 1); // intersects {a0,a1}
        cache.publish(aset(0b0001), &sugg(&[3]), 1); // disjoint from {a0,a1}
        cache.publish(aset(0b0100), &sugg(&[3]), 1); // disjoint, other key
        cache.publish(aset(0b0100), &sugg(&[1, 3]), 1); // intersects via a1
        assert_eq!(cache.len(), 4);

        // update row 0's m0 value: a key-column change, taints r0 only
        let mut changed = master.tuple(0).clone();
        changed.set(AttrId(0), Value::from("k0-changed"));
        let delta = MasterDelta::new().update(0, changed);
        cache.apply_master_delta(&rules, &master, &delta, 2);

        assert_eq!(
            cache.candidates_with_generations(aset(0b0001)),
            vec![(sugg(&[3]), 1)],
            "intersecting candidate evicted, survivor keeps its stamp"
        );
        assert_eq!(
            cache.candidates_with_generations(aset(0b0100)),
            vec![(sugg(&[3]), 1)],
            "intersection through any attr of the list evicts"
        );
        let stats = cache.stats();
        assert_eq!(stats.evicted_delta, 2);
        assert_eq!(stats.revalidated, 0, "survivors are dormant, not restamped");
        assert_eq!(stats.entries, 2);

        // a republish under the new generation revives the survivor
        cache.publish(aset(0b0001), &sugg(&[3]), 2);
        assert_eq!(
            cache.candidates_with_generations(aset(0b0001)),
            vec![(sugg(&[3]), 2)]
        );
        assert_eq!(cache.stats().revalidated, 1);
    }

    /// Insert-only deltas cannot invalidate a pooled suggestion
    /// (monotonicity; see the module docs), so they must not evict.
    #[test]
    fn insert_only_deltas_evict_nothing() {
        let (rules, master) = taint_fixture();
        let cache = SharedSuggestionCache::new();
        cache.publish(aset(0b0001), &sugg(&[1]), 1);
        cache.publish(aset(0b0100), &sugg(&[3]), 1);
        let delta = MasterDelta::new().insert(Tuple::new(vec![
            Value::from("n0"),
            Value::from("n1"),
            Value::from("n2"),
            Value::from("n3"),
        ]));
        cache.apply_master_delta(&rules, &master, &delta, 2);
        assert_eq!(cache.len(), 2, "nothing evicted");
        assert_eq!(cache.stats().evicted_delta, 0);
        assert_eq!(
            cache.stats().revalidated,
            0,
            "inserts add support, so the pool is retired, not restamped"
        );
    }

    /// A pure-update delta that only touches fix-source columns
    /// (never a rule key) preserves the suggestion function: the pool
    /// is restamped wholesale and keeps serving across the generation
    /// bump instead of going dormant.
    #[test]
    fn fix_only_updates_restamp_the_pool() {
        let (rules, master0) = taint_fixture();
        // change row 0's m1 and m3 — both fix sources, no key columns
        let mut changed = master0.tuple(0).clone();
        changed.set(AttrId(1), Value::from("v0-changed"));
        changed.set(AttrId(3), Value::from("v2-changed"));
        let delta = MasterDelta::new().update(0, changed);
        let master1 = master0.apply_delta(&delta).expect("update applies");

        let cache = SharedSuggestionCache::new();
        let validated = aset(0b0001);
        cache.publish(validated, &sugg(&[2, 3]), 0);
        cache.apply_master_delta(&rules, &master0, &delta, master1.generation());

        let stats = cache.stats();
        assert_eq!(stats.evicted_delta, 0, "nothing evicted");
        assert_eq!(stats.revalidated, 1, "the whole pool restamped");
        assert_eq!(
            cache.candidates_with_generations(validated),
            vec![(sugg(&[2, 3]), master1.generation())]
        );

        // ... and the restamped entry serves under the new epoch
        let t = Tuple::new(vec![
            Value::from("k0"),
            Value::Null,
            Value::from("k2"),
            Value::Null,
        ]);
        let mut hit = false;
        let served = cache.suggest_through(&rules, &master1, &t, validated, &mut hit);
        assert_eq!(served, Some(sugg(&[2, 3])));
        assert!(hit, "pool stays hot across a suggestion-preserving delta");
    }

    /// The D12 serve gate: a candidate stamped with a retired
    /// generation is never served (in either hygiene mode), even when
    /// it would still pass the `is_suggestion` re-check — it lies
    /// dormant until a fresh derivation republishes the list, which
    /// restamps it and makes it servable again.
    #[test]
    fn retired_generation_candidates_lie_dormant_until_republished() {
        let (rules, master0) = taint_fixture();
        let master1 = master0
            .apply_delta(&MasterDelta::new().insert(Tuple::new(vec![
                Value::from("n0"),
                Value::from("n1"),
                Value::from("n2"),
                Value::from("n3"),
            ])))
            .expect("insert delta applies");
        assert_eq!(master1.generation(), 1);

        for hygiene in [true, false] {
            let cache = SharedSuggestionCache::with_hygiene(hygiene);
            let t = Tuple::new(vec![
                Value::from("k0"),
                Value::Null,
                Value::from("k2"),
                Value::Null,
            ]);
            // only a0 validated: closure({a0}) = {a0,a1}, so a real
            // suggestion is needed to reach a2/a3
            let validated = aset(0b0001);
            cache.publish(validated, &sugg(&[2, 3]), 0);

            // same generation as the stamp: served
            let mut hit = false;
            let served = cache.suggest_through(&rules, &master0, &t, validated, &mut hit);
            assert_eq!(served, Some(sugg(&[2, 3])));
            assert!(
                hit,
                "current-generation candidate serves (hygiene={hygiene})"
            );

            // newer generation: the stamp is retired, so the probe
            // misses and recomputes even though the list would still
            // pass the re-check under the new master
            let mut hit = true;
            let fresh = cache.suggest_through(&rules, &master1, &t, validated, &mut hit);
            assert!(!hit, "retired stamp is never served (hygiene={hygiene})");
            let fresh = fresh.expect("the miss fell through to a fresh compute");
            assert!(!fresh.is_empty(), "fixture needs a nonempty suggestion");

            // ... and the publish of that fresh result makes the next
            // probe hit again
            let mut hit = false;
            cache.suggest_through(&rules, &master1, &t, validated, &mut hit);
            assert!(
                hit,
                "republished candidate serves again (hygiene={hygiene})"
            );
        }
    }

    /// A preserving delta only revives the generation it was applied
    /// to: entries left dormant by an earlier non-preserving delta
    /// stay dormant until a fresh derivation republishes them — the
    /// preserving proof covers exactly one generation transition.
    #[test]
    fn preserving_restamp_skips_multi_generation_dormant_entries() {
        let (rules, master0) = taint_fixture();
        let cache = SharedSuggestionCache::new();
        // survives the taint walk (disjoint from r0's {a0,a1}) but
        // goes dormant at generation 0
        cache.publish(aset(0b0100), &sugg(&[3]), 0);
        let mut keyed = master0.tuple(0).clone();
        keyed.set(AttrId(0), Value::from("k0-changed"));
        let d1 = MasterDelta::new().update(0, keyed);
        let master1 = master0.apply_delta(&d1).expect("delta applies");
        cache.apply_master_delta(&rules, &master0, &d1, master1.generation());
        assert_eq!(
            cache.candidates_with_generations(aset(0b0100)),
            vec![(sugg(&[3]), 0)],
            "untainted entry survives the non-preserving delta, dormant"
        );
        // a fresh entry published under the new epoch
        cache.publish(aset(0b0001), &sugg(&[1]), master1.generation());
        // a preserving (fix-column-only) delta on top
        let mut fixed = master1.tuple(0).clone();
        fixed.set(AttrId(1), Value::from("v0-changed"));
        let d2 = MasterDelta::new().update(0, fixed);
        let master2 = master1.apply_delta(&d2).expect("delta applies");
        cache.apply_master_delta(&rules, &master1, &d2, master2.generation());
        assert_eq!(
            cache.candidates_with_generations(aset(0b0001)),
            vec![(sugg(&[1]), master2.generation())],
            "the pre-delta generation is restamped"
        );
        assert_eq!(
            cache.candidates_with_generations(aset(0b0100)),
            vec![(sugg(&[3]), 0)],
            "a multi-generation-dormant entry is never revived"
        );
        assert_eq!(cache.stats().revalidated, 1);
    }

    /// At cap pressure with every candidate current-generation and
    /// referenced, the fallback displaces the *newest* entry, keeping
    /// the serve-visible prefix (the order the serve loop scans) stable.
    #[test]
    fn cap_pressure_on_referenced_current_entries_evicts_the_newest() {
        let cache = SharedSuggestionCache::with_limits(true, 16, 4);
        for i in 0..4u16 {
            cache.publish(aset(9), &sugg(&[i]), 0);
        }
        for c in cache.snapshot(aset(9)) {
            c.referenced.store(true, Ordering::Relaxed);
        }
        cache.publish(aset(9), &sugg(&[9]), 0);
        let pool = cache.candidates(aset(9));
        assert_eq!(pool.len(), 4);
        assert_eq!(&*pool[0], &sugg(&[0])[..], "head of the order is stable");
        assert_eq!(&*pool[1], &sugg(&[1])[..]);
        assert_eq!(&*pool[2], &sugg(&[2])[..]);
        assert_eq!(&*pool[3], &sugg(&[9])[..], "only the tail was displaced");
        assert_eq!(cache.stats().evicted_lru, 1);
    }

    /// The reverse index and clock ring exactly mirror the pool: every
    /// indexed (attr, key) pair has a pooled holder and vice versa.
    fn assert_reverse_index_exact(cache: &SharedSuggestionCache) {
        for shard in cache.shards.iter() {
            let pool = shard.pool.read().expect("shard poisoned");
            for (a, keys) in &pool.by_attr {
                assert!(!keys.is_empty(), "empty attr sets are reclaimed");
                for key in keys {
                    let slot = pool.map.get(key).expect("indexed key is pooled");
                    assert!(
                        slot.iter().any(|c| c.attrs.contains(a)),
                        "indexed attr {a:?} has a pooled holder in key {key}"
                    );
                }
            }
            for (key, slot) in &pool.map {
                for c in slot {
                    for a in c.attrs.iter() {
                        assert!(
                            pool.by_attr.get(a).is_some_and(|k| k.contains(key)),
                            "pooled attr {a:?} of key {key} is indexed"
                        );
                    }
                }
                assert!(pool.ring.contains(key), "pooled key {key} is on the ring");
            }
            for key in &pool.ring {
                assert!(pool.map.contains_key(key), "ring slot {key} is live");
            }
        }
    }

    /// Every eviction path — within-key second chance, key-cap clock,
    /// delta walk — prunes the reverse index eagerly, so it stays
    /// bounded by the pool instead of growing with every distinct key
    /// ever published.
    #[test]
    fn reverse_index_is_pruned_on_every_eviction_path() {
        let (rules, master) = taint_fixture();
        let cache = SharedSuggestionCache::with_limits(true, 2, 2);
        // within-key second chance: the third publish displaces one
        cache.publish(aset(0b0001), &sugg(&[1]), 1);
        cache.publish(aset(0b0001), &sugg(&[3]), 1);
        cache.publish(aset(0b0001), &sugg(&[1, 3]), 1);
        assert_reverse_index_exact(&cache);
        // key-cap clock: a third co-resident key forces a key eviction
        let shard0 = cache.shard(0b0001) as *const CacheShard;
        let mut keys: Vec<u64> = Vec::new();
        let mut bits = 2u64;
        while keys.len() < 2 {
            if bits != 0b0001 && std::ptr::eq(cache.shard(bits), shard0) {
                keys.push(bits);
            }
            bits += 1;
        }
        cache.publish(aset(keys[0]), &sugg(&[2]), 1);
        cache.publish(aset(keys[1]), &sugg(&[2, 3]), 1);
        assert!(cache.stats().evicted_lru >= 2, "clock evicted a key");
        assert_reverse_index_exact(&cache);
        // delta walk: taint r0 ({a0, a1}) and evict intersecting lists
        let mut changed = master.tuple(0).clone();
        changed.set(AttrId(0), Value::from("k0-changed"));
        let delta = MasterDelta::new().update(0, changed);
        cache.apply_master_delta(&rules, &master, &delta, 2);
        assert_reverse_index_exact(&cache);
    }

    /// A delete taints every rule keyed on the removed row's non-null
    /// columns; with hygiene off the same delta is a no-op.
    #[test]
    fn deletes_taint_and_hygiene_off_ignores() {
        let (rules, master) = taint_fixture();
        let on = SharedSuggestionCache::new();
        let off = SharedSuggestionCache::with_hygiene(false);
        for cache in [&on, &off] {
            cache.publish(aset(0b0001), &sugg(&[1]), 1);
            cache.publish(aset(0b0001), &sugg(&[3]), 1);
        }
        let delta = MasterDelta::new().delete(1);
        on.apply_master_delta(&rules, &master, &delta, 2);
        off.apply_master_delta(&rules, &master, &delta, 2);
        // the deleted row has all four columns non-null: both rules
        // taint, so both candidates intersect and are evicted
        assert_eq!(on.len(), 0);
        assert_eq!(on.stats().evicted_delta, 2);
        assert_eq!(off.len(), 2, "hygiene off never evicts");
        assert_eq!(off.stats().evicted_delta, 0);
    }
}
