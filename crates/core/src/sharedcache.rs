//! The shared concurrent suggestion cache.
//!
//! Computing a suggestion (the greedy set-cover loop of
//! [`certainfix_reasoning::suggest()`](certainfix_reasoning::suggest())) is the single most expensive
//! step of an interaction round; *checking* whether a previously
//! computed suggestion also works for another tuple is one closure
//! ([`certainfix_reasoning::is_suggestion`]) — that asymmetry is what
//! the paper's `Suggest+` BDD exploits within one worker. This cache
//! exploits it **across** workers: every suggestion any worker computes
//! is published into a process-shared pool, organized by the validated
//! [`AttrSet`] it was computed under, and any other worker whose local
//! diagram misses re-checks the pooled candidates before paying for a
//! fresh computation.
//!
//! # Design
//!
//! A sharded hash map: `SHARDS` independent `RwLock<FxHashMap>` slices
//! selected from the key's hash, so lookups of different keys rarely
//! contend and hits take only a shard *read* lock. Keys and stored
//! candidates are the `Copy` one-word bitsets and id-lists of PR 1's
//! interned value layer (an [`AttrSet`] is a `u64`, an
//! [`AttrId`] a `u16`), so hashing, equality, and candidate dedup are
//! integer operations with no string traffic. Candidate checks run
//! *outside* the lock on a snapshot of the (short, deduplicated)
//! candidate list. Each shard carries its own atomic hit/miss
//! counters; workers additionally count their own probes into
//! [`MonitorStats`](crate::MonitorStats), whose
//! [`merge`](crate::MonitorStats::merge) surfaces them per batch.
//!
//! # Determinism
//!
//! Like the per-worker BDD, reuse is **checked**: a candidate is served
//! only after [`certainfix_reasoning::is_suggestion`] accepts it for
//! the probing tuple, so
//! every served suggestion is valid and the final repaired tuples are
//! unaffected — but a checked candidate may differ from what a fresh
//! computation would have produced, so round *traces* (and
//! trace-derived metrics) can differ from a run without the cache.
//! Runs that must be bit-identical to sequential plain `CertainFix`
//! should disable both caches; see the engine's determinism notes.
//!
//! # Growth
//!
//! The pool is insert-only but doubly capped (keys per shard,
//! candidates per key); a dropped insert only costs future misses,
//! never correctness. Occupancy is observable via
//! [`SharedSuggestionCache::len`] and [`SharedCacheStats::entries`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use certainfix_reasoning::{is_suggestion, is_suggestion_with, suggest, suggest_with};
use certainfix_relation::{AttrId, AttrSet, FxHashMap, MasterIndex, Tuple};
use certainfix_rules::{ProbeScratch, RulePlan, RuleSet};

/// Number of lock shards (power of two).
const SHARDS: usize = 16;

/// One lock shard: its slice of the candidate pool plus counters.
#[derive(Debug, Default)]
struct CacheShard {
    /// validated-set bits → candidate suggestions, in publication order.
    map: RwLock<FxHashMap<u64, Vec<Arc<[AttrId]>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Counters of one cache shard, snapshot by
/// [`SharedSuggestionCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Probes answered by a checked candidate of this shard.
    pub hits: u64,
    /// Probes no candidate of this shard could answer.
    pub misses: u64,
    /// Candidates currently pooled in this shard.
    pub entries: u64,
}

/// Aggregated cache statistics (plus the per-shard breakdown).
///
/// Two provenances share this shape: [`SharedSuggestionCache::stats`]
/// snapshots engine-global counters (cumulative over the engine's
/// lifetime), while [`SharedSuggestionCache::attributed`] scopes the
/// top-level `hits` / `misses` to one batch or session — the form
/// reports carry, so that per-session numbers sum to the global ones.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Probes served from the pool (engine-global in a
    /// [`stats`](SharedSuggestionCache::stats) snapshot; scoped to one
    /// batch/session in an [`attributed`](SharedSuggestionCache::attributed) one).
    pub hits: u64,
    /// Probes that fell through to a fresh computation (same scoping as
    /// `hits`).
    pub misses: u64,
    /// Total candidates pooled.
    pub entries: u64,
    /// Per-shard counters, in shard order.
    pub per_shard: Vec<ShardCounters>,
}

impl SharedCacheStats {
    /// Hit rate in `[0, 1]` (0 when the cache was never probed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The shared concurrent suggestion cache; see the [module
/// docs](self) for design and determinism notes.
#[derive(Debug)]
pub struct SharedSuggestionCache {
    shards: Box<[CacheShard]>,
}

impl Default for SharedSuggestionCache {
    fn default() -> Self {
        SharedSuggestionCache::new()
    }
}

impl SharedSuggestionCache {
    /// Distinct validated-set keys one shard accepts before dropping
    /// new keys (a pure hit-rate trade, never a correctness one).
    pub const MAX_KEYS_PER_SHARD: usize = 1 << 14;

    /// Candidates pooled per validated-set key before dropping more.
    pub const MAX_CANDIDATES_PER_KEY: usize = 64;

    /// An empty cache.
    pub fn new() -> SharedSuggestionCache {
        SharedSuggestionCache {
            shards: (0..SHARDS).map(|_| CacheShard::default()).collect(),
        }
    }

    fn shard(&self, key: u64) -> &CacheShard {
        // splitmix-style mix so dense validated-set words spread over
        // the shards instead of clustering in the low bits
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 56) as usize & (SHARDS - 1)]
    }

    /// The candidates pooled for `validated`, in publication order.
    pub fn candidates(&self, validated: AttrSet) -> Vec<Arc<[AttrId]>> {
        self.shard(validated.bits())
            .map
            .read()
            .expect("suggestion cache shard poisoned")
            .get(&validated.bits())
            .cloned()
            .unwrap_or_default()
    }

    /// Publish a computed suggestion for `validated`. Deduplicated;
    /// dropped silently once a cap is reached.
    pub fn publish(&self, validated: AttrSet, suggestion: &[AttrId]) {
        let shard = self.shard(validated.bits());
        let mut map = shard.map.write().expect("suggestion cache shard poisoned");
        if !map.contains_key(&validated.bits()) && map.len() >= Self::MAX_KEYS_PER_SHARD {
            return;
        }
        let pool = map.entry(validated.bits()).or_default();
        if pool.len() < Self::MAX_CANDIDATES_PER_KEY && !pool.iter().any(|c| **c == *suggestion) {
            pool.push(Arc::from(suggestion));
        }
    }

    /// Serve a suggestion for `t` under `validated`: re-check pooled
    /// candidates first (a hit), else compute fresh, publish, and
    /// return it (a miss). `hit` reports which path answered. Checks
    /// run on a snapshot outside the shard lock.
    pub fn suggest_through(
        &self,
        rules: &RuleSet,
        master: &MasterIndex,
        t: &Tuple,
        validated: AttrSet,
        hit: &mut bool,
    ) -> Option<Vec<AttrId>> {
        self.suggest_through_with(
            rules,
            master,
            t,
            validated,
            hit,
            None,
            &mut ProbeScratch::new(),
        )
    }

    /// [`suggest_through`](Self::suggest_through) with an optional
    /// compiled [`RulePlan`] and a caller-owned [`ProbeScratch`]
    /// routing the candidate re-checks' and the fallback computation's
    /// master probes.
    #[allow(clippy::too_many_arguments)]
    pub fn suggest_through_with(
        &self,
        rules: &RuleSet,
        master: &MasterIndex,
        t: &Tuple,
        validated: AttrSet,
        hit: &mut bool,
        plan: Option<&RulePlan>,
        scratch: &mut ProbeScratch,
    ) -> Option<Vec<AttrId>> {
        let shard = self.shard(validated.bits());
        for cand in self.candidates(validated) {
            let ok = match plan {
                Some(p) => is_suggestion_with(rules, master, t, validated, &cand, p, scratch),
                None => is_suggestion(rules, master, t, validated, &cand),
            };
            if ok {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                *hit = true;
                return Some(cand.to_vec());
            }
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        *hit = false;
        let computed = match plan {
            Some(p) => suggest_with(rules, master, t, validated, p, scratch),
            None => suggest(rules, master, t, validated),
        }
        .map(|s| s.attrs);
        if let Some(attrs) = &computed {
            self.publish(validated, attrs);
        }
        computed
    }

    /// Total pooled candidates across all shards and keys.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .read()
                    .expect("suggestion cache shard poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// `true` iff nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A [`stats`](Self::stats) snapshot with the top-level `hits` /
    /// `misses` replaced by counters the caller attributes to one batch
    /// or session (its workers' own probe counts), while `entries` and
    /// `per_shard` keep describing the engine-lifetime pool. Worker-side
    /// probe counters tick 1:1 with the cache-side atomics, so summing
    /// attributed snapshots over every batch the engine ever ran
    /// reproduces the engine-global `hits` / `misses` exactly.
    pub fn attributed(&self, hits: u64, misses: u64) -> SharedCacheStats {
        let mut stats = self.stats();
        stats.hits = hits;
        stats.misses = misses;
        stats
    }

    /// Snapshot aggregated and per-shard counters.
    pub fn stats(&self) -> SharedCacheStats {
        let per_shard: Vec<ShardCounters> = self
            .shards
            .iter()
            .map(|s| ShardCounters {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                entries: s
                    .map
                    .read()
                    .expect("suggestion cache shard poisoned")
                    .values()
                    .map(|v| v.len() as u64)
                    .sum(),
            })
            .collect();
        SharedCacheStats {
            hits: per_shard.iter().map(|c| c.hits).sum(),
            misses: per_shard.iter().map(|c| c.misses).sum(),
            entries: per_shard.iter().map(|c| c.entries).sum(),
            per_shard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aset(bits: u64) -> AttrSet {
        AttrSet::from_bits(bits)
    }

    fn sugg(ids: &[u16]) -> Vec<AttrId> {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn publish_then_candidates_round_trip() {
        let cache = SharedSuggestionCache::new();
        assert!(cache.is_empty());
        cache.publish(aset(0b011), &sugg(&[2, 3]));
        cache.publish(aset(0b011), &sugg(&[4]));
        cache.publish(aset(0b100), &sugg(&[0]));
        let pool = cache.candidates(aset(0b011));
        assert_eq!(pool.len(), 2);
        assert_eq!(&*pool[0], &sugg(&[2, 3])[..]);
        assert_eq!(cache.len(), 3);
        assert!(cache.candidates(aset(0b111)).is_empty());
    }

    #[test]
    fn publishing_is_deduplicated() {
        let cache = SharedSuggestionCache::new();
        cache.publish(aset(1), &sugg(&[5]));
        cache.publish(aset(1), &sugg(&[5]));
        assert_eq!(cache.len(), 1, "identical candidate pooled once");
    }

    #[test]
    fn candidate_cap_is_enforced() {
        let cache = SharedSuggestionCache::new();
        for i in 0..(SharedSuggestionCache::MAX_CANDIDATES_PER_KEY as u16 + 10) {
            cache.publish(aset(7), &sugg(&[i]));
        }
        assert_eq!(
            cache.candidates(aset(7)).len(),
            SharedSuggestionCache::MAX_CANDIDATES_PER_KEY
        );
    }

    /// The satellite cache-sharing test, at the cache's own level: a
    /// suggestion published by one worker thread is observed by
    /// another. (The engine-level version lives in `engine::tests`.)
    #[test]
    fn publish_by_one_thread_is_observed_by_another() {
        let cache = SharedSuggestionCache::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                cache.publish(aset(0b101), &sugg(&[5, 6]));
            })
            .join()
            .expect("writer thread");
            s.spawn(|| {
                let seen = cache.candidates(aset(0b101));
                assert_eq!(seen.len(), 1, "published candidate visible");
                assert_eq!(&*seen[0], &sugg(&[5, 6])[..]);
            })
            .join()
            .expect("reader thread");
        });
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn stats_sum_per_shard_counters() {
        let cache = SharedSuggestionCache::new();
        for bits in 1..100u64 {
            cache.publish(aset(bits), &sugg(&[1]));
        }
        let stats = cache.stats();
        assert_eq!(stats.per_shard.len(), SHARDS);
        assert_eq!(stats.entries, 99);
        assert!(
            stats.per_shard.iter().filter(|c| c.entries > 0).count() > 1,
            "keys spread across shards"
        );
        assert_eq!(stats.hits + stats.misses, 0, "no probes yet");
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
