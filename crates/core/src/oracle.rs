//! User oracles.
//!
//! The framework interacts with a user who can *assert attributes
//! correct* (and supply the right value where the entered one was
//! wrong). The paper's experiments simulate this: "User feedback was
//! simulated by providing the correct values of the given suggestions."
//! [`SimulatedUser`] implements exactly that, with an optional
//! *compliance* knob: real users do not always answer the whole
//! suggestion at once ("the users get back with a set S of attributes
//! ... where S may not necessarily be the same as sug", Sect. 5), and
//! partial compliance is what stretches fixes over several rounds.

use certainfix_relation::{AttrId, Tuple, Value};

/// The interaction contract of Fig. 3, line 5: given the tuple's
/// current state and a suggested attribute set, return the attributes
/// the user asserts correct, each with its correct value.
pub trait UserOracle {
    /// Respond to a suggestion. The response must be non-empty whenever
    /// `suggestion` is non-empty (the monitor cannot progress on an
    /// empty assertion).
    fn assert_correct(&mut self, t: &Tuple, suggestion: &[AttrId]) -> Vec<(AttrId, Value)>;
}

/// Boxed oracles forward transparently, so heterogeneous sessions (the
/// [`service`](crate::service) multiplexer hands every stream's oracles
/// around as `Box<dyn UserOracle>`) run through the same generic
/// pipelines as concrete ones.
impl<O: UserOracle + ?Sized> UserOracle for Box<O> {
    fn assert_correct(&mut self, t: &Tuple, suggestion: &[AttrId]) -> Vec<(AttrId, Value)> {
        (**self).assert_correct(t, suggestion)
    }
}

/// A ground-truth-backed simulated user.
pub struct SimulatedUser {
    clean: Tuple,
    /// Probability of answering each suggested attribute this round
    /// (at least one is always answered). 1.0 = answer everything.
    compliance: f64,
    /// Deterministic counter-based state for partial compliance.
    state: u64,
}

impl SimulatedUser {
    /// A fully compliant user who knows `clean`.
    pub fn new(clean: Tuple) -> SimulatedUser {
        SimulatedUser {
            clean,
            compliance: 1.0,
            state: 0x5EED,
        }
    }

    /// A user who answers each suggested attribute with probability
    /// `compliance` per round (deterministically seeded).
    pub fn with_compliance(clean: Tuple, compliance: f64, seed: u64) -> SimulatedUser {
        SimulatedUser {
            clean,
            compliance: compliance.clamp(0.0, 1.0),
            state: seed | 1,
        }
    }

    fn next_unit(&mut self) -> f64 {
        // splitmix64 step — deterministic, no rand dependency needed
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl UserOracle for SimulatedUser {
    fn assert_correct(&mut self, _t: &Tuple, suggestion: &[AttrId]) -> Vec<(AttrId, Value)> {
        let mut out: Vec<(AttrId, Value)> = Vec::with_capacity(suggestion.len());
        for &a in suggestion {
            if self.compliance >= 1.0 || self.next_unit() < self.compliance {
                out.push((a, *self.clean.get(a)));
            }
        }
        if out.is_empty() {
            if let Some(&a) = suggestion.first() {
                out.push((a, *self.clean.get(a)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::tuple;

    #[test]
    fn compliant_user_answers_everything_with_truth() {
        let clean = tuple!["a", "b", "c"];
        let mut u = SimulatedUser::new(clean.clone());
        let dirty = tuple!["x", "b", "z"];
        let resp = u.assert_correct(&dirty, &[AttrId(0), AttrId(2)]);
        assert_eq!(
            resp,
            vec![(AttrId(0), Value::str("a")), (AttrId(2), Value::str("c"))]
        );
    }

    #[test]
    fn partial_compliance_still_answers_something() {
        let clean = tuple!["a", "b", "c"];
        let mut u = SimulatedUser::with_compliance(clean, 0.0, 7);
        let resp = u.assert_correct(&tuple!["x", "y", "z"], &[AttrId(1), AttrId(2)]);
        assert_eq!(resp.len(), 1, "at least one attribute is asserted");
        assert_eq!(resp[0].0, AttrId(1));
    }

    #[test]
    fn partial_compliance_is_deterministic() {
        let clean = tuple!["a", "b", "c"];
        let suggestion = [AttrId(0), AttrId(1), AttrId(2)];
        let run = |seed| {
            let mut u = SimulatedUser::with_compliance(clean.clone(), 0.5, seed);
            (0..10)
                .map(|_| u.assert_correct(&clean, &suggestion).len())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn empty_suggestion_empty_answer() {
        let clean = tuple!["a"];
        let mut u = SimulatedUser::new(clean.clone());
        assert!(u.assert_correct(&clean, &[]).is_empty());
    }
}
