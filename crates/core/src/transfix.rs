//! Procedure `TransFix` (Fig. 5 of the paper).
//!
//! Given a tuple `t` with validated attributes `Z′`, `TransFix` walks
//! the rule dependency graph (Fig. 4): it seeds a *usable* set with the
//! rules whose premise is validated, applies them with matching master
//! tuples, and upgrades downstream rules from the *not-yet-usable* set
//! as their prerequisites become validated. Each rule is consumed at
//! most once, giving the `O(card(Σ)·|Σ|)` bound of Sect. 5.1.
//!
//! Unlike the static-analysis chase, `TransFix` runs after the
//! validation step has confirmed a unique fix, so disagreements are not
//! supposed to occur; if the master data nevertheless disagrees (two
//! master tuples sharing a key), the disputed update is *skipped* and
//! reported, keeping the correctness guarantee ("the attributes updated
//! are correct") intact.

use certainfix_relation::{AttrId, AttrSet, MasterIndex, Tuple, Value};
use certainfix_rules::{DependencyGraph, ProbeScratch, RulePlan, RuleSet};

/// One prescription scan over a candidate id list, shared by the
/// plan-backed (borrowed ids), block-prefetched, and legacy (owned
/// ids) probes: skip null master values, take the first non-null one,
/// flag a conflict if later candidates disagree.
fn prescribe(master: &MasterIndex, rhs_m: AttrId, ids: &[u32]) -> (Option<(Value, u32)>, bool) {
    let mut prescription: Option<(Value, u32)> = None;
    for &id in ids {
        let val = master.tuple(id).get(rhs_m);
        if val.is_null() {
            continue;
        }
        match &prescription {
            None => prescription = Some((*val, id)),
            Some((seen, _)) if seen != val => return (prescription, true),
            _ => {}
        }
    }
    (prescription, false)
}

/// Result of a `TransFix` run.
#[derive(Clone, Debug)]
pub struct TransFixOutcome {
    /// The tuple with validated fixes applied.
    pub tuple: Tuple,
    /// The extended validated set `Z′`.
    pub validated: AttrSet,
    /// Attributes written by rules during this run.
    pub fixed: AttrSet,
    /// Applied `(rule index, master row)` pairs, in order.
    pub steps: Vec<(usize, u32)>,
    /// Rule indices whose prescriptions were skipped as disputed
    /// (conflicting master evidence). Empty in the intended flow.
    pub disputed: Vec<usize>,
}

/// Run `TransFix` on `t` with validated set `validated`, probing the
/// master's shared lineage indexes directly (no compiled plan).
///
/// This is the *reference* path: the engine always runs the
/// plan-backed [`transfix_with`], and this function exists as the
/// independent oracle that tests and property checks compare it
/// against. Keep the two in lockstep.
pub fn transfix(
    rules: &RuleSet,
    master: &MasterIndex,
    graph: &DependencyGraph,
    t: &Tuple,
    validated: AttrSet,
) -> TransFixOutcome {
    transfix_impl(
        rules,
        master,
        graph,
        None,
        &mut ProbeScratch::new(),
        t,
        validated,
    )
}

/// [`transfix`] through a compiled [`RulePlan`] and a caller-owned
/// [`ProbeScratch`] — the allocation-free hot path the engine runs.
///
/// Each rule's key probe goes straight to its pinned index: no
/// `RwLock`, no key-list hashing, the projection lands in the reused
/// scratch buffer, and the hit list is *borrowed* from the index
/// rather than cloned. The plan probes the same hash maps as the
/// reference [`transfix`] path, so the outcome is bit-identical.
///
/// The plan must be compiled against `master`'s generation; after a
/// master delta, recompile (or pick up the next epoch) before calling.
pub fn transfix_with(
    rules: &RuleSet,
    master: &MasterIndex,
    graph: &DependencyGraph,
    plan: &RulePlan,
    scratch: &mut ProbeScratch,
    t: &Tuple,
    validated: AttrSet,
) -> TransFixOutcome {
    transfix_impl(rules, master, graph, Some(plan), scratch, t, validated)
}

/// Shared walk behind [`transfix`] (no plan: legacy probes) and
/// [`transfix_with`] (plan-backed probes).
fn transfix_impl(
    rules: &RuleSet,
    master: &MasterIndex,
    graph: &DependencyGraph,
    plan: Option<&RulePlan>,
    scratch: &mut ProbeScratch,
    t: &Tuple,
    validated: AttrSet,
) -> TransFixOutcome {
    debug_assert_eq!(graph.len(), rules.len());
    debug_assert!(plan.map_or(true, |p| p.len() == rules.len()));
    let mut tuple = t.clone();
    let mut z = validated;
    let mut fixed = AttrSet::EMPTY;
    let mut steps = Vec::new();
    let mut disputed = Vec::new();

    // usable[i]: premise validated; enqueued[i]: ever pushed to vset
    let n = rules.len();
    let mut enqueued = vec![false; n];
    let mut in_uset = vec![false; n];
    let mut vset: Vec<usize> = Vec::new();
    for (i, rule) in rules.iter() {
        if rule.premise().is_subset(&z) {
            vset.push(i);
            enqueued[i] = true;
        }
    }

    while let Some(v) = vset.pop() {
        let rule = rules.rule(v);
        let b = rule.rhs();
        // apply if the target is not yet validated (protected otherwise)
        if !z.contains(b) && rule.pattern().matches(&tuple) {
            let (prescription, conflict) = match plan {
                Some(p) => {
                    // pattern checked above; probe the pinned index and
                    // scan the borrowed hit list without copying it
                    prescribe(master, rule.rhs_m(), p.probe(v, &tuple, scratch))
                }
                None => {
                    let ids = master.matches_projection(&tuple, rule.lhs(), rule.lhs_m());
                    prescribe(master, rule.rhs_m(), &ids)
                }
            };
            if conflict {
                disputed.push(v);
            } else if let Some((val, id)) = prescription {
                tuple.set(b, val);
                z.insert(b);
                fixed.insert(b);
                steps.push((v, id));
                // inspect successors: upgrade or register
                for &u in graph.successors(v) {
                    if enqueued[u] {
                        if in_uset[u] && rules.rule(u).premise().is_subset(&z) {
                            in_uset[u] = false;
                            vset.push(u);
                        }
                        continue;
                    }
                    enqueued[u] = true;
                    if rules.rule(u).premise().is_subset(&z) {
                        vset.push(u);
                    } else {
                        in_uset[u] = true;
                    }
                }
            }
        }
    }

    TransFixOutcome {
        tuple,
        validated: z,
        fixed,
        steps,
        disputed,
    }
}

/// Run `TransFix` over a block of independent `(tuple, validated)`
/// items, vectorizing the probes through the plan's block layer: one
/// [`RulePlan::probe_block_seeds`] call bulk-prefetches every seed
/// rule's key probe (grouped by shared probe key, sort-grouped by key
/// value, resolved through the factorised trie) and hoists every
/// pattern pre-check into a per-block bitmask, then each tuple's walk
/// consumes its prefetched cells.
///
/// **Bit-identity:** the outcome of every item equals what
/// [`transfix_with`] returns for it alone, at every block size. A
/// prefetched cell is only consumed while the attributes it was
/// computed from are untouched by this walk's fixes (the `fixed` set
/// is disjoint from the rule's key / pattern attributes); the moment a
/// fix invalidates them, the walk re-checks live exactly like the
/// single-tuple path. Consuming a cell counts one logical probe, so
/// `plan_probes` is block-size independent too.
///
/// Falls back to per-item [`transfix_with`] when the block is trivial
/// (`len < 2`).
pub fn transfix_block(
    rules: &RuleSet,
    master: &MasterIndex,
    graph: &DependencyGraph,
    plan: &RulePlan,
    scratch: &mut ProbeScratch,
    items: &[(&Tuple, AttrSet)],
) -> Vec<TransFixOutcome> {
    if items.len() < 2 {
        return items
            .iter()
            .map(|&(t, z)| transfix_with(rules, master, graph, plan, scratch, t, z))
            .collect();
    }
    let block: Vec<&Tuple> = items.iter().map(|&(t, _)| t).collect();
    let zs: Vec<AttrSet> = items.iter().map(|&(_, z)| z).collect();
    plan.probe_block_seeds(&block, &zs, scratch);
    items
        .iter()
        .enumerate()
        .map(|(j, &(t, z))| transfix_one_prefetched(rules, master, graph, plan, scratch, t, z, j))
        .collect()
}

/// One walk of [`transfix_block`]: identical to [`transfix_with`]'s
/// plan path except that the pattern check reads the hoisted bitmask
/// and the key probe consumes the prefetched block cell — both only
/// while the attributes they were computed from are `fixed`-disjoint.
#[allow(clippy::too_many_arguments)]
fn transfix_one_prefetched(
    rules: &RuleSet,
    master: &MasterIndex,
    graph: &DependencyGraph,
    p: &RulePlan,
    scratch: &mut ProbeScratch,
    t: &Tuple,
    validated: AttrSet,
    j: usize,
) -> TransFixOutcome {
    let mut tuple = t.clone();
    let mut z = validated;
    let mut fixed = AttrSet::EMPTY;
    let mut steps = Vec::new();
    let mut disputed = Vec::new();

    let n = rules.len();
    let mut enqueued = vec![false; n];
    let mut in_uset = vec![false; n];
    let mut vset: Vec<usize> = Vec::new();
    for (i, rule) in rules.iter() {
        if rule.premise().is_subset(&z) {
            vset.push(i);
            enqueued[i] = true;
        }
    }

    while let Some(v) = vset.pop() {
        let rule = rules.rule(v);
        let b = rule.rhs();
        if z.contains(b) {
            continue;
        }
        let untouched = |attrs: &[AttrId]| attrs.iter().all(|&a| !fixed.contains(a));
        let pattern_ok = if untouched(rule.pattern().attrs()) {
            p.block_pattern_ok(v, j, scratch)
        } else {
            rule.pattern().matches(&tuple)
        };
        if pattern_ok {
            let (prescription, conflict) =
                if untouched(rule.lhs()) && p.block_prefetched(v, j, scratch) {
                    let ids = p.block_probe(v, j, scratch).expect("checked prefetched");
                    prescribe(master, rule.rhs_m(), ids)
                } else {
                    // cascaded rule, unseeded cell, or a fix touched the
                    // key: probe live, exactly like the single-tuple path
                    prescribe(master, rule.rhs_m(), p.probe(v, &tuple, scratch))
                };
            if conflict {
                disputed.push(v);
            } else if let Some((val, id)) = prescription {
                tuple.set(b, val);
                z.insert(b);
                fixed.insert(b);
                steps.push((v, id));
                for &u in graph.successors(v) {
                    if enqueued[u] {
                        if in_uset[u] && rules.rule(u).premise().is_subset(&z) {
                            in_uset[u] = false;
                            vset.push(u);
                        }
                        continue;
                    }
                    enqueued[u] = true;
                    if rules.rule(u).premise().is_subset(&z) {
                        vset.push(u);
                    } else {
                        in_uset[u] = true;
                    }
                }
            }
        }
    }

    TransFixOutcome {
        tuple,
        validated: z,
        fixed,
        steps,
        disputed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certainfix_relation::{tuple, Relation, Schema};
    use certainfix_rules::parse_rules;
    use std::sync::Arc;

    fn fig1() -> (Arc<Schema>, RuleSet, MasterIndex, DependencyGraph) {
        let r = Schema::new(
            "R",
            [
                "fn", "ln", "AC", "phn", "type", "str", "city", "zip", "item",
            ],
        )
        .unwrap();
        let rm = Schema::new(
            "Rm",
            [
                "FN", "LN", "AC", "Hphn", "Mphn", "str", "city", "zip", "DOB", "gender",
            ],
        )
        .unwrap();
        let rules = parse_rules(
            r#"
            phi1: match zip ~ zip set AC := AC, str := str, city := city
            phi2: match phn ~ Mphn set fn := FN, ln := LN when type = 2
            phi3: match AC ~ AC, phn ~ Hphn set str := str, city := city, zip := zip when type = 1, AC != '0800'
            phi4: match AC ~ AC set city := city when AC = '0800'
            "#,
            &r,
            &rm,
        )
        .unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(
                rm,
                vec![
                    tuple![
                        "Robert",
                        "Brady",
                        "131",
                        "6884563",
                        "079172485",
                        "51 Elm Row",
                        "Edi",
                        "EH7 4AH",
                        "11/11/55",
                        "M"
                    ],
                    tuple![
                        "Mark",
                        "Smith",
                        "020",
                        "6884563",
                        "075568485",
                        "20 Baker St.",
                        "Lnd",
                        "NW1 6XE",
                        "25/12/67",
                        "M"
                    ],
                ],
            )
            .unwrap(),
        ));
        let graph = DependencyGraph::new(&rules);
        (r, rules, master, graph)
    }

    fn attrs(r: &Schema, names: &[&str]) -> AttrSet {
        names.iter().map(|n| r.attr(n).unwrap()).collect()
    }

    #[test]
    fn example12_trace() {
        // Z = {zip} on t1: ϕ1 fixes AC/str/city; Example 12's table.
        let (r, rules, master, graph) = fig1();
        let t1 = tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ];
        let out = transfix(&rules, &master, &graph, &t1, attrs(&r, &["zip"]));
        assert_eq!(out.validated, attrs(&r, &["zip", "AC", "str", "city"]));
        assert_eq!(out.fixed, attrs(&r, &["AC", "str", "city"]));
        assert_eq!(out.tuple.get(r.attr("AC").unwrap()), &Value::str("131"));
        assert_eq!(
            out.tuple.get(r.attr("str").unwrap()),
            &Value::str("51 Elm Row")
        );
        assert!(out.disputed.is_empty());
        assert_eq!(out.steps.len(), 3);
    }

    #[test]
    fn cascades_through_the_graph() {
        // Z = {AC, phn, type} on t3: ϕ3 fixes str/city/zip, which then
        // enables ϕ1 (agreeing values from s2).
        let (r, rules, master, graph) = fig1();
        let t3 = tuple![
            "Mark",
            "Smith",
            "020",
            "6884563",
            1,
            "20 Baker St.",
            "Lnd",
            "EH7 4AH",
            "DVD"
        ];
        let out = transfix(
            &rules,
            &master,
            &graph,
            &t3,
            attrs(&r, &["AC", "phn", "type"]),
        );
        assert_eq!(
            out.tuple.get(r.attr("zip").unwrap()),
            &Value::str("NW1 6XE"),
            "zip corrected from s2 via the home-phone rule"
        );
        assert!(out.validated.contains(r.attr("city").unwrap()));
        assert!(out.disputed.is_empty());
    }

    #[test]
    fn each_rule_fires_at_most_once() {
        let (r, rules, master, graph) = fig1();
        let t1 = tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ];
        let out = transfix(
            &rules,
            &master,
            &graph,
            &t1,
            attrs(&r, &["zip", "phn", "type", "item"]),
        );
        let mut seen = std::collections::HashSet::new();
        for (rule, _) in &out.steps {
            assert!(seen.insert(*rule), "rule {rule} fired twice");
        }
        assert!(out.steps.len() <= rules.len());
    }

    #[test]
    fn disputed_updates_are_skipped() {
        let r = Schema::new("R", ["zip", "city"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules("p: match zip ~ zip set city := city", &r, &rm).unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(rm, vec![tuple!["Z1", "Edi"], tuple!["Z1", "Lnd"]]).unwrap(),
        ));
        let graph = DependencyGraph::new(&rules);
        let t = tuple!["Z1", Value::Null];
        let out = transfix(&rules, &master, &graph, &t, attrs(&r, &["zip"]));
        assert_eq!(out.disputed, vec![0]);
        assert!(out.tuple.get(r.attr("city").unwrap()).is_null());
        assert!(!out.validated.contains(r.attr("city").unwrap()));
    }

    #[test]
    fn disputed_attribute_is_left_exactly_as_entered() {
        // Two master tuples share the key Z1 but disagree on city AND
        // on street; the entered (non-null) values must survive both
        // disputed updates untouched, stay unvalidated, and both rules
        // must be reported.
        let r = Schema::new("R", ["zip", "city", "str"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules(
            "pc: match zip ~ zip set city := city\nps: match zip ~ zip set str := str",
            &r,
            &rm,
        )
        .unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(
                rm,
                vec![
                    tuple!["Z1", "Edi", "51 Elm Row"],
                    tuple!["Z1", "Lnd", "20 Baker St."],
                ],
            )
            .unwrap(),
        ));
        let graph = DependencyGraph::new(&rules);
        let t = tuple!["Z1", "Glasgo", "somewhere"];
        let out = transfix(&rules, &master, &graph, &t, attrs(&r, &["zip"]));
        let city = r.attr("city").unwrap();
        let strt = r.attr("str").unwrap();
        let mut disputed = out.disputed.clone();
        disputed.sort_unstable();
        assert_eq!(disputed, vec![0, 1], "both rules hit conflicting evidence");
        assert_eq!(
            out.tuple.get(city),
            &Value::str("Glasgo"),
            "disputed attribute keeps the entered value"
        );
        assert_eq!(out.tuple.get(strt), &Value::str("somewhere"));
        assert!(!out.validated.contains(city));
        assert!(!out.validated.contains(strt));
        assert!(out.fixed.is_empty());
        assert!(out.steps.is_empty());
        // the rest of the tuple is untouched too
        assert_eq!(out.tuple, t);
    }

    #[test]
    fn agreeing_duplicates_are_not_disputed() {
        // Two master tuples share the key AND the prescribed value:
        // no conflict, the fix applies.
        let r = Schema::new("R", ["zip", "city"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules("p: match zip ~ zip set city := city", &r, &rm).unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(rm, vec![tuple!["Z1", "Edi"], tuple!["Z1", "Edi"]]).unwrap(),
        ));
        let graph = DependencyGraph::new(&rules);
        let out = transfix(
            &rules,
            &master,
            &graph,
            &tuple!["Z1", "Lnd"],
            attrs(&r, &["zip"]),
        );
        assert!(out.disputed.is_empty());
        assert_eq!(out.tuple.get(r.attr("city").unwrap()), &Value::str("Edi"));
        assert!(out.validated.contains(r.attr("city").unwrap()));
    }

    #[test]
    fn null_master_values_do_not_fix() {
        let r = Schema::new("R", ["zip", "city"]).unwrap();
        let rm = r.clone();
        let rules = parse_rules("p: match zip ~ zip set city := city", &r, &rm).unwrap();
        let master = MasterIndex::new(Arc::new(
            Relation::new(rm, vec![tuple!["Z1", Value::Null]]).unwrap(),
        ));
        let graph = DependencyGraph::new(&rules);
        let out = transfix(
            &rules,
            &master,
            &graph,
            &tuple!["Z1", "x"],
            attrs(&r, &["zip"]),
        );
        assert!(out.fixed.is_empty(), "a null prescription is no fix");
    }

    /// The compiled-plan hot path is bit-identical to the legacy
    /// probes: same fixes, same validated sets, same step order, same
    /// disputes — including the conflicting-master shape.
    #[test]
    fn plan_backed_transfix_matches_legacy() {
        use certainfix_rules::{ProbeScratch, RulePlan};
        let (r, rules, master, graph) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let mut scratch = ProbeScratch::new();
        let t1 = tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ];
        for z in [
            attrs(&r, &["zip"]),
            attrs(&r, &["zip", "phn", "type"]),
            attrs(&r, &["AC", "phn", "type"]),
            attrs(&r, &["item"]),
            AttrSet::EMPTY,
        ] {
            let legacy = transfix(&rules, &master, &graph, &t1, z);
            let planned = transfix_with(&rules, &master, &graph, &plan, &mut scratch, &t1, z);
            assert_eq!(planned.tuple, legacy.tuple, "Z = {z:?}");
            assert_eq!(planned.validated, legacy.validated);
            assert_eq!(planned.fixed, legacy.fixed);
            assert_eq!(planned.steps, legacy.steps);
            assert_eq!(planned.disputed, legacy.disputed);
        }
        // disputed evidence agrees too
        let r2 = Schema::new("R", ["zip", "city"]).unwrap();
        let rm2 = r2.clone();
        let rules2 = parse_rules("p: match zip ~ zip set city := city", &r2, &rm2).unwrap();
        let master2 = MasterIndex::new(Arc::new(
            Relation::new(rm2, vec![tuple!["Z1", "Edi"], tuple!["Z1", "Lnd"]]).unwrap(),
        ));
        let plan2 = RulePlan::compile(&rules2, &master2);
        let graph2 = DependencyGraph::new(&rules2);
        let t = tuple!["Z1", Value::Null];
        let a = transfix(&rules2, &master2, &graph2, &t, attrs(&r2, &["zip"]));
        let b = transfix_with(
            &rules2,
            &master2,
            &graph2,
            &plan2,
            &mut scratch,
            &t,
            attrs(&r2, &["zip"]),
        );
        assert_eq!(a.disputed, b.disputed);
        assert_eq!(a.tuple, b.tuple);
    }

    /// Block-probed `TransFix` is bit-identical to the single-tuple
    /// walk at every block size — same tuples, validated sets, step
    /// order, disputes, and the same logical probe count.
    #[test]
    fn block_transfix_matches_single_tuple_at_every_block_size() {
        use certainfix_rules::{ProbeScratch, RulePlan};
        let (r, rules, master, graph) = fig1();
        let plan = RulePlan::compile(&rules, &master);
        let t1 = tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ];
        let t3 = tuple![
            "Mark",
            "Smith",
            "020",
            "6884563",
            1,
            "20 Baker St.",
            "Lnd",
            "EH7 4AH",
            "DVD"
        ];
        let mut tnull = t1.clone();
        tnull.set(r.attr("zip").unwrap(), Value::Null);
        let tuples = [&t1, &t3, &tnull, &t1, &t3, &t1, &tnull];
        let zsets = [
            attrs(&r, &["zip"]),
            attrs(&r, &["AC", "phn", "type"]),
            attrs(&r, &["zip"]),
            attrs(&r, &["zip", "phn", "type"]),
            AttrSet::EMPTY,
            attrs(&r, &["item"]),
            attrs(&r, &["phn", "type"]),
        ];
        let items: Vec<(&Tuple, AttrSet)> =
            tuples.iter().zip(zsets).map(|(&t, z)| (t, z)).collect();

        let mut single = ProbeScratch::new();
        let want: Vec<TransFixOutcome> = items
            .iter()
            .map(|&(t, z)| transfix_with(&rules, &master, &graph, &plan, &mut single, t, z))
            .collect();
        let (want_probes, _, _) = single.take_counters();

        for size in [1, 2, 3, items.len()] {
            let mut scratch = ProbeScratch::new();
            let got: Vec<TransFixOutcome> = items
                .chunks(size)
                .flat_map(|chunk| {
                    transfix_block(&rules, &master, &graph, &plan, &mut scratch, chunk)
                })
                .collect();
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.tuple, b.tuple, "block size {size}");
                assert_eq!(a.validated, b.validated);
                assert_eq!(a.fixed, b.fixed);
                assert_eq!(a.steps, b.steps);
                assert_eq!(a.disputed, b.disputed);
            }
            let (probes, _, _) = scratch.take_counters();
            assert_eq!(probes, want_probes, "logical probes at block size {size}");
        }
    }

    #[test]
    fn agrees_with_chase_on_fig1() {
        // TransFix and the chase must validate the same attributes and
        // produce the same tuple whenever the chase reports uniqueness.
        let (r, rules, master, graph) = fig1();
        let chase = certainfix_reasoning::Chase::new(&rules, &master);
        let t1 = tuple![
            "Bob",
            "Brady",
            "020",
            "079172485",
            2,
            "501 Elm St.",
            "Edi",
            "EH7 4AH",
            "CD"
        ];
        for z in [
            attrs(&r, &["zip"]),
            attrs(&r, &["zip", "phn", "type"]),
            attrs(&r, &["phn", "type"]),
            attrs(&r, &["item"]),
        ] {
            let fix = chase.run(&t1, z).fix().cloned().expect("unique");
            let out = transfix(&rules, &master, &graph, &t1, z);
            assert_eq!(out.validated, fix.validated, "Z = {z:?}");
            assert_eq!(out.tuple, fix.tuple, "Z = {z:?}");
        }
    }
}
