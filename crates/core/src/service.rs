//! The multi-session repair service: fair multiplexing of N
//! [`TupleSource`] streams over one engine.
//!
//! The paper's monitor repairs *one* stream of dirty tuples against one
//! master relation; a deployment is rarely that lucky. [`RepairService`]
//! is the service shape the ROADMAP aims at: one
//! [`BatchRepairEngine`] — one compiled
//! [`RulePlan`](certainfix_rules::RulePlan), one
//! [`SharedSuggestionCache`](crate::SharedSuggestionCache), one
//! work-stealing worker pool — shared by N independent sessions, each
//! with its own [`TupleSource`], its own oracle space, and its own
//! [`SessionReport`].
//!
//! # Architecture
//!
//! Ingest and repair are separate lanes over one shared context
//! (the HTAP-style isolation: producers never run repair code, repair
//! workers never block on a producer):
//!
//! * **Ingest lanes** — one feeder thread per stream pulls
//!   `next_batch()` into a *bounded* channel of
//!   [`ServiceOptions::depth`] in-flight batches. The bound is real
//!   backpressure: a producer that outruns the repair pool blocks in
//!   `send`, and a producer that stalls simply leaves its lane empty —
//!   it can never wedge the pool, because the scheduler only ever
//!   *try*-receives.
//! * **Epoch scheduler** — the caller's thread repeatedly collects at
//!   most one pending batch per session (polling sessions round-robin,
//!   skipping lanes with nothing ready), chunks every collected batch,
//!   interleaves the chunks round-robin across the sessions, and fans
//!   the epoch out to the work-stealing pool. A claimed chunk stays one
//!   probe block, tagged with its session; blocks never mix tuples of
//!   different sessions.
//! * **Repair lanes** — the epoch's worker threads claim chunks from
//!   per-worker queues (their own first, then stealing), exactly like
//!   [`BatchRepairEngine`]'s fan-out, charging per-`(worker, session)`
//!   statistics so every session's numbers stay attributable.
//!
//! # Live master data
//!
//! The service's scheduler epoch is also the *master-epoch boundary*:
//! each scheduler epoch pins the context's current
//! [`MasterEpoch`](crate::MasterEpoch) once, so a
//! [`RepairContext::apply_master_delta`](crate::RepairContext::apply_master_delta)
//! issued while the service runs never perturbs chunks already fanned
//! out — the in-flight epoch finishes on its pinned generation, and
//! the next scheduler epoch picks up the new one. Every
//! [`BatchReport`] a session accumulates records the
//! [`generation`](BatchReport::generation) it repaired against, so a
//! stream's reports show exactly where the hand-off landed in its own
//! stream order.
//!
//! # Fairness
//!
//! Per epoch, every session with a batch ready contributes exactly one
//! batch, and the chunk interleaving deals the sessions' chunks
//! round-robin — so a 10×-larger batch costs its owner proportionally
//! more epochs, not a monopoly on the pool, and the poll rotation means
//! no session is systematically served first. Fairness is *work-
//! conserving*: a session with nothing ready is skipped, never waited
//! for.
//!
//! # Determinism: interleaving-independence
//!
//! Every tuple's repair depends only on the tuple, its oracle, and the
//! shared immutable context. A session's tuples are chunked in stream
//! order, each chunk is one probe block of that session alone, and
//! block probing is bit-identical at every block size (the PR 6
//! contract), so for plain `CertainFix` (`bdd(false)`, shared cache
//! off) each session's outcomes and merged deterministic
//! [`MonitorStats`] counts (`tuples`, `certain`, `rounds`,
//! `plan_probes`, `plan_fallbacks`) are **bit-identical to draining
//! that session alone through a [`RepairSession`](crate::RepairSession)**
//! — regardless of
//! how many other sessions run concurrently, how the epochs happen to
//! compose, or the worker count — and the aggregate
//! [`ServiceReport::stats`] merge equals running the sessions one at a
//! time. Wall-clock observables (`elapsed`, the interner watermark,
//! `probe_allocs`, per-epoch worker breakdowns) are exempt as always;
//! with a cache enabled, *served suggestions are checked, not
//! recomputed*, so counters become interleaving-dependent while final
//! repaired tuples still agree. The shared-cache counters keep one
//! interleaving-independent identity either way: per-session attributed
//! `hits`/`misses` always sum to the engine-global cache counters.
//!
//! ```
//! use certainfix_core::service::{RepairServiceBuilder, ServiceStream};
//! use certainfix_core::session::SliceSource;
//! use certainfix_core::SimulatedUser;
//! use certainfix_datagen::{Dataset, DirtyConfig, Hosp, Workload};
//!
//! let hosp = Hosp::generate(100);
//! let mk = |seed| {
//!     Dataset::generate(&hosp, &DirtyConfig { input_size: 30, seed, ..Default::default() })
//! };
//! let (a, b) = (mk(1), mk(2));
//! let (da, db): (Vec<_>, Vec<_>) = (
//!     a.inputs.iter().map(|dt| dt.dirty.clone()).collect(),
//!     b.inputs.iter().map(|dt| dt.dirty.clone()).collect(),
//! );
//!
//! let service = RepairServiceBuilder::new(hosp.rules().clone(), hosp.master().clone())
//!     .threads(2)
//!     .build();
//! let report = service.run(vec![
//!     ServiceStream::new("tenant-a", SliceSource::with_batch(&da, 8), |i| {
//!         SimulatedUser::new(a.inputs[i].clean.clone())
//!     }),
//!     ServiceStream::new("tenant-b", SliceSource::with_batch(&db, 8), |i| {
//!         SimulatedUser::new(b.inputs[i].clean.clone())
//!     }),
//! ]);
//! assert_eq!(report.sessions.len(), 2);
//! assert_eq!(report.tuples, 60);
//! assert_eq!(report.session("tenant-a").unwrap().tuples, 30);
//! ```

use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};

use certainfix_relation::{Relation, Tuple};
use certainfix_rules::{ProbeScratch, RuleSet};
use std::sync::Arc;

use crate::bdd::{BddStats, SuggestionBdd};
use crate::certainfix::{CertainFixConfig, FixOutcome};
use crate::engine::{
    BatchRepairEngine, BatchReport, ChunkQueue, RepairContext, WorkerReport, Workload,
};
use crate::monitor::{InitialRegion, MonitorStats};
use crate::oracle::UserOracle;
use crate::session::{SessionReport, TupleSource};
use crate::sharedcache::SharedCacheStats;

/// A boxed oracle as the service hands them to its workers.
pub type BoxedOracle<'a> = Box<dyn UserOracle + 'a>;

type OracleFactory<'a> = Box<dyn Fn(usize) -> BoxedOracle<'a> + Send + Sync + 'a>;

/// One stream a [`RepairService`] multiplexes: a name (for the
/// report), a [`TupleSource`], and the stream's oracle factory.
///
/// The factory receives the **session-local stream index** — the
/// number of tuples this stream yielded before the one being repaired
/// — exactly the index a solo [`RepairSession`](crate::RepairSession)
/// drain would pass. Index spaces of different streams never mix, and
/// like the engine's, the factory is called from worker threads and
/// must depend only on the index.
pub struct ServiceStream<'a> {
    name: String,
    source: Box<dyn TupleSource + Send + 'a>,
    oracle_for: OracleFactory<'a>,
}

impl<'a> ServiceStream<'a> {
    /// Bundle a named stream. `source` yields the stream in order (the
    /// [`TupleSource`] contract); `oracle_for(i)` supplies the user for
    /// the stream's `i`-th tuple.
    pub fn new<S, F, O>(name: impl Into<String>, source: S, oracle_for: F) -> ServiceStream<'a>
    where
        S: TupleSource + Send + 'a,
        F: Fn(usize) -> O + Send + Sync + 'a,
        O: UserOracle + 'a,
    {
        ServiceStream {
            name: name.into(),
            source: Box::new(source),
            oracle_for: Box::new(move |i| Box::new(oracle_for(i)) as BoxedOracle<'a>),
        }
    }

    /// The stream's name, as it will appear in the report.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// An event [`RepairService::run_dynamic`] emits to a session's
/// observer channel (if one was supplied at attach time): one
/// [`Batch`](SessionEvent::Batch) per scheduler epoch the session took
/// part in, then exactly one [`Finished`](SessionEvent::Finished) once
/// its lane is drained and the final report folded. The `net` crate's
/// `RepairServer` turns these into response frames.
#[derive(Clone, Debug)]
pub enum SessionEvent {
    /// The session's [`BatchReport`] for one completed epoch, in the
    /// session's own stream order.
    Batch(BatchReport),
    /// The session's source is exhausted (or its producer went away)
    /// and every buffered batch has been repaired; this is the same
    /// report the final [`ServiceReport`] will carry.
    Finished(SessionReport),
}

/// One dynamically attached session in flight to the scheduler.
struct DynamicSession<'a> {
    stream: ServiceStream<'a>,
    events: Option<Sender<SessionEvent>>,
}

/// The attach side of [`attach_channel`]: clonable, sendable to other
/// threads, hands new [`ServiceStream`]s to a running
/// [`RepairService::run_dynamic`]. Dropping every clone is the
/// shutdown signal — the service finishes draining the sessions it
/// has, then returns.
pub struct ServiceAttach<'a> {
    tx: Sender<DynamicSession<'a>>,
    bell: Sender<()>,
}

impl<'a> Clone for ServiceAttach<'a> {
    fn clone(&self) -> Self {
        ServiceAttach {
            tx: self.tx.clone(),
            bell: self.bell.clone(),
        }
    }
}

impl<'a> ServiceAttach<'a> {
    /// Hand a new stream to the scheduler. `events`, if given,
    /// receives one [`SessionEvent::Batch`] per epoch the session
    /// participates in and a final [`SessionEvent::Finished`]. Returns
    /// the stream back if the service already returned.
    pub fn attach(
        &self,
        stream: ServiceStream<'a>,
        events: Option<Sender<SessionEvent>>,
    ) -> Result<(), ServiceStream<'a>> {
        self.tx
            .send(DynamicSession { stream, events })
            .map_err(|e| e.0.stream)?;
        let _ = self.bell.send(());
        Ok(())
    }
}

impl<'a> Drop for ServiceAttach<'a> {
    fn drop(&mut self) {
        // wake a blocked scheduler so it notices the attach queue
        // disconnecting (rings are buffered, never lost)
        let _ = self.bell.send(());
    }
}

/// The receive side of [`attach_channel`], consumed by
/// [`RepairService::run_dynamic`].
pub struct AttachQueue<'a> {
    rx: Receiver<DynamicSession<'a>>,
    bell_tx: Sender<()>,
    bell_rx: Receiver<()>,
}

/// Create the attach handle / queue pair for
/// [`RepairService::run_dynamic`]. The handle end is clonable and may
/// outlive any individual session; the service returns once every
/// handle is dropped *and* every attached session has drained.
pub fn attach_channel<'a>() -> (ServiceAttach<'a>, AttachQueue<'a>) {
    let (tx, rx) = channel();
    let (bell_tx, bell_rx) = channel();
    (
        ServiceAttach {
            tx,
            bell: bell_tx.clone(),
        },
        AttachQueue {
            rx,
            bell_tx,
            bell_rx,
        },
    )
}

/// Knobs of one [`RepairService`]: the pool shape plus the per-session
/// ingest-lane depth. The service is steal-only (fair multiplexing
/// *is* chunked stealing; a contiguous shard per worker would undo the
/// session interleave).
#[derive(Clone, Copy, Debug)]
pub struct ServiceOptions {
    /// Worker threads of the shared repair pool (`0` = one per
    /// available core).
    pub threads: usize,
    /// Chunk granularity (`0` = auto per collected batch: about 8
    /// chunks per worker, capped at 512 tuples). A chunk is also the
    /// probe-block unit.
    pub chunk: usize,
    /// Pool computed suggestions in the engine-lifetime
    /// [`SharedSuggestionCache`](crate::SharedSuggestionCache), shared
    /// by *all* sessions (one pool, not per-tenant copies).
    pub shared_cache: bool,
    /// Bounded ingest-lane depth: batches a producer may have in
    /// flight before its `send` blocks (clamped to at least 1).
    pub depth: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            threads: 1,
            chunk: 0,
            shared_cache: true,
            depth: 2,
        }
    }
}

/// Configures and builds an owned [`RepairService`] — the multi-stream
/// sibling of [`RepairSessionBuilder`](crate::RepairSessionBuilder),
/// with the same precomputation knobs.
#[derive(Clone)]
pub struct RepairServiceBuilder {
    rules: RuleSet,
    master: Arc<Relation>,
    use_bdd: bool,
    initial: InitialRegion,
    config: CertainFixConfig,
    workload: Workload,
    opts: ServiceOptions,
    cache_hygiene: bool,
}

impl RepairServiceBuilder {
    /// A service over `(Σ, Dm)` with the defaults: plain `CertainFix`,
    /// best initial region, one worker, shared cache on, lane depth 2.
    pub fn new(rules: RuleSet, master: Arc<Relation>) -> RepairServiceBuilder {
        RepairServiceBuilder {
            rules,
            master,
            use_bdd: false,
            initial: InitialRegion::default(),
            config: CertainFixConfig::default(),
            workload: Workload::default(),
            opts: ServiceOptions::default(),
            cache_hygiene: true,
        }
    }

    /// Serve suggestions from per-worker BDD caches (`CertainFix+`).
    pub fn bdd(mut self, on: bool) -> Self {
        self.use_bdd = on;
        self
    }

    /// What runs per tuple: editing-rule repair (default) or the
    /// `IncRep`-style CFD baseline ([`Workload::Cfd`]). One workload
    /// per service — it is part of the shared context, not per-stream.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Which precomputed region seeds the first suggestion.
    pub fn initial_region(mut self, region: InitialRegion) -> Self {
        self.initial = region;
        self
    }

    /// The `CertainFix` interaction-loop configuration.
    pub fn config(mut self, config: CertainFixConfig) -> Self {
        self.config = config;
        self
    }

    /// Worker threads of the shared pool (`0` = one per core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Chunk / probe-block granularity (`0` = auto).
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.opts.chunk = chunk;
        self
    }

    /// Pool computed suggestions across sessions.
    pub fn shared_cache(mut self, on: bool) -> Self {
        self.opts.shared_cache = on;
        self
    }

    /// Shared-cache lifecycle hygiene (delta invalidation, clock
    /// eviction at the caps; on by default). Off keeps the historical
    /// insert-only pool — see the
    /// [`sharedcache`](crate::sharedcache) module docs.
    pub fn cache_hygiene(mut self, on: bool) -> Self {
        self.cache_hygiene = on;
        self
    }

    /// Bounded ingest-lane depth per session.
    pub fn depth(mut self, depth: usize) -> Self {
        self.opts.depth = depth;
        self
    }

    /// Replace all service knobs at once.
    pub fn options(mut self, opts: ServiceOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Build the precomputation and the service (owning its engine).
    pub fn build(self) -> RepairService {
        let engine = BatchRepairEngine::with_cache_hygiene(
            RepairContext::with_workload(
                self.rules,
                self.master,
                self.use_bdd,
                self.initial,
                self.config,
                self.workload,
            ),
            self.cache_hygiene,
        );
        RepairService::from_engine(engine, self.opts)
    }
}

/// The session multiplexer; see the [module docs](self) for the
/// architecture and the fairness / determinism contract.
///
/// A service owns one engine and is reusable: each [`run`](Self::run)
/// multiplexes one set of streams to completion, and the engine-
/// lifetime shared cache stays warm across runs (exactly as it does
/// across the batches of a solo session).
pub struct RepairService {
    engine: BatchRepairEngine,
    opts: ServiceOptions,
}

impl RepairService {
    /// Wrap a prepared engine.
    pub fn from_engine(engine: BatchRepairEngine, opts: ServiceOptions) -> RepairService {
        RepairService { engine, opts }
    }

    /// The shared engine.
    pub fn engine(&self) -> &BatchRepairEngine {
        &self.engine
    }

    /// The service knobs every run uses.
    pub fn options(&self) -> &ServiceOptions {
        &self.opts
    }

    /// Multiplex `streams` to completion and report per-session plus
    /// aggregate results. Returns when every stream's source is
    /// exhausted; sessions that finish early simply stop contributing
    /// epochs while the rest keep the pool busy.
    pub fn run(&self, streams: Vec<ServiceStream<'_>>) -> ServiceReport {
        let (attach, queue) = attach_channel();
        for stream in streams {
            let _ = attach.attach(stream, None);
        }
        drop(attach);
        self.run_dynamic(queue)
    }

    /// Multiplex a *dynamic* set of streams: sessions attach (and
    /// detach, by exhausting their source) while the service runs.
    /// Consumes the [`AttachQueue`] half of an [`attach_channel`];
    /// returns once every [`ServiceAttach`] clone is dropped and every
    /// attached session has drained — the drain-then-shutdown path.
    /// Scheduling, fairness, and the determinism contract are exactly
    /// [`run`](Self::run)'s (which is this method with all sessions
    /// attached up front): a session's outcomes depend only on its own
    /// stream, never on when its neighbours arrived.
    pub fn run_dynamic(&self, queue: AttachQueue<'_>) -> ServiceReport {
        let started = Instant::now();
        let threads = match self.opts.threads {
            0 => BatchRepairEngine::auto_threads(),
            t => t,
        }
        .max(1);
        let depth = self.opts.depth.max(1);

        let mut names: Vec<String> = Vec::new();
        let mut factories: Vec<OracleFactory<'_>> = Vec::new();
        let mut acc: Vec<SessionAcc> = Vec::new();
        let mut done: Vec<Option<SessionReport>> = Vec::new();
        let mut epochs = 0u64;

        std::thread::scope(|scope| {
            // ingest lanes: one feeder per attached stream, bounded
            // channel, plus the queue's doorbell so an idle scheduler
            // blocks instead of spinning
            let mut lanes: Vec<Receiver<Vec<Tuple>>> = Vec::new();
            let mut open: Vec<bool> = Vec::new();
            let mut finished: Vec<bool> = Vec::new();
            let mut events: Vec<Option<Sender<SessionEvent>>> = Vec::new();
            let mut attach_open = true;
            // rotate which session is polled first so no stream is
            // systematically served ahead of the others
            let mut first = 0usize;
            loop {
                // admit newly attached sessions before each poll sweep
                while attach_open {
                    match queue.rx.try_recv() {
                        Ok(ds) => {
                            let (tx, rx) = sync_channel::<Vec<Tuple>>(depth);
                            let bell = queue.bell_tx.clone();
                            let source = ds.stream.source;
                            scope.spawn(move || {
                                let mut source = source;
                                while let Some(batch) = source.next_batch() {
                                    if batch.is_empty() {
                                        continue;
                                    }
                                    if tx.send(batch).is_err() {
                                        break; // the service stopped draining
                                    }
                                    let _ = bell.send(());
                                }
                                // dropping tx disconnects the lane; ring
                                // once more so a blocked scheduler
                                // notices the end
                                drop(tx);
                                let _ = bell.send(());
                            });
                            names.push(ds.stream.name);
                            factories.push(ds.stream.oracle_for);
                            acc.push(SessionAcc::default());
                            done.push(None);
                            lanes.push(rx);
                            open.push(true);
                            finished.push(false);
                            events.push(ds.events);
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            attach_open = false;
                        }
                    }
                }

                let n = lanes.len();
                let mut collected: Vec<(usize, Vec<Tuple>)> = Vec::new();
                for k in 0..n {
                    let s = (first + k) % n;
                    if !open[s] {
                        continue;
                    }
                    match lanes[s].try_recv() {
                        Ok(batch) => collected.push((s, batch)),
                        Err(TryRecvError::Empty) => {}
                        Err(TryRecvError::Disconnected) => open[s] = false,
                    }
                }
                if n > 0 {
                    first = (first + 1) % n;
                }

                let idle = collected.is_empty();
                if !idle {
                    epochs += 1;
                    let participants: Vec<usize> = collected.iter().map(|&(s, _)| s).collect();
                    self.run_epoch(collected, &factories, &mut acc, threads);
                    for s in participants {
                        if let Some(ev) = &events[s] {
                            if let Some(batch) = acc[s].batches.last() {
                                let _ = ev.send(SessionEvent::Batch(batch.clone()));
                            }
                        }
                    }
                }

                // finalize drained sessions promptly — a disconnected
                // lane has, by mpsc semantics, already yielded every
                // buffered batch — so observers get `Finished` while
                // their neighbours keep running
                for s in 0..n {
                    if !open[s] && !finished[s] {
                        finished[s] = true;
                        let a = std::mem::take(&mut acc[s]);
                        let mut report = SessionReport::from_batches(&a.batches, a.wall, a.tuples);
                        report.batches = a.batches;
                        if let Some(ev) = events[s].take() {
                            let _ = ev.send(SessionEvent::Finished(report.clone()));
                        }
                        done[s] = Some(report);
                    }
                }

                if idle {
                    if !attach_open && !open.iter().any(|&o| o) {
                        break; // no attachers left, every stream drained
                    }
                    // nothing ready: sleep until a feeder or attacher
                    // rings; rings are buffered so wakeups are never
                    // lost — the timeout is a belt-and-braces backstop
                    let _ = queue.bell_rx.recv_timeout(Duration::from_millis(25));
                }
            }
        });

        let mut sessions = Vec::with_capacity(names.len());
        let mut stats = MonitorStats::default();
        let mut bdd = BddStats::default();
        let mut shared: Option<SharedCacheStats> = None;
        let mut tuples = 0usize;
        for (name, report) in names.into_iter().zip(done) {
            let report = report.expect("every attached session is finalized before exit");
            stats.merge(&report.stats);
            bdd.merge(&report.bdd);
            if let Some(s) = &report.shared {
                let agg = shared.get_or_insert_with(SharedCacheStats::default);
                agg.hits += s.hits;
                agg.misses += s.misses;
            }
            tuples += report.tuples;
            sessions.push(NamedSessionReport { name, report });
        }
        if let Some(agg) = &mut shared {
            // attributed counters summed over the sessions; pool
            // occupancy and the lifecycle counters are the engine's
            // final snapshot
            let snapshot = self.engine.shared_cache().stats();
            agg.entries = snapshot.entries;
            agg.keys = snapshot.keys;
            agg.evicted_delta = snapshot.evicted_delta;
            agg.evicted_lru = snapshot.evicted_lru;
            agg.revalidated = snapshot.revalidated;
            agg.saturated = snapshot.saturated;
            agg.keys_high_water = snapshot.keys_high_water;
            agg.entries_high_water = snapshot.entries_high_water;
            agg.per_shard = snapshot.per_shard;
        }
        ServiceReport {
            sessions,
            stats,
            bdd,
            shared,
            wall: started.elapsed(),
            epochs,
            tuples,
        }
    }

    /// Repair one epoch: chunk each collected batch, interleave the
    /// chunks round-robin across sessions, fan out to the stealing
    /// pool, and stitch one [`BatchReport`] per session in its own
    /// stream order.
    fn run_epoch(
        &self,
        batches: Vec<(usize, Vec<Tuple>)>,
        factories: &[OracleFactory<'_>],
        acc: &mut [SessionAcc],
        threads: usize,
    ) {
        let started = Instant::now();
        let nb = batches.len();
        // session-local stream offset each batch starts at (at most one
        // batch per session per epoch, so this is race-free by shape)
        let bases: Vec<usize> = batches.iter().map(|&(s, _)| acc[s].tuples).collect();

        // chunk each batch in stream order; `order` interleaves the
        // per-batch chunk lists round-robin, so consecutive chunks of
        // the deal alternate sessions and every worker's initial run
        // mixes the streams fairly
        let mut per_batch: Vec<Vec<(usize, usize)>> = Vec::with_capacity(nb);
        for (_, tuples) in &batches {
            let n = tuples.len();
            let chunk_size = if self.opts.chunk > 0 {
                self.opts.chunk.min(n)
            } else {
                (n / (threads * 8)).clamp(1, 512)
            };
            per_batch.push(
                (0..n.div_ceil(chunk_size))
                    .map(|c| (c * chunk_size, ((c + 1) * chunk_size).min(n)))
                    .collect(),
            );
        }
        // (batch, lo, hi) per chunk, round-robin across batches; and
        // for each batch, its chunks' order-ids in stream order
        let mut order: Vec<(usize, usize, usize)> = Vec::new();
        let mut batch_chunks: Vec<Vec<usize>> = vec![Vec::new(); nb];
        let rounds = per_batch.iter().map(Vec::len).max().unwrap_or(0);
        for round in 0..rounds {
            for (b, chunks) in per_batch.iter().enumerate() {
                if let Some(&(lo, hi)) = chunks.get(round) {
                    batch_chunks[b].push(order.len());
                    order.push((b, lo, hi));
                }
            }
        }
        let n_chunks = order.len();
        if n_chunks == 0 {
            return;
        }
        let workers = threads.min(n_chunks);
        let per_worker = n_chunks.div_ceil(workers);
        let queues: Vec<ChunkQueue> = (0..workers)
            .map(|w| {
                ChunkQueue::new(
                    (w * per_worker).min(n_chunks)..((w + 1) * per_worker).min(n_chunks),
                )
            })
            .collect();

        let mut slots: Vec<Option<EpochWorkerOut>> = Vec::new();
        slots.resize_with(workers, || None);

        let ctx = self.engine.context();
        // the scheduler epoch is the master-epoch boundary: pin once,
        // every chunk of this epoch repairs against one generation
        let epoch = ctx.epoch();
        let epoch = &*epoch;
        let shared = self.opts.shared_cache.then(|| self.engine.shared_cache());
        let block_mode =
            matches!(ctx.workload(), Workload::EditRules) && !ctx.uses_bdd() && shared.is_none();
        let order = &order;
        let batches = &batches;
        let bases = &bases;
        let queues = &queues;
        std::thread::scope(|s| {
            for (w, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || {
                    let mut bdd = SuggestionBdd::new();
                    let mut scratch = ProbeScratch::new();
                    // per-(worker, session) accounting, indexed by the
                    // epoch's batch position
                    let mut stats: Vec<MonitorStats> = Vec::new();
                    stats.resize_with(nb, MonitorStats::default);
                    let mut bdd_before: Vec<BddStats> = Vec::new();
                    bdd_before.resize_with(nb, BddStats::default);
                    let mut bdd_stats: Vec<BddStats> = Vec::new();
                    bdd_stats.resize_with(nb, BddStats::default);
                    let mut chunks: Vec<(usize, Vec<FixOutcome>)> = Vec::new();
                    let run_chunk =
                        |c: usize,
                         bdd: &mut SuggestionBdd,
                         stats: &mut [MonitorStats],
                         bdd_stats: &mut [BddStats],
                         bdd_before: &mut [BddStats],
                         scratch: &mut ProbeScratch| {
                            let (b, lo, hi) = order[c];
                            let (session, tuples) = &batches[b];
                            let base = bases[b];
                            let factory = &factories[*session];
                            let oracle_for = move |i: usize| factory(base + i);
                            bdd_before[b] = bdd.stats();
                            let outs: Vec<FixOutcome> = if block_mode && hi - lo >= 2 {
                                // a claimed chunk stays one probe block,
                                // tagged with (and containing only) its
                                // session
                                ctx.process_block_full(
                                    epoch,
                                    &mut stats[b],
                                    scratch,
                                    &tuples[lo..hi],
                                    lo,
                                    &oracle_for,
                                )
                            } else {
                                (lo..hi)
                                    .map(|i| {
                                        let mut oracle = oracle_for(i);
                                        ctx.process_with_full(
                                            epoch,
                                            bdd,
                                            &mut stats[b],
                                            shared,
                                            scratch,
                                            &tuples[i],
                                            &mut oracle,
                                        )
                                    })
                                    .collect()
                            };
                            // charge the worker's BDD delta to the chunk's
                            // session (the diagram itself is per-worker)
                            accumulate_delta(&mut bdd_stats[b], &bdd_before[b], &bdd.stats());
                            (c, outs)
                        };
                    while let Some(c) = queues[w].claim() {
                        chunks.push(run_chunk(
                            c,
                            &mut bdd,
                            &mut stats,
                            &mut bdd_stats,
                            &mut bdd_before,
                            &mut scratch,
                        ));
                    }
                    // steal: one pass over the victims suffices —
                    // queues only ever shrink
                    for v in (w + 1..workers).chain(0..w) {
                        while let Some(c) = queues[v].claim() {
                            chunks.push(run_chunk(
                                c,
                                &mut bdd,
                                &mut stats,
                                &mut bdd_stats,
                                &mut bdd_before,
                                &mut scratch,
                            ));
                        }
                    }
                    *slot = Some(EpochWorkerOut {
                        chunks,
                        stats,
                        bdd: bdd_stats,
                    });
                });
            }
        });
        let wall = started.elapsed();

        // stitch: per session, outcomes back in its own stream order,
        // statistics merged per (worker, session)
        let mut by_chunk: Vec<Option<Vec<FixOutcome>>> = Vec::new();
        by_chunk.resize_with(n_chunks, || None);
        let outs: Vec<EpochWorkerOut> = slots
            .into_iter()
            .map(|s| s.expect("every spawned worker publishes its slot"))
            .collect();
        for out in &outs {
            for (c, outcomes) in &out.chunks {
                debug_assert!(by_chunk[*c].is_none(), "chunk {c} claimed twice");
                by_chunk[*c] = Some(outcomes.clone());
            }
        }
        for (b, (session, tuples)) in batches.iter().enumerate() {
            let mut stats = MonitorStats::default();
            let mut bdd = BddStats::default();
            let mut workers_out: Vec<WorkerReport> = Vec::new();
            for (w, out) in outs.iter().enumerate() {
                let mut spans: Vec<(usize, usize)> = out
                    .chunks
                    .iter()
                    .filter(|(c, _)| order[*c].0 == b)
                    .map(|(c, _)| (order[*c].1, order[*c].2))
                    .collect();
                if spans.is_empty() {
                    continue;
                }
                spans.sort_unstable();
                let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
                for (lo, hi) in spans {
                    match ranges.last_mut() {
                        Some(last) if last.end == lo => last.end = hi,
                        _ => ranges.push(lo..hi),
                    }
                }
                stats.merge(&out.stats[b]);
                bdd.merge(&out.bdd[b]);
                workers_out.push(WorkerReport {
                    worker: w,
                    ranges,
                    stats: out.stats[b],
                    bdd: out.bdd[b],
                });
            }
            let mut outcomes = Vec::with_capacity(tuples.len());
            for &c in &batch_chunks[b] {
                outcomes.extend(
                    by_chunk[c]
                        .as_ref()
                        .expect("every chunk claimed exactly once")
                        .iter()
                        .cloned(),
                );
            }
            debug_assert_eq!(outcomes.len(), tuples.len());
            let shared_stats = self.opts.shared_cache.then(|| {
                self.engine
                    .shared_cache()
                    .attributed(stats.shared_hits, stats.shared_misses)
            });
            acc[*session].tuples += tuples.len();
            acc[*session].wall += wall;
            acc[*session].batches.push(BatchReport {
                outcomes,
                stats,
                bdd,
                shared: shared_stats,
                // the epoch's wall clock: co-resident sessions share
                // (and each report) the same epoch span
                wall,
                generation: epoch.generation(),
                workers: workers_out,
            });
        }
    }
}

/// Per-session accumulation across epochs.
#[derive(Default)]
struct SessionAcc {
    batches: Vec<BatchReport>,
    tuples: usize,
    wall: Duration,
}

/// What one epoch worker hands back to the stitcher.
struct EpochWorkerOut {
    /// `(order index, outcomes)` in claim order.
    chunks: Vec<(usize, Vec<FixOutcome>)>,
    /// Per-epoch-batch monitor statistics.
    stats: Vec<MonitorStats>,
    /// Per-epoch-batch BDD statistics (deltas of the worker's diagram).
    bdd: Vec<BddStats>,
}

/// `acc += after - before`, field by field (the BDD diagram is
/// per-worker, its counters monotone, so per-session charges are
/// deltas around each chunk).
fn accumulate_delta(acc: &mut BddStats, before: &BddStats, after: &BddStats) {
    acc.hits += after.hits - before.hits;
    acc.misses += after.misses - before.misses;
    acc.failed_checks += after.failed_checks - before.failed_checks;
    acc.dedup_reuses += after.dedup_reuses - before.dedup_reuses;
    acc.shared_hits += after.shared_hits - before.shared_hits;
    acc.shared_misses += after.shared_misses - before.shared_misses;
}

/// One multiplexed session's result: the stream's name plus a
/// [`SessionReport`] shaped exactly like a solo drain of the same
/// source (outcomes in the stream's own input order; batch boundaries
/// are the epochs the session took part in).
#[derive(Clone, Debug)]
pub struct NamedSessionReport {
    /// The [`ServiceStream`]'s name.
    pub name: String,
    /// The session's report.
    pub report: SessionReport,
}

/// The aggregate result of one [`RepairService::run`].
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Per-session reports, in the order the streams were passed.
    pub sessions: Vec<NamedSessionReport>,
    /// Merged monitor statistics over all sessions — for the
    /// deterministic count fields, equal to running the sessions one
    /// at a time and merging.
    pub stats: MonitorStats,
    /// Merged BDD statistics over all sessions.
    pub bdd: BddStats,
    /// Shared-cache statistics: attributed `hits` / `misses` summed
    /// over the sessions (equal to the engine-global probe counters
    /// this run added), pool occupancy from the engine's final
    /// snapshot. `None` when the shared cache was off.
    pub shared: Option<SharedCacheStats>,
    /// End-to-end wall clock of the run, *including* time spent
    /// waiting on producers (unlike the per-session `wall`s, which sum
    /// only repair epochs).
    pub wall: Duration,
    /// Scheduler epochs executed.
    pub epochs: u64,
    /// Total tuples repaired across all sessions.
    pub tuples: usize,
}

impl ServiceReport {
    /// Look up one session's report by stream name (the first match,
    /// if names were reused).
    pub fn session(&self, name: &str) -> Option<&SessionReport> {
        self.sessions
            .iter()
            .find(|s| s.name == name)
            .map(|s| &s.report)
    }

    /// Aggregate throughput in tuples per second (end-to-end wall).
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.tuples as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimulatedUser;
    use crate::session::{RepairSessionBuilder, SliceSource};
    use certainfix_datagen::{Dataset, DirtyConfig, Hosp, Workload};

    fn hosp_sessions(dm: usize, sizes: &[usize]) -> (Hosp, Vec<Dataset>) {
        let hosp = Hosp::generate(dm);
        let datasets = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                Dataset::generate(
                    &hosp,
                    &DirtyConfig {
                        duplicate_rate: 0.3,
                        noise_rate: 0.2,
                        input_size: n,
                        seed: 0x05E5_510A ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9),
                        skew: if i == 0 { 1.0 } else { 0.0 },
                        ..DirtyConfig::default()
                    },
                )
            })
            .collect();
        (hosp, datasets)
    }

    fn dirty_of(ds: &Dataset) -> Vec<Tuple> {
        ds.inputs.iter().map(|dt| dt.dirty.clone()).collect()
    }

    /// The tentpole determinism test: three unevenly sized HOSP
    /// streams (one skewed) multiplexed at 1, 2, and 4 workers — each
    /// session's outcomes and deterministic merged counts are
    /// bit-identical to draining that session alone through a solo
    /// [`RepairSession`], and the aggregate merge equals the sum of
    /// the solo runs.
    #[test]
    fn multiplexed_sessions_match_solo_runs_1_2_4() {
        let (hosp, datasets) = hosp_sessions(200, &[900, 150, 420]);
        let dirty: Vec<Vec<Tuple>> = datasets.iter().map(dirty_of).collect();

        // solo baselines: each stream drained alone, sequentially
        let solo: Vec<SessionReport> = datasets
            .iter()
            .zip(&dirty)
            .map(|(ds, tuples)| {
                let mut session =
                    RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
                        .threads(1)
                        .shared_cache(false)
                        .build();
                session.drain(SliceSource::with_batch(tuples, 128), |i| {
                    SimulatedUser::new(ds.inputs[i].clean.clone())
                });
                session.finish()
            })
            .collect();

        for workers in [1usize, 2, 4] {
            let service = RepairServiceBuilder::new(hosp.rules().clone(), hosp.master().clone())
                .threads(workers)
                .shared_cache(false)
                .build();
            let streams = datasets
                .iter()
                .zip(&dirty)
                .enumerate()
                .map(|(s, (ds, tuples))| {
                    ServiceStream::new(
                        format!("s{s}"),
                        SliceSource::with_batch(tuples, 128),
                        move |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone()),
                    )
                })
                .collect();
            let report = service.run(streams);
            assert_eq!(report.sessions.len(), 3);
            assert!(report.epochs > 0);
            let mut merged = MonitorStats::default();
            for (s, named) in report.sessions.iter().enumerate() {
                let (got, want) = (&named.report, &solo[s]);
                assert_eq!(named.name, format!("s{s}"));
                assert_eq!(got.tuples, want.tuples, "session {s}, {workers} workers");
                for (i, (a, b)) in got.outcomes().zip(want.outcomes()).enumerate() {
                    assert_eq!(
                        a.tuple, b.tuple,
                        "session {s} tuple {i} ({workers} workers)"
                    );
                    assert_eq!(a.certain, b.certain, "session {s} tuple {i}");
                    assert_eq!(a.validated, b.validated, "session {s} tuple {i}");
                    assert_eq!(a.rounds.len(), b.rounds.len(), "session {s} tuple {i}");
                }
                // the deterministic MonitorStats fields, bit-for-bit
                assert_eq!(got.stats.tuples, want.stats.tuples, "session {s}");
                assert_eq!(got.stats.certain, want.stats.certain, "session {s}");
                assert_eq!(got.stats.rounds, want.stats.rounds, "session {s}");
                assert_eq!(got.stats.plan_probes, want.stats.plan_probes, "session {s}");
                assert_eq!(
                    got.stats.plan_fallbacks, want.stats.plan_fallbacks,
                    "session {s}"
                );
                merged.merge(&got.stats);
            }
            // the aggregate is the order-independent merge of the
            // per-session stats — i.e. the sequential one-at-a-time run
            assert_eq!(report.stats.tuples, merged.tuples);
            assert_eq!(report.stats.certain, merged.certain);
            assert_eq!(report.stats.rounds, merged.rounds);
            assert_eq!(report.stats.plan_probes, merged.plan_probes);
            assert_eq!(report.tuples, 900 + 150 + 420);
            assert!(report.shared.is_none(), "shared cache was off");
        }
    }

    /// The satellite identity at the service level: with the shared
    /// cache on, per-session attributed hit/miss counters sum exactly
    /// to the engine-global cache-side counters.
    #[test]
    fn attributed_shared_counters_sum_to_engine_global() {
        let (hosp, datasets) = hosp_sessions(150, &[300, 200]);
        let dirty: Vec<Vec<Tuple>> = datasets.iter().map(dirty_of).collect();
        let service = RepairServiceBuilder::new(hosp.rules().clone(), hosp.master().clone())
            .bdd(true)
            .threads(3)
            .shared_cache(true)
            .build();
        let streams = datasets
            .iter()
            .zip(&dirty)
            .enumerate()
            .map(|(s, (ds, tuples))| {
                ServiceStream::new(
                    format!("s{s}"),
                    SliceSource::with_batch(tuples, 64),
                    move |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone()),
                )
            })
            .collect();
        let report = service.run(streams);
        let global = service.engine().shared_cache().stats();
        let (mut hits, mut misses) = (0u64, 0u64);
        for named in &report.sessions {
            let shared = named.report.shared.as_ref().expect("shared cache was on");
            assert_eq!(shared.hits, named.report.stats.shared_hits);
            assert_eq!(shared.misses, named.report.stats.shared_misses);
            hits += shared.hits;
            misses += shared.misses;
        }
        assert_eq!(
            (hits, misses),
            (global.hits, global.misses),
            "per-session attributed counters sum to the engine-global ones"
        );
        let agg = report.shared.as_ref().expect("aggregate shared stats");
        assert_eq!((agg.hits, agg.misses), (hits, misses));
        assert_eq!(agg.entries, global.entries);
        assert!(misses > 0, "something was computed");
        // repaired tuples still agree with solo runs even with the
        // caches on (checked reuse changes traces, never fixes)
        for (s, (ds, tuples)) in datasets.iter().zip(&dirty).enumerate() {
            let mut solo = RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
                .bdd(true)
                .threads(1)
                .shared_cache(false)
                .build();
            solo.drain(SliceSource::new(tuples), |i| {
                SimulatedUser::new(ds.inputs[i].clean.clone())
            });
            let solo = solo.finish();
            for (i, (a, b)) in report.sessions[s]
                .report
                .outcomes()
                .zip(solo.outcomes())
                .enumerate()
            {
                assert_eq!(a.tuple, b.tuple, "session {s} tuple {i}");
                assert_eq!(a.certain, b.certain, "session {s} tuple {i}");
            }
        }
    }

    /// Degenerate shapes: no streams, an empty stream next to a live
    /// one, and backpressured channel ingest all hold together.
    #[test]
    fn empty_and_channel_streams() {
        let (hosp, datasets) = hosp_sessions(100, &[120]);
        let ds = &datasets[0];
        let dirty = dirty_of(ds);

        let service = RepairServiceBuilder::new(hosp.rules().clone(), hosp.master().clone())
            .threads(2)
            .shared_cache(false)
            .depth(1)
            .build();

        // no streams at all
        let empty = service.run(Vec::new());
        assert_eq!(empty.sessions.len(), 0);
        assert_eq!(empty.tuples, 0);
        assert_eq!(empty.epochs, 0);
        assert_eq!(empty.throughput(), 0.0);

        // an exhausted-immediately stream riding along a channel-fed
        // one (the producer thread outruns depth=1 and blocks — real
        // backpressure — while the empty lane disconnects right away)
        let (tx, channel) = crate::session::ChannelSource::bounded(1);
        let report = std::thread::scope(|s| {
            let producer_dirty = &dirty;
            s.spawn(move || {
                for chunk in producer_dirty.chunks(16) {
                    if tx.send(chunk.to_vec()).is_err() {
                        break;
                    }
                }
            });
            service.run(vec![
                ServiceStream::new("empty", SliceSource::new(&[]), |_: usize| {
                    SimulatedUser::new(ds.inputs[0].clean.clone())
                }),
                ServiceStream::new("live", channel, |i: usize| {
                    SimulatedUser::new(ds.inputs[i].clean.clone())
                }),
            ])
        });
        assert_eq!(report.sessions[0].report.tuples, 0);
        assert!(report.sessions[0].report.batches.is_empty());
        assert_eq!(report.sessions[1].report.tuples, 120);
        assert_eq!(report.tuples, 120);
        assert!(report.epochs > 0);

        // the channel-fed session matches a solo drain of the same
        // stream cut the same way
        let mut solo = RepairSessionBuilder::new(hosp.rules().clone(), hosp.master().clone())
            .threads(1)
            .shared_cache(false)
            .build();
        solo.drain(SliceSource::with_batch(&dirty, 16), |i| {
            SimulatedUser::new(ds.inputs[i].clean.clone())
        });
        let solo = solo.finish();
        let live = report.session("live").expect("named lookup");
        for (i, (a, b)) in live.outcomes().zip(solo.outcomes()).enumerate() {
            assert_eq!(a.tuple, b.tuple, "tuple {i}");
        }
        assert_eq!(live.stats.rounds, solo.stats.rounds);
        assert!(report.session("nope").is_none());
    }

    /// The dynamic-attach hooks behind the network server: sessions
    /// attached to a *running* `run_dynamic` at staggered times get
    /// per-epoch [`SessionEvent::Batch`]es, exactly one
    /// [`SessionEvent::Finished`] equal to the final report, and
    /// results bit-identical to the all-up-front [`run`] (which is
    /// itself bit-identical to solo drains).
    #[test]
    fn dynamic_attach_matches_static_run() {
        let (hosp, datasets) = hosp_sessions(150, &[240, 90]);
        let dirty: Vec<Vec<Tuple>> = datasets.iter().map(dirty_of).collect();
        let mk_service = || {
            RepairServiceBuilder::new(hosp.rules().clone(), hosp.master().clone())
                .threads(2)
                .shared_cache(false)
                .build()
        };

        let baseline = mk_service().run(
            datasets
                .iter()
                .zip(&dirty)
                .enumerate()
                .map(|(s, (ds, tuples))| {
                    ServiceStream::new(
                        format!("s{s}"),
                        SliceSource::with_batch(tuples, 32),
                        move |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone()),
                    )
                })
                .collect(),
        );

        let service = mk_service();
        let (attach, queue) = attach_channel();
        let mut event_rxs = Vec::new();
        let report = std::thread::scope(|scope| {
            let attacher_sets = &datasets;
            let attacher_dirty = &dirty;
            let (ev0_tx, ev0_rx) = channel();
            let (ev1_tx, ev1_rx) = channel();
            event_rxs.push(ev0_rx);
            event_rxs.push(ev1_rx);
            scope.spawn(move || {
                for (s, ev) in [(0usize, ev0_tx), (1usize, ev1_tx)] {
                    let ds = &attacher_sets[s];
                    let tuples = &attacher_dirty[s];
                    attach
                        .attach(
                            ServiceStream::new(
                                format!("s{s}"),
                                SliceSource::with_batch(tuples, 32),
                                move |i: usize| SimulatedUser::new(ds.inputs[i].clean.clone()),
                            ),
                            Some(ev),
                        )
                        .ok()
                        .expect("service is draining");
                    // stagger: the second session arrives while the
                    // first is (likely) mid-flight
                    std::thread::sleep(Duration::from_millis(10));
                }
                drop(attach); // shutdown signal: drain, then return
            });
            service.run_dynamic(queue)
        });

        assert_eq!(report.sessions.len(), 2);
        for (s, named) in report.sessions.iter().enumerate() {
            let want = &baseline.sessions[s].report;
            assert_eq!(named.name, format!("s{s}"));
            assert_eq!(named.report.tuples, want.tuples, "session {s}");
            for (i, (a, b)) in named.report.outcomes().zip(want.outcomes()).enumerate() {
                assert_eq!(a, b, "session {s} tuple {i}");
            }
            assert_eq!(named.report.stats.rounds, want.stats.rounds);
            assert_eq!(named.report.stats.plan_probes, want.stats.plan_probes);

            // the observer channel saw one Batch per epoch the session
            // took part in, then Finished with the very same report
            let evs: Vec<SessionEvent> = event_rxs[s].try_iter().collect();
            let batches: Vec<&BatchReport> = evs
                .iter()
                .filter_map(|e| match e {
                    SessionEvent::Batch(b) => Some(b),
                    SessionEvent::Finished(_) => None,
                })
                .collect();
            assert_eq!(batches.len(), named.report.batches.len(), "session {s}");
            for (eb, rb) in batches.iter().zip(&named.report.batches) {
                assert_eq!(eb.outcomes, rb.outcomes, "session {s}");
            }
            match evs.last() {
                Some(SessionEvent::Finished(final_report)) => {
                    assert_eq!(final_report.tuples, named.report.tuples);
                    assert_eq!(final_report.stats.rounds, named.report.stats.rounds);
                }
                other => panic!("session {s}: expected trailing Finished, got {other:?}"),
            }
        }
        assert_eq!(report.tuples, baseline.tuples);
        assert_eq!(report.stats.rounds, baseline.stats.rounds);
    }
}
