//! The interner-watermark bound (the `interner-watermark` CI leg):
//! under the adversarial free-text stream — every corrupted cell a
//! fresh, never-repeated symbol — the global interner must grow by at
//! most one symbol per corrupted cell over the workload baseline, and
//! the engine's reported [`MonitorStats::interner_syms`] watermark
//! must account for every payload.
//!
//! This lives in its own integration-test binary (one `#[test]`, one
//! process) because the interner is process-global: unit tests running
//! concurrently would intern their own symbols between our
//! measurements and make the bound unattributable.
//!
//! [`MonitorStats::interner_syms`]: certainfix_core::MonitorStats::interner_syms

use certainfix_core::{BatchRepairEngine, RepairContext, RepairOptions, SimulatedUser};
use certainfix_datagen::{Dataset, DirtyConfig, Hosp, Workload};
use certainfix_relation::{Interner, Tuple, Value};

#[test]
fn free_text_interner_growth_is_one_symbol_per_corrupted_cell() {
    let hosp = Hosp::generate(400);
    // everything the workload itself interns (master values, rule
    // pattern constants) is in by now — the attributable baseline
    let baseline = Interner::global().len() as u64;

    // duplicate_rate 1.0: every clean tuple copies an already-interned
    // master row, so the only post-baseline symbols are the corrupted
    // payloads themselves
    let cfg = DirtyConfig {
        duplicate_rate: 1.0,
        noise_rate: 0.4,
        input_size: 500,
        seed: 11,
        free_text: 1.0,
        ..Default::default()
    };
    let ds = Dataset::generate(&hosp, &cfg);
    let mut payloads = std::collections::HashSet::new();
    let mut cells = 0u64;
    for t in &ds.inputs {
        for a in t.error_attrs() {
            cells += 1;
            if let v @ Value::Str(_) = t.dirty.get(a) {
                payloads.insert(*v);
            }
        }
    }
    assert!(cells > 1_000, "enough corrupted cells to be meaningful");
    assert_eq!(
        payloads.len() as u64,
        cells,
        "free-text corruption never repeats a payload"
    );

    let engine = BatchRepairEngine::new(RepairContext::new(
        hosp.rules().clone(),
        hosp.master().clone(),
        false,
    ));
    let dirty: Vec<Tuple> = ds.inputs.iter().map(|dt| dt.dirty.clone()).collect();
    let report = engine.repair_opts(&dirty, &RepairOptions::default(), |i| {
        SimulatedUser::new(ds.inputs[i].clean.clone())
    });

    assert_eq!(report.stats.tuples, 500);
    // the watermark saw every payload...
    assert!(
        report.stats.interner_syms >= baseline + payloads.len() as u64,
        "watermark {} misses payloads over baseline {baseline}",
        report.stats.interner_syms
    );
    // ...and the documented bound holds: one symbol per corrupted
    // cell, plus a small constant for incidental literals
    assert!(
        report.stats.interner_syms <= baseline + cells + 64,
        "watermark {} exceeds baseline {baseline} + {cells} cells + 64",
        report.stats.interner_syms
    );
}
