//! Criterion kernels for the compiled rule-plan probe layer
//! (`BENCH_plan` in CI).
//!
//! Three altitudes, each an A/B of the legacy lock-and-clone
//! `MasterIndex` path against the compiled [`RulePlan`]:
//!
//! * `plan_probe` — the bare `tm[Xm] = t[X]` candidate probe, per rule
//!   per tuple (the unit the paper's "constant time by hash table"
//!   argument is about);
//! * `transfix_plan` — one full `TransFix` pass over a master-backed
//!   tuple, the per-round fixing cost;
//! * `batch_repair_plan` — the end-to-end hosp50k batch-repair kernel
//!   (plain `CertainFix`, caches off, one worker) through the compiled
//!   probe layer. The engine-level `--plan off` toggle retired; the
//!   legacy lock-and-clone path survives only as the per-kernel
//!   baselines above and as the determinism oracle in tests;
//! * `master_delta` — one [`MasterDelta`] application: maintain the
//!   index, recompile the plan, re-rank the catalog, swap the epoch —
//!   the cost a live-master deployment pays per mutation batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use certainfix_bench::runner::Which;
use certainfix_core::{
    transfix, transfix_with, BatchRepairEngine, CertainFixConfig, InitialRegion, RepairContext,
    RepairOptions, Schedule, SimulatedUser,
};
use certainfix_datagen::{Dataset, DirtyConfig};
use certainfix_relation::{AttrSet, MasterDelta, Tuple};
use certainfix_rules::{candidate_masters, DependencyGraph, ProbeScratch, RulePlan};

fn bench_plan_probe(c: &mut Criterion) {
    let w = Which::Hosp.build(10_000);
    let plan = RulePlan::compile(w.rules(), w.master_index());
    // a contiguous chunk of a bursty duplicate-heavy stream (a hot
    // window of 8 master entities re-entered with occasional typos —
    // an operator working through a stack of forms for the same few
    // hospitals) — the regime block probing amortizes: repeated probe
    // keys hash once and share a hit list. The CI block-size leg
    // separately covers the skewed stream for determinism, and
    // `plan_probe/compiled` above gives the same-stream single-tuple
    // baseline.
    let ds = Dataset::generate(
        w.as_ref(),
        &DirtyConfig {
            duplicate_rate: 0.95,
            noise_rate: 0.05,
            input_size: 256,
            seed: 7,
            hot: 8,
            ..Default::default()
        },
    );
    let tuples: Vec<Tuple> = ds.inputs.iter().map(|dt| dt.dirty.clone()).collect();

    c.bench_with_input(
        BenchmarkId::new("plan_probe", "legacy"),
        &tuples,
        |b, tuples| {
            let mut i = 0;
            b.iter(|| {
                let t = &tuples[i % tuples.len()];
                i += 1;
                let mut hits = 0usize;
                for (_, rule) in w.rules().iter() {
                    hits += candidate_masters(rule, t, w.master_index()).len();
                }
                black_box(hits)
            });
        },
    );
    c.bench_with_input(
        BenchmarkId::new("plan_probe", "compiled"),
        &tuples,
        |b, tuples| {
            let mut scratch = ProbeScratch::new();
            let mut i = 0;
            b.iter(|| {
                let t = &tuples[i % tuples.len()];
                i += 1;
                let mut hits = 0usize;
                for (r, _) in plan.iter() {
                    hits += plan.candidates(r, t, &mut scratch).len();
                }
                black_box(hits)
            });
        },
    );
    // the tentpole kernel: the same all-rules probe amortized over a
    // block session — sibling rules share one dedup pass per probe
    // group and duplicate keys hash once. Cells the block layer
    // declines to prefetch (fat hit lists of wide trie groups stay on
    // the borrow path) fall back to the single-tuple probe, exactly as
    // `transfix_block` does. Divide the reported time by the block
    // size for the per-tuple figure comparable to `plan_probe`.
    let refs: Vec<&Tuple> = tuples.iter().collect();
    for size in [64usize, 256] {
        let chunk = &refs[..size];
        c.bench_with_input(
            BenchmarkId::new("plan_probe_block", format!("block{size}")),
            &chunk,
            |b, refs| {
                let mut scratch = ProbeScratch::new();
                b.iter(|| {
                    let mut hits = 0usize;
                    plan.begin_block(refs.len(), &mut scratch);
                    for (r, _) in plan.iter() {
                        plan.plan_probe_block(r, refs, &mut scratch);
                    }
                    for (r, _) in plan.iter() {
                        for (j, t) in refs.iter().enumerate() {
                            hits += match plan.block_candidates(r, j, &mut scratch) {
                                Some(h) => h.len(),
                                None => plan.candidates(r, t, &mut scratch).len(),
                            };
                        }
                    }
                    black_box(hits)
                });
            },
        );
    }

    // one full TransFix pass from the best region's Z
    let graph = DependencyGraph::new(w.rules());
    let catalog = certainfix_reasoning::RegionCatalog::build(w.rules(), w.master_index());
    let z: AttrSet = catalog
        .best()
        .expect("catalog non-empty")
        .z()
        .iter()
        .copied()
        .collect();
    let prepared: Vec<Tuple> = ds
        .inputs
        .iter()
        .map(|dt| {
            let mut t = dt.dirty.clone();
            for a in z.iter() {
                t.set(a, *dt.clean.get(a));
            }
            t
        })
        .collect();
    c.bench_with_input(
        BenchmarkId::new("transfix_plan", "legacy"),
        &prepared,
        |b, tuples| {
            let mut i = 0;
            b.iter(|| {
                let t = &tuples[i % tuples.len()];
                i += 1;
                black_box(transfix(w.rules(), w.master_index(), &graph, t, z))
            });
        },
    );
    c.bench_with_input(
        BenchmarkId::new("transfix_plan", "compiled"),
        &prepared,
        |b, tuples| {
            let mut scratch = ProbeScratch::new();
            let mut i = 0;
            b.iter(|| {
                let t = &tuples[i % tuples.len()];
                i += 1;
                black_box(transfix_with(
                    w.rules(),
                    w.master_index(),
                    &graph,
                    &plan,
                    &mut scratch,
                    t,
                    z,
                ))
            });
        },
    );
}

/// The acceptance kernel: the hosp50k batch repaired through the
/// compiled probe layer. Plain `CertainFix`, both caches off, one
/// worker — the configuration whose per-tuple cost the `plan_probe`
/// and `transfix_plan` kernels above decompose.
fn bench_batch_repair_plan(c: &mut Criterion) {
    let w = Which::Hosp.build(10_000);
    let ds = Dataset::generate(
        w.as_ref(),
        &DirtyConfig {
            duplicate_rate: 0.3,
            noise_rate: 0.2,
            input_size: 50_000,
            seed: 21,
            ..Default::default()
        },
    );
    let dirty: Vec<Tuple> = ds.inputs.iter().map(|dt| dt.dirty.clone()).collect();
    let opts = RepairOptions {
        threads: 1,
        schedule: Schedule::Steal,
        shared_cache: false,
        chunk: 0,
    };
    let engine = BatchRepairEngine::new(RepairContext::with_config(
        w.rules().clone(),
        w.master().clone(),
        false,
        InitialRegion::Best,
        CertainFixConfig::default(),
    ));
    // warm the lazily built master key indexes out of the measurement
    engine.repair_opts(&dirty[..64], &opts, |i| {
        SimulatedUser::new(ds.inputs[i].clean.clone())
    });
    c.bench_with_input(
        BenchmarkId::new("batch_repair_plan", "hosp50k"),
        &dirty,
        |b, dirty| {
            b.iter(|| {
                let report = engine.repair_opts(dirty, &opts, |i| {
                    SimulatedUser::new(ds.inputs[i].clean.clone())
                });
                black_box((report.stats.certain, report.throughput()))
            })
        },
    );
}

/// The live-master mutation cost: apply a `size`-row update delta to a
/// 10k-row master and stand up the next epoch (index maintenance +
/// plan recompile + catalog re-rank + atomic swap). Updates only, so
/// the master's size is invariant across iterations and every
/// application pays the same maintenance bill.
fn bench_master_delta(c: &mut Criterion) {
    let w = Which::Hosp.build(10_000);
    let ctx = RepairContext::with_config(
        w.rules().clone(),
        w.master().clone(),
        false,
        InitialRegion::Best,
        CertainFixConfig::default(),
    );
    for size in [1usize, 64] {
        let mut delta = MasterDelta::new();
        for id in 0..size as u32 {
            delta = delta.update(id, w.master().tuple(id as usize).clone());
        }
        c.bench_with_input(
            BenchmarkId::new("master_delta", format!("update{size}")),
            &delta,
            |b, delta| b.iter(|| black_box(ctx.apply_master_delta(delta).expect("delta applies"))),
        );
    }
}

criterion_group! {
    name = probes;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_plan_probe
}
criterion_group! {
    name = batch;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_batch_repair_plan, bench_master_delta
}
criterion_main!(probes, batch);
