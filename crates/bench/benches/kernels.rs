//! Criterion microbenchmarks for the framework's kernels.
//!
//! * `transfix` — one TransFix pass over a master-backed tuple (the
//!   per-round fixing cost of Fig. 12);
//! * `chase_validate` — the unique-fix validation of a user assertion;
//! * `suggest` — computing a fresh suggestion (the cost `Suggest+`
//!   amortizes away);
//! * `is_suggestion` — the BDD cache's cheap re-check;
//! * `region_catalog` — the offline certain-region deduction;
//! * `increp_batch64` — the per-tuple `IncRep` CFD repair over a
//!   small batch;
//! * `value_eq` / `key_hash` / `index_lookup` — the interned-symbol
//!   value representation against the seed's `Arc<str>` payloads, on
//!   the exact operations rule application performs per cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use certainfix_bench::runner::Which;
use certainfix_cfd::{repair_tuple, rules_to_cfds, IncRepConfig};
use certainfix_core::{
    transfix, BatchRepairEngine, RepairContext, RepairOptions, Schedule, SimulatedUser,
};
use certainfix_datagen::{Dataset, DirtyConfig};
use certainfix_reasoning::{is_suggestion, suggest, Chase, RegionCatalog};
use certainfix_relation::{AttrSet, FxBuildHasher, FxHashMap, Tuple, Value};
use certainfix_rules::DependencyGraph;

fn bench_kernels(c: &mut Criterion) {
    for which in Which::BOTH {
        let w = which.build(5_000);
        let graph = DependencyGraph::new(w.rules());
        let ds = Dataset::generate(
            w.as_ref(),
            &DirtyConfig {
                duplicate_rate: 1.0,
                noise_rate: 0.2,
                input_size: 64,
                seed: 7,
                ..Default::default()
            },
        );
        let catalog = RegionCatalog::build(w.rules(), w.master_index());
        let z: AttrSet = catalog
            .best()
            .expect("catalog non-empty")
            .z()
            .iter()
            .copied()
            .collect();
        // tuples with the initial region already asserted correct
        let prepared: Vec<_> = ds
            .inputs
            .iter()
            .map(|dt| {
                let mut t = dt.dirty.clone();
                for a in z.iter() {
                    t.set(a, *dt.clean.get(a));
                }
                t
            })
            .collect();

        c.bench_with_input(
            BenchmarkId::new("transfix", which.name()),
            &prepared,
            |b, tuples| {
                let mut i = 0;
                b.iter(|| {
                    let t = &tuples[i % tuples.len()];
                    i += 1;
                    black_box(transfix(w.rules(), w.master_index(), &graph, t, z))
                });
            },
        );

        c.bench_with_input(
            BenchmarkId::new("chase_validate", which.name()),
            &prepared,
            |b, tuples| {
                let chase = Chase::new(w.rules(), w.master_index());
                let mut i = 0;
                b.iter(|| {
                    let t = &tuples[i % tuples.len()];
                    i += 1;
                    black_box(chase.run(t, z).is_unique())
                });
            },
        );

        // suggestion cost on partially validated tuples
        let partial: AttrSet = z.iter().take(1).collect();
        c.bench_with_input(
            BenchmarkId::new("suggest", which.name()),
            &prepared,
            |b, tuples| {
                let mut i = 0;
                b.iter(|| {
                    let t = &tuples[i % tuples.len()];
                    i += 1;
                    black_box(suggest(w.rules(), w.master_index(), t, partial))
                });
            },
        );

        let cached = suggest(w.rules(), w.master_index(), &prepared[0], partial)
            .expect("suggestion exists")
            .attrs;
        c.bench_with_input(
            BenchmarkId::new("is_suggestion", which.name()),
            &prepared,
            |b, tuples| {
                let mut i = 0;
                b.iter(|| {
                    let t = &tuples[i % tuples.len()];
                    i += 1;
                    black_box(is_suggestion(
                        w.rules(),
                        w.master_index(),
                        t,
                        partial,
                        &cached,
                    ))
                });
            },
        );

        c.bench_function(&format!("region_catalog/{}", which.name()), |b| {
            b.iter(|| black_box(RegionCatalog::build(w.rules(), w.master_index())))
        });

        let (cfds, _) = rules_to_cfds(w.rules());
        let inc_cfg = IncRepConfig::default();
        c.bench_function(&format!("increp_batch64/{}", which.name()), |b| {
            b.iter(|| {
                let mut unresolved = 0usize;
                for dt in &ds.inputs {
                    unresolved +=
                        repair_tuple(&cfds, &dt.dirty, w.master_index(), &inc_cfg).unresolved;
                }
                black_box(unresolved)
            })
        });
    }
}

/// The seed's value representation, reconstructed for comparison:
/// string payloads as reference-counted byte strings, equality and
/// hashing over the bytes.
#[derive(Clone, PartialEq, Eq, Hash)]
enum ArcValue {
    #[allow(dead_code)]
    Null,
    #[allow(dead_code)]
    Int(i64),
    Str(Arc<str>),
}

/// Composite `(zip, city)`-shaped keys in both representations, plus a
/// probe sequence with ~50% hits — the shape of `tm[Xm] = t[X]` probes.
#[allow(clippy::type_complexity)]
fn value_workload() -> (
    Vec<Box<[Value]>>,
    Vec<Box<[ArcValue]>>,
    Vec<Box<[Value]>>,
    Vec<Box<[ArcValue]>>,
) {
    let text: Vec<(String, String)> = (0..4096)
        .map(|i| {
            (
                format!("EH{:02} {}AH", i % 97, i % 10),
                format!("city-of-{}", i % city_modulus(i)),
            )
        })
        .collect();
    let interned: Vec<Box<[Value]>> = text
        .iter()
        .map(|(zip, city)| vec![Value::str(zip), Value::str(city)].into_boxed_slice())
        .collect();
    let arced: Vec<Box<[ArcValue]>> = text
        .iter()
        .map(|(zip, city)| {
            vec![
                ArcValue::Str(Arc::from(zip.as_str())),
                ArcValue::Str(Arc::from(city.as_str())),
            ]
            .into_boxed_slice()
        })
        .collect();
    // probes: even indexes re-probe a present key, odd ones miss
    let probe_text: Vec<(String, String)> = (0..4096)
        .map(|i| {
            if i % 2 == 0 {
                text[(i * 31) % text.len()].clone()
            } else {
                (format!("ZZ{i} XX"), format!("nowhere-{i}"))
            }
        })
        .collect();
    let probes_interned = probe_text
        .iter()
        .map(|(zip, city)| vec![Value::str(zip), Value::str(city)].into_boxed_slice())
        .collect();
    let probes_arced = probe_text
        .iter()
        .map(|(zip, city)| {
            vec![
                ArcValue::Str(Arc::from(zip.as_str())),
                ArcValue::Str(Arc::from(city.as_str())),
            ]
            .into_boxed_slice()
        })
        .collect();
    (interned, arced, probes_interned, probes_arced)
}

/// A small co-prime modulus so city names repeat but not in lockstep
/// with the zip pattern.
fn city_modulus(i: usize) -> usize {
    83 + (i % 3)
}

fn bench_value_representation(c: &mut Criterion) {
    let (interned, arced, probes_i, probes_a) = value_workload();

    // equality: every probe against every 64th key — pure compare loop
    c.bench_with_input(BenchmarkId::new("value_eq", "interned"), &(), |b, ()| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes_i {
                for k in interned.iter().step_by(64) {
                    if p == k {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    c.bench_with_input(BenchmarkId::new("value_eq", "string"), &(), |b, ()| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes_a {
                for k in arced.iter().step_by(64) {
                    if p == k {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });

    // hashing: the per-probe cost of the hash-index path
    let hasher = FxBuildHasher::default();
    c.bench_with_input(BenchmarkId::new("key_hash", "interned"), &(), |b, ()| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &probes_i {
                acc ^= std::hash::BuildHasher::hash_one(&hasher, p);
            }
            black_box(acc)
        })
    });
    c.bench_with_input(BenchmarkId::new("key_hash", "string"), &(), |b, ()| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in &probes_a {
                acc ^= std::hash::BuildHasher::hash_one(&hasher, p);
            }
            black_box(acc)
        })
    });

    // end-to-end index probe: build once, look up per probe
    let map_i: FxHashMap<&[Value], u32> = interned
        .iter()
        .enumerate()
        .map(|(i, k)| (&**k, i as u32))
        .collect();
    let map_a: FxHashMap<&[ArcValue], u32> = arced
        .iter()
        .enumerate()
        .map(|(i, k)| (&**k, i as u32))
        .collect();
    c.bench_with_input(
        BenchmarkId::new("index_lookup", "interned"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in &probes_i {
                    if map_i.contains_key(&**p) {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        },
    );
    c.bench_with_input(BenchmarkId::new("index_lookup", "string"), &(), |b, ()| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes_a {
                if map_a.contains_key(&**p) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

/// The acceptance kernel for the parallel engine: sequential vs
/// parallel throughput on a 50k-tuple HOSP batch. The 4-worker variant
/// should reach ≥ 2× the sequential tuples/s on a ≥ 4-core machine
/// (tuple repairs are independent; the only shared state is the
/// read-mostly master index, the lock-free interner, and — when
/// enabled — the sharded suggestion cache).
///
/// Two batch shapes are measured:
///
/// * `hosp50k` — the paper's uniform stream, where contiguous shards
///   are already balanced and `steal` should only have to match
///   `shard`;
/// * `hosp50k-skewed` — zipf-ish hardness concentrated at the head of
///   the stream (`skew = 1.0`), the adversarial case for `shard`
///   (worker 0 swallows the whole hard region) and the acceptance
///   case for `steal` + shared cache: at 4 workers on a ≥ 4-core
///   machine it must be measurably faster than `shard` at 4 workers.
fn bench_batch_repair(c: &mut Criterion) {
    let w = Which::Hosp.build(10_000);
    // the skewed shape pairs a mostly-duplicate (1-round) tail with a
    // mostly-fresh, noise-saturated head: the per-tuple work ratio
    // between head and tail is ~2x, all of it dealt to shard worker 0
    for (shape, d, skew) in [("hosp50k", 0.3, 0.0), ("hosp50k-skewed", 0.9, 1.0)] {
        let ds = Dataset::generate(
            w.as_ref(),
            &DirtyConfig {
                duplicate_rate: d,
                noise_rate: 0.2,
                input_size: 50_000,
                seed: 21,
                skew,
                ..Default::default()
            },
        );
        let dirty: Vec<Tuple> = ds.inputs.iter().map(|dt| dt.dirty.clone()).collect();
        for (mode, schedule, shared_cache) in [
            ("shard", Schedule::Shard, false),
            ("steal+shared", Schedule::Steal, true),
        ] {
            // a fresh engine per mode: the shared cache persists across
            // iterations (the streaming setting), but must not leak
            // between the modes under comparison
            let engine = BatchRepairEngine::new(RepairContext::new(
                w.rules().clone(),
                w.master().clone(),
                true,
            ));
            // warm the lazily built master key indexes out of the
            // measurement
            engine.repair_opts(&dirty[..64], &RepairOptions::default(), |i| {
                SimulatedUser::new(ds.inputs[i].clean.clone())
            });
            for threads in [1usize, 4] {
                let opts = RepairOptions {
                    threads,
                    schedule,
                    shared_cache,
                    chunk: 0,
                };
                c.bench_with_input(
                    BenchmarkId::new("batch_repair", format!("{shape}/{mode}/threads{threads}")),
                    &dirty,
                    |b, dirty| {
                        b.iter(|| {
                            let report = engine.repair_opts(dirty, &opts, |i| {
                                SimulatedUser::new(ds.inputs[i].clean.clone())
                            });
                            black_box((report.stats.certain, report.throughput()))
                        })
                    },
                );
            }
        }
    }
}

criterion_group! {
    name = kernels;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels, bench_value_representation
}
criterion_group! {
    name = batch;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(5))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_batch_repair
}
criterion_main!(kernels, batch);
