//! Criterion microbenchmarks for the framework's kernels.
//!
//! * `transfix` — one TransFix pass over a master-backed tuple (the
//!   per-round fixing cost of Fig. 12);
//! * `chase_validate` — the unique-fix validation of a user assertion;
//! * `suggest` — computing a fresh suggestion (the cost `Suggest+`
//!   amortizes away);
//! * `is_suggestion` — the BDD cache's cheap re-check;
//! * `region_catalog` — the offline certain-region deduction;
//! * `increp_tuple` — the `IncRep` baseline over a small batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use certainfix_bench::runner::Which;
use certainfix_cfd::{increp, rules_to_cfds, IncRepConfig};
use certainfix_core::transfix;
use certainfix_datagen::{Dataset, DirtyConfig};
use certainfix_reasoning::{is_suggestion, suggest, Chase, RegionCatalog};
use certainfix_relation::{AttrSet, Relation};
use certainfix_rules::DependencyGraph;

fn bench_kernels(c: &mut Criterion) {
    for which in Which::BOTH {
        let w = which.build(5_000);
        let graph = DependencyGraph::new(w.rules());
        let ds = Dataset::generate(
            w.as_ref(),
            &DirtyConfig {
                duplicate_rate: 1.0,
                noise_rate: 0.2,
                input_size: 64,
                seed: 7,
            },
        );
        let catalog = RegionCatalog::build(w.rules(), w.master_index());
        let z: AttrSet = catalog
            .best()
            .expect("catalog non-empty")
            .z()
            .iter()
            .copied()
            .collect();
        // tuples with the initial region already asserted correct
        let prepared: Vec<_> = ds
            .inputs
            .iter()
            .map(|dt| {
                let mut t = dt.dirty.clone();
                for a in z.iter() {
                    t.set(a, dt.clean.get(a).clone());
                }
                t
            })
            .collect();

        c.bench_with_input(
            BenchmarkId::new("transfix", which.name()),
            &prepared,
            |b, tuples| {
                let mut i = 0;
                b.iter(|| {
                    let t = &tuples[i % tuples.len()];
                    i += 1;
                    black_box(transfix(w.rules(), w.master_index(), &graph, t, z))
                });
            },
        );

        c.bench_with_input(
            BenchmarkId::new("chase_validate", which.name()),
            &prepared,
            |b, tuples| {
                let chase = Chase::new(w.rules(), w.master_index());
                let mut i = 0;
                b.iter(|| {
                    let t = &tuples[i % tuples.len()];
                    i += 1;
                    black_box(chase.run(t, z).is_unique())
                });
            },
        );

        // suggestion cost on partially validated tuples
        let partial: AttrSet = z.iter().take(1).collect();
        c.bench_with_input(
            BenchmarkId::new("suggest", which.name()),
            &prepared,
            |b, tuples| {
                let mut i = 0;
                b.iter(|| {
                    let t = &tuples[i % tuples.len()];
                    i += 1;
                    black_box(suggest(w.rules(), w.master_index(), t, partial))
                });
            },
        );

        let cached = suggest(w.rules(), w.master_index(), &prepared[0], partial)
            .expect("suggestion exists")
            .attrs;
        c.bench_with_input(
            BenchmarkId::new("is_suggestion", which.name()),
            &prepared,
            |b, tuples| {
                let mut i = 0;
                b.iter(|| {
                    let t = &tuples[i % tuples.len()];
                    i += 1;
                    black_box(is_suggestion(
                        w.rules(),
                        w.master_index(),
                        t,
                        partial,
                        &cached,
                    ))
                });
            },
        );

        c.bench_function(&format!("region_catalog/{}", which.name()), |b| {
            b.iter(|| black_box(RegionCatalog::build(w.rules(), w.master_index())))
        });

        let (cfds, _) = rules_to_cfds(w.rules());
        let dirty_rel = Relation::new(
            w.schema().clone(),
            ds.inputs.iter().map(|dt| dt.dirty.clone()).collect(),
        )
        .unwrap();
        c.bench_function(&format!("increp_batch64/{}", which.name()), |b| {
            b.iter(|| {
                black_box(increp(
                    &dirty_rel,
                    &cfds,
                    w.master_index(),
                    &IncRepConfig::default(),
                ))
            })
        });
    }
}

criterion_group! {
    name = kernels;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels
}
criterion_main!(kernels);
