//! Criterion benchmark of the end-to-end monitoring pipeline — the
//! measured counterpart of Fig. 12: per-tuple processing cost for
//! `CertainFix` (fresh suggestions) vs `CertainFix+` (BDD cache), on
//! both workloads, at two master sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use certainfix_bench::runner::Which;
use certainfix_core::{DataMonitor, SimulatedUser};
use certainfix_datagen::{Dataset, DirtyConfig};

fn bench_pipeline(c: &mut Criterion) {
    for which in Which::BOTH {
        for dm in [2_000usize, 10_000] {
            let w = which.build(dm);
            let ds = Dataset::generate(
                w.as_ref(),
                &DirtyConfig {
                    duplicate_rate: 0.3,
                    noise_rate: 0.2,
                    input_size: 256,
                    seed: 11,
                    ..Default::default()
                },
            );
            for use_bdd in [false, true] {
                let label = format!(
                    "{}/dm{}/{}",
                    which.name(),
                    dm,
                    if use_bdd { "certainfix+" } else { "certainfix" }
                );
                c.bench_with_input(BenchmarkId::new("process", label), &ds, |b, ds| {
                    // one warm monitor per measurement batch: the BDD
                    // cache amortizes across tuples, exactly like the
                    // streaming setting of Fig. 12c/d
                    let mut monitor =
                        DataMonitor::new(w.rules().clone(), w.master().clone(), use_bdd);
                    let mut i = 0usize;
                    b.iter(|| {
                        let dt = &ds.inputs[i % ds.inputs.len()];
                        i += 1;
                        let mut user = SimulatedUser::new(dt.clean.clone());
                        black_box(monitor.process(&dt.dirty, &mut user))
                    });
                });
            }
        }
    }
}

criterion_group! {
    name = pipeline;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline
}
criterion_main!(pipeline);
