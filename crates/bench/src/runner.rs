//! Shared experiment plumbing: workload construction, monitored runs,
//! metric evaluation, and the `IncRep` comparison run.

use std::time::Duration;

use certainfix_cfd::{increp, rules_to_cfds, IncRepConfig};
use certainfix_core::{
    evaluate_changes, evaluate_rounds, merge_round_series, BatchRepairEngine, CertainFixConfig,
    ChangeCounts, FixOutcome, InitialRegion, MonitorStats, RepairOptions, RoundMetrics, Schedule,
    SimulatedUser, TupleEval, WorkerReport,
};
use certainfix_datagen::{Dataset, Dblp, DirtyConfig, Hosp, Workload};
use certainfix_relation::Tuple;

use crate::args::Args;

/// Which dataset an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Which {
    /// The hospital workload (19 attrs, 21 eRs).
    Hosp,
    /// The bibliography workload (12 attrs, 16 eRs).
    Dblp,
}

impl Which {
    /// Both workloads, in the paper's order.
    pub const BOTH: [Which; 2] = [Which::Hosp, Which::Dblp];

    /// Lower-case name as used in output rows.
    pub fn name(self) -> &'static str {
        match self {
            Which::Hosp => "hosp",
            Which::Dblp => "dblp",
        }
    }

    /// Build the workload with `dm` master rows.
    pub fn build(self, dm: usize) -> Box<dyn Workload> {
        match self {
            Which::Hosp => Box::new(Hosp::generate(dm)),
            Which::Dblp => Box::new(Dblp::generate(dm)),
        }
    }
}

/// Full experiment configuration (paper defaults unless overridden).
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Master size `|Dm|` (paper default 10K).
    pub dm: usize,
    /// Input tuples `|D|` (paper default 10K; binaries default lower to
    /// keep a full sweep under a minute — use `--inputs` to scale up).
    pub inputs: usize,
    /// Duplicate rate `d%` (paper default 0.30).
    pub d: f64,
    /// Noise rate `n%` (paper default 0.20).
    pub n: f64,
    /// RNG seed.
    pub seed: u64,
    /// Oracle compliance (1.0 = assert every suggested attribute).
    pub compliance: f64,
    /// Use the BDD suggestion cache (`CertainFix+`).
    pub use_bdd: bool,
    /// Which precomputed region seeds round 1.
    pub initial: InitialRegion,
    /// Batch-repair workers (1 = sequential; 0 = one per available
    /// core).
    pub threads: usize,
    /// Scheduling policy for parallel batch repair.
    pub schedule: Schedule,
    /// Pool computed suggestions across workers in the engine's shared
    /// cache.
    pub shared_cache: bool,
    /// Zipf-ish positional hardness skew of the dirty stream
    /// ([`DirtyConfig::skew`]; 0 = the paper's uniform stream).
    pub skew: f64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            dm: 10_000,
            inputs: 2_000,
            d: 0.30,
            n: 0.20,
            seed: 0xC0FFEE,
            compliance: 1.0,
            use_bdd: true,
            initial: InitialRegion::Best,
            threads: 1,
            schedule: Schedule::Steal,
            shared_cache: true,
            skew: 0.0,
        }
    }
}

impl ExpConfig {
    /// Read overrides from CLI flags; an *invalid value* for an
    /// enumerated flag (`--initial`, `--schedule`, `--shared-cache`)
    /// prints the error to stderr and exits 2, matching the strict
    /// treatment of unknown flag names — a typo'd mode must never
    /// silently run the experiment under the default mode.
    pub fn from_args(args: &Args) -> ExpConfig {
        match Self::try_from_args(args) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// [`from_args`](Self::from_args) without the exit: invalid
    /// enumerated values come back as `Err`.
    pub fn try_from_args(args: &Args) -> Result<ExpConfig, String> {
        let default = ExpConfig::default();
        let threads = match args.usize_or("threads", default.threads) {
            0 => BatchRepairEngine::auto_threads(),
            t => t,
        };
        let initial = match args.str_or("initial", "best") {
            "best" => InitialRegion::Best,
            "median" => InitialRegion::Median,
            other => return Err(format!("invalid --initial `{other}` (best|median)")),
        };
        let schedule = Schedule::parse(args.str_or("schedule", default.schedule.name()))
            .ok_or_else(|| {
                format!(
                    "invalid --schedule `{}` (shard|steal)",
                    args.str_or("schedule", "")
                )
            })?;
        let shared_cache = match args.str_or("shared-cache", "on") {
            "on" => true,
            "off" => false,
            other => return Err(format!("invalid --shared-cache `{other}` (on|off)")),
        };
        Ok(ExpConfig {
            dm: args.usize_or("dm", default.dm),
            inputs: args.usize_or("inputs", default.inputs),
            d: args.f64_or("d", default.d),
            n: args.f64_or("n", default.n),
            seed: args.u64_or("seed", default.seed),
            compliance: args.f64_or("compliance", default.compliance),
            use_bdd: !args.has("no-bdd"),
            initial,
            threads,
            schedule,
            shared_cache,
            skew: args.f64_or("skew", default.skew),
        })
    }

    /// The dirty-data generator knobs this config implies.
    pub fn dirty_config(&self) -> DirtyConfig {
        DirtyConfig {
            duplicate_rate: self.d,
            noise_rate: self.n,
            input_size: self.inputs,
            seed: self.seed,
            skew: self.skew,
        }
    }

    /// The engine knobs this config implies. `threads` passes through
    /// verbatim — the engine itself resolves 0 to one worker per core.
    pub fn repair_options(&self) -> RepairOptions {
        RepairOptions {
            threads: self.threads,
            schedule: self.schedule,
            shared_cache: self.shared_cache,
            chunk: 0,
        }
    }
}

/// Result of one monitored run.
pub struct RunResult {
    /// Per-round cumulative metrics (rounds `1..=max_rounds`),
    /// evaluated shard-by-shard and merged.
    pub metrics: Vec<RoundMetrics>,
    /// Merged monitor statistics (timing, rounds, certain count,
    /// interner watermark). With `threads > 1`, `elapsed` sums worker
    /// time across shards; `wall` is the batch's wall clock.
    pub stats: MonitorStats,
    /// Merged BDD cache statistics.
    pub bdd: certainfix_core::bdd::BddStats,
    /// Wall-clock time of the repair batch.
    pub wall: Duration,
    /// Per-worker breakdown (one entry when sequential).
    pub workers: Vec<WorkerReport>,
    /// The dataset used (for follow-up comparisons on the same data).
    pub dataset: Dataset,
    /// Raw per-tuple outcomes.
    pub outcomes: Vec<FixOutcome>,
}

impl RunResult {
    /// The maximum number of interaction rounds any tuple needed.
    pub fn max_rounds(&self) -> usize {
        self.outcomes
            .iter()
            .map(|o| o.rounds.len())
            .max()
            .unwrap_or(0)
    }

    /// Metric row for round `k` (clamped to the last materialized row).
    pub fn at_round(&self, k: usize) -> RoundMetrics {
        let idx = k.clamp(1, self.metrics.len()).saturating_sub(1);
        self.metrics[idx]
    }
}

/// Build the batch-repair engine for a workload under `cfg`.
pub fn build_engine(workload: &dyn Workload, cfg: &ExpConfig) -> BatchRepairEngine {
    BatchRepairEngine::with_config(
        workload.rules().clone(),
        workload.master().clone(),
        cfg.use_bdd,
        cfg.initial,
        CertainFixConfig::default(),
    )
}

/// Repair one already-generated batch with `cfg.threads` workers under
/// `cfg`'s schedule and cache knobs, and evaluate per-worker metrics,
/// merged into whole-batch rows (the merge sums raw counts, so the
/// rows are independent of how the scheduler partitioned the batch).
/// The oracle for input `i` is seeded from the *dataset's* seed (which
/// [`Dataset::batches`] decorrelates per batch) and `i` only, so
/// results are independent of the worker count, the schedule, and the
/// position of the batch in a stream.
pub fn run_batch(
    engine: &BatchRepairEngine,
    dataset: Dataset,
    cfg: &ExpConfig,
    report_rounds: usize,
) -> RunResult {
    let dirty: Vec<Tuple> = dataset.inputs.iter().map(|dt| dt.dirty.clone()).collect();
    let oracle_seed = dataset.config.seed;
    let report = engine.repair_opts(&dirty, &cfg.repair_options(), |i| {
        let dt = &dataset.inputs[i];
        if cfg.compliance >= 1.0 {
            SimulatedUser::new(dt.clean.clone())
        } else {
            SimulatedUser::with_compliance(dt.clean.clone(), cfg.compliance, oracle_seed ^ i as u64)
        }
    });
    let report_rounds = report_rounds.max(1);
    let mut metrics: Option<Vec<RoundMetrics>> = None;
    for worker in &report.workers {
        let evals: Vec<TupleEval> = worker
            .indexes()
            .map(|i| TupleEval {
                outcome: &report.outcomes[i],
                dirty: &dataset.inputs[i].dirty,
                clean: &dataset.inputs[i].clean,
            })
            .collect();
        let m = evaluate_rounds(&evals, report_rounds);
        match &mut metrics {
            None => metrics = Some(m),
            Some(acc) => merge_round_series(acc, &m),
        }
    }
    RunResult {
        metrics: metrics.unwrap_or_else(|| evaluate_rounds(&[], report_rounds)),
        stats: report.stats,
        bdd: report.bdd,
        wall: report.wall,
        workers: report.workers,
        dataset,
        outcomes: report.outcomes,
    }
}

/// Run the monitored pipeline on `workload` under `cfg`, evaluating
/// metrics for up to `report_rounds` rounds. `cfg.threads > 1` repairs
/// the stream with that many workers (under `cfg.schedule`); for plain
/// `CertainFix` with the caches off, the outcomes and merged metrics
/// are the same either way.
pub fn run_monitored(workload: &dyn Workload, cfg: &ExpConfig, report_rounds: usize) -> RunResult {
    let engine = build_engine(workload, cfg);
    let dataset = Dataset::generate(workload, &cfg.dirty_config());
    run_batch(&engine, dataset, cfg, report_rounds)
}

/// Run the `IncRep` baseline on the same dirty data and evaluate its
/// attribute-level counts. Returns the counts and the elapsed time.
pub fn run_increp(workload: &dyn Workload, dataset: &Dataset) -> (ChangeCounts, Duration) {
    let (cfds, _skipped) = rules_to_cfds(workload.rules());
    let dirty_rel = dataset.dirty_relation(workload.schema().clone());
    let started = std::time::Instant::now();
    let report = increp(
        &dirty_rel,
        &cfds,
        workload.master_index(),
        &IncRepConfig::default(),
    );
    let elapsed = started.elapsed();
    let cleans: Vec<&certainfix_relation::Tuple> =
        dataset.inputs.iter().map(|dt| &dt.clean).collect();
    let counts = evaluate_changes(
        dataset
            .inputs
            .iter()
            .enumerate()
            .map(|(i, dt)| (&dt.dirty, report.repaired.tuple(i), cleans[i])),
    );
    (counts, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ExpConfig {
        ExpConfig {
            dm: 300,
            inputs: 80,
            ..Default::default()
        }
    }

    #[test]
    fn monitored_run_produces_metrics() {
        let w = Which::Hosp.build(small().dm);
        let result = run_monitored(w.as_ref(), &small(), 4);
        assert_eq!(result.metrics.len(), 4);
        // recall_t(1) ≈ d and is non-decreasing in k
        let r1 = result.metrics[0].recall_t;
        assert!(r1 > 0.1 && r1 < 0.5, "recall_t(1) = {r1}");
        for w in result.metrics.windows(2) {
            assert!(w[1].recall_t >= w[0].recall_t);
            assert!(w[1].recall_a >= w[0].recall_a);
        }
        // certain fixes are precise by construction
        assert_eq!(result.metrics.last().unwrap().precision_a, 1.0);
        assert!(result.max_rounds() >= 1);
        assert_eq!(result.at_round(99), *result.metrics.last().unwrap());
    }

    #[test]
    fn increp_comparison_runs() {
        let cfg = small();
        let w = Which::Dblp.build(cfg.dm);
        let result = run_monitored(w.as_ref(), &cfg, 3);
        let (counts, _) = run_increp(w.as_ref(), &result.dataset);
        assert!(counts.erroneous > 0);
        // IncRep changes things but is not fully precise in general
        assert!(counts.precision() <= 1.0);
    }

    #[test]
    fn config_from_args() {
        let args = Args::parse(
            "--dm 123 --inputs 45 --d 0.5 --n 0.1 --no-bdd --initial median --threads 3 \
             --schedule shard --shared-cache off --skew 1.5"
                .split_whitespace()
                .map(String::from),
        );
        let cfg = ExpConfig::from_args(&args);
        assert_eq!(cfg.dm, 123);
        assert_eq!(cfg.inputs, 45);
        assert_eq!(cfg.d, 0.5);
        assert!(!cfg.use_bdd);
        assert_eq!(cfg.initial, InitialRegion::Median);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.schedule, Schedule::Shard);
        assert!(!cfg.shared_cache);
        assert_eq!(cfg.skew, 1.5);
        assert_eq!(cfg.dirty_config().skew, 1.5);
    }

    #[test]
    fn invalid_enumerated_values_are_rejected() {
        for bad in [
            "--schedule sahrd",
            "--schedule Shard",
            "--shared-cache Off",
            "--shared-cache false",
            "--initial worst",
        ] {
            let args = Args::parse(bad.split_whitespace().map(String::from));
            let err = ExpConfig::try_from_args(&args).unwrap_err();
            assert!(err.starts_with("invalid --"), "{bad}: {err}");
        }
        // threads 0 passes through repair_options for the engine's
        // own one-worker-per-core resolution
        let cfg = ExpConfig {
            threads: 0,
            ..ExpConfig::default()
        };
        assert_eq!(cfg.repair_options().threads, 0);
    }

    #[test]
    fn config_defaults_to_stealing_with_the_shared_cache() {
        let cfg = ExpConfig::from_args(&Args::parse(std::iter::empty::<String>()));
        assert_eq!(cfg.schedule, Schedule::Steal);
        assert!(cfg.shared_cache);
        assert_eq!(cfg.skew, 0.0);
        let opts = cfg.repair_options();
        assert_eq!(opts.schedule, Schedule::Steal);
        assert!(opts.shared_cache);
        assert_eq!(opts.threads, 1);
    }

    #[test]
    fn threads_zero_resolves_to_available_parallelism() {
        let args = Args::parse("--threads 0".split_whitespace().map(String::from));
        let cfg = ExpConfig::from_args(&args);
        assert!(cfg.threads >= 1);
    }

    #[test]
    fn parallel_run_matches_sequential_metrics() {
        // plain CertainFix with both caches off: the engine's full
        // bit-identical guarantee, in both schedule modes
        let base = ExpConfig {
            use_bdd: false,
            shared_cache: false,
            skew: 0.6,
            ..small()
        };
        let seq = run_monitored(Which::Hosp.build(base.dm).as_ref(), &base, 3);
        for schedule in [Schedule::Shard, Schedule::Steal] {
            let par = run_monitored(
                Which::Hosp.build(base.dm).as_ref(),
                &ExpConfig {
                    threads: 4,
                    schedule,
                    ..base
                },
                3,
            );
            assert_eq!(par.workers.len(), 4);
            assert_eq!(
                seq.metrics, par.metrics,
                "merged rows are bit-identical under {schedule:?}"
            );
            assert_eq!(seq.stats.certain, par.stats.certain);
            assert_eq!(seq.stats.rounds, par.stats.rounds);
            for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
                assert_eq!(a.tuple, b.tuple);
            }
        }
    }

    #[test]
    fn which_builds_both() {
        for which in Which::BOTH {
            let w = which.build(50);
            assert_eq!(w.name(), which.name());
            assert_eq!(w.master().len(), 50);
        }
    }
}
